"""Tracing spans: sim-clock-timestamped, nested, append-only.

The observability layer's unit of "what happened when" is a
:class:`Span`: a named interval on the *simulated* clock with
structured attributes and an explicit parent, forming well-nested
trees (a child's interval is contained in its parent's).  Spans are
produced by a :class:`Tracer` and recorded, in closing order, into an
append-only :class:`TraceBuffer`.

Determinism is the design constraint everything here serves:

* timestamps are always the caller's sim time -- the tracer never
  reads a clock of its own (REP001);
* span ids are dense sequence numbers in *begin* order, so two
  same-seed runs assign identical ids;
* every export iterates in sorted/sequential order (REP003), and
  :meth:`TraceBuffer.fingerprint` canonicalizes away the only
  permitted divergence between same-seed runs (engine cache
  temperature -- see :data:`CACHE_SENSITIVE_SPANS`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

__all__ = [
    "SPAN_NAMES",
    "CACHE_SENSITIVE_SPANS",
    "Span",
    "SpanHandle",
    "Tracer",
    "TraceBuffer",
]

#: The span taxonomy.  ``run``/``platform`` are the structural roots
#: one routing run opens; ``request`` spans one request arrival ->
#: terminal outcome; ``admission``/``dispatch``/``retry`` are instant
#: decision marks; ``execute_batch`` covers a batch launch -> finish;
#: ``compile``/``plan_cache_lookup`` relay the execution engine's
#: hook-bus activity; ``calibration_backtrack`` marks the calibrator
#: stepping back down the tuning path; ``fault_episode`` brackets an
#: injected fault's begin/end pair; ``control_tick``/``prewarm`` are
#: instant marks of the predictive control plane's cadence firings and
#: plan-cache pre-warms; ``supervise`` is the coordinator's zero-width
#: record of one shard's supervision history (attempts, failures) in
#: the stitched fleet trace.
SPAN_NAMES = (
    "run",
    "platform",
    "request",
    "admission",
    "dispatch",
    "execute_batch",
    "retry",
    "compile",
    "plan_cache_lookup",
    "calibration_backtrack",
    "fault_episode",
    "control_tick",
    "prewarm",
    "supervise",
)

#: Span names whose presence/count depends on execution-environment
#: accidents rather than on routing behaviour: a warm plan cache
#: answers from storage instead of compiling, and supervision records
#: depend on host-level chaos (crashes, hangs) the sim never sees --
#: so none of these may feed same-seed fingerprint comparisons
#: (mirrors ``RouterReport._CACHE_KINDS``).
CACHE_SENSITIVE_SPANS = ("compile", "plan_cache_lookup", "supervise")


@dataclass(frozen=True)
class Span:
    """One closed, immutable span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_s: float
    end_s: float
    attrs: Mapping[str, object]

    @property
    def duration_s(self) -> float:
        """Interval length on the sim clock."""
        return self.end_s - self.start_s

    def contains(self, other: "Span") -> bool:
        """Whether ``other``'s interval sits inside this span's."""
        return self.start_s <= other.start_s and other.end_s <= self.end_s

    def to_dict(self) -> dict:
        """Plain-data view with a stable key order."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": {key: self.attrs[key] for key in sorted(self.attrs)},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        return cls(
            span_id=data["span_id"],
            parent_id=data["parent_id"],
            name=data["name"],
            start_s=data["start_s"],
            end_s=data["end_s"],
            attrs=dict(data["attrs"]),
        )


class SpanHandle:
    """One span that has begun but not yet ended.

    Handles are mutable accumulators: attributes may be attached any
    time before :meth:`Tracer.end` freezes the span into the buffer.
    """

    __slots__ = ("span_id", "parent_id", "name", "start_s", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start_s: float,
        attrs: Dict[str, object],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = start_s
        self.attrs = attrs

    def set(self, **attrs) -> "SpanHandle":
        """Attach attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self


#: Shared inert handle returned by a disabled tracer: callers can
#: ``.set(...)`` on it freely and nothing is recorded.
_NULL_HANDLE = SpanHandle(-1, None, "run", 0.0, {})


class TraceBuffer:
    """Append-only store of closed spans (in closing order)."""

    def __init__(self) -> None:
        self._spans: List[Span] = []

    def add(self, span: Span) -> Span:
        """Append one closed span; returns it."""
        self._spans.append(span)
        return span

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def __getitem__(self, index: int) -> Span:
        return self._spans[index]

    def of_name(self, name: str) -> List[Span]:
        """All spans of one taxonomy name, in id order."""
        if name not in SPAN_NAMES:
            raise ValueError(
                "unknown span name %r (known: %s)"
                % (name, ", ".join(SPAN_NAMES))
            )
        return sorted(
            (s for s in self._spans if s.name == name),
            key=lambda s: s.span_id,
        )

    @property
    def counts(self) -> Dict[str, int]:
        """Span counts per taxonomy name (zero-count names included)."""
        counts = {name: 0 for name in SPAN_NAMES}
        for span in self._spans:
            counts[span.name] += 1
        return counts

    def children_of(self, span_id: Optional[int]) -> List[Span]:
        """Direct children of one span id (None: the roots)."""
        return sorted(
            (s for s in self._spans if s.parent_id == span_id),
            key=lambda s: s.span_id,
        )

    # -- export ----------------------------------------------------------
    def to_dicts(self) -> List[dict]:
        """Every span as plain data, ordered by span id.

        Id order (= begin order) rather than append order (= close
        order) so the export reads as a chronologically opened tree;
        both orders are deterministic.
        """
        return [
            span.to_dict()
            for span in sorted(self._spans, key=lambda s: s.span_id)
        ]

    def to_json(self) -> str:
        """Canonical JSON rendering of :meth:`to_dicts`."""
        return json.dumps(
            self.to_dicts(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dicts(cls, dicts: Sequence[Mapping[str, object]]) -> "TraceBuffer":
        """Rebuild a buffer from :meth:`to_dicts` output; the
        round-trip ``from_dicts(b.to_dicts()).to_json() == b.to_json()``
        is bit-exact."""
        buffer = cls()
        for data in dicts:
            buffer.add(Span.from_dict(data))
        return buffer

    @classmethod
    def from_json(cls, payload: str) -> "TraceBuffer":
        """Rebuild a buffer from :meth:`to_json` output."""
        return cls.from_dicts(json.loads(payload))

    def fingerprint(self) -> str:
        """SHA-1 over the cache-neutral canonical trace.

        Spans named in :data:`CACHE_SENSITIVE_SPANS` are dropped and
        the survivors' ids are densely renumbered (parents remapped),
        so a warm engine cache -- which removes compile spans and
        shifts every later span id -- does not change the fingerprint.
        Two same-seed runs are trace-identical iff these match.
        """
        by_id = {span.span_id: span for span in self._spans}
        survivors = [
            span
            for span in sorted(self._spans, key=lambda s: s.span_id)
            if span.name not in CACHE_SENSITIVE_SPANS
        ]
        renumber: Dict[int, int] = {
            span.span_id: index for index, span in enumerate(survivors)
        }

        def surviving_parent(parent_id: Optional[int]) -> Optional[int]:
            # A dropped span's children re-parent onto its nearest
            # surviving ancestor, so the tree stays connected.
            while parent_id is not None and parent_id not in renumber:
                parent_id = by_id[parent_id].parent_id
            return None if parent_id is None else renumber[parent_id]

        canonical = []
        for span in survivors:
            data = span.to_dict()
            data["span_id"] = renumber[span.span_id]
            data["parent_id"] = surviving_parent(span.parent_id)
            canonical.append(data)
        payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()


class Tracer:
    """Produces spans against an explicit sim clock.

    All times are caller-supplied simulated seconds.  A disabled
    tracer short-circuits every operation to a shared null handle, so
    instrumented hot paths cost one attribute check when tracing is
    off.
    """

    def __init__(
        self,
        buffer: Optional[TraceBuffer] = None,
        enabled: bool = True,
    ) -> None:
        self.buffer = buffer if buffer is not None else TraceBuffer()
        self.enabled = enabled
        self._next_id = 0
        self._open: Dict[int, SpanHandle] = {}

    @property
    def open_spans(self) -> int:
        """Spans begun but not yet ended."""
        return len(self._open)

    def begin(
        self,
        name: str,
        time_s: float,
        parent: Optional[SpanHandle] = None,
        **attrs,
    ) -> SpanHandle:
        """Open a span at ``time_s``; returns its handle."""
        if not self.enabled:
            return _NULL_HANDLE
        if name not in SPAN_NAMES:
            raise ValueError(
                "unknown span name %r (known: %s)"
                % (name, ", ".join(SPAN_NAMES))
            )
        parent_id = None
        if parent is not None and parent is not _NULL_HANDLE:
            parent_id = parent.span_id
            if time_s < parent.start_s:
                raise ValueError(
                    "span %r begins at %r, before its parent %r began "
                    "at %r" % (name, time_s, parent.name, parent.start_s)
                )
        handle = SpanHandle(self._next_id, parent_id, name, time_s, dict(attrs))
        self._next_id += 1
        self._open[handle.span_id] = handle
        return handle

    def end(self, handle: SpanHandle, time_s: float, **attrs) -> Optional[Span]:
        """Close a span at ``time_s``, recording it into the buffer."""
        if not self.enabled or handle is _NULL_HANDLE:
            return None
        if handle.span_id not in self._open:
            raise ValueError(
                "span %r (id %d) is not open" % (handle.name, handle.span_id)
            )
        if time_s < handle.start_s:
            raise ValueError(
                "span %r ends at %r, before it began at %r"
                % (handle.name, time_s, handle.start_s)
            )
        del self._open[handle.span_id]
        handle.attrs.update(attrs)
        span = Span(
            span_id=handle.span_id,
            parent_id=handle.parent_id,
            name=handle.name,
            start_s=handle.start_s,
            end_s=time_s,
            attrs=dict(handle.attrs),
        )
        return self.buffer.add(span)

    def instant(
        self,
        name: str,
        time_s: float,
        parent: Optional[SpanHandle] = None,
        **attrs,
    ) -> Optional[Span]:
        """Record a zero-duration span (a point decision)."""
        if not self.enabled:
            return None
        return self.end(self.begin(name, time_s, parent=parent, **attrs), time_s)

    def emit(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: Optional[SpanHandle] = None,
        **attrs,
    ) -> Optional[Span]:
        """Record a whole span in one call (start and end known)."""
        if not self.enabled:
            return None
        return self.end(self.begin(name, start_s, parent=parent, **attrs), end_s)

    def drain_open(self, time_s: float) -> List[Span]:
        """Close every still-open span at ``time_s`` (run teardown).

        Closed spans carry ``open_at_drain=True`` so analysis can tell
        a bracketed interval from one truncated by the end of the run
        (e.g. a fault episode the schedule never closed).  Handles are
        closed in id order for determinism.
        """
        closed = []
        for span_id in sorted(self._open):
            handle = self._open[span_id]
            end_time_s = max(time_s, handle.start_s)
            closed.append(self.end(handle, end_time_s, open_at_drain=True))
        return closed
