"""Instrumentation: the handle a run threads through the system.

:class:`Instrumentation` bundles one :class:`~repro.obs.span.Tracer`
(over one :class:`~repro.obs.span.TraceBuffer`) with one
:class:`~repro.obs.metrics.MetricsRegistry` and exposes the narrow
callback surface the serving/runtime layers invoke:

* the :class:`~repro.serving.router.RequestRouter` calls the
  ``run_* / request_* / batch_* / fault`` family at its decision
  points (all sim-time-stamped by the caller);
* the :class:`~repro.core.engine.ExecutionEngine`'s hook bus is
  attached via :meth:`attach_engine`, relaying compilations, plan
  -cache lookups and calibration backtracking into spans and counters;
* the :class:`~repro.core.runtime.server.InferenceServer` records its
  batches through :meth:`server_batch`.

A disabled instance (:meth:`Instrumentation.disabled`, or
``enabled=False``) keeps every method callable but reduces each to a
single guard check, so instrumented hot paths stay cheap when
observability is off -- the "disabled-by-default adds < 5%" bar the
router-overload benchmark asserts.

One instance observes one run: create a fresh ``Instrumentation`` per
``RequestRouter.run`` call (reusing one across runs concatenates
their traces).
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    OCCUPANCY_BUCKETS,
    RATE_ERROR_BUCKETS_RPS,
    SLACK_BUCKETS_S,
    MetricsRegistry,
)
from repro.obs.span import CACHE_SENSITIVE_SPANS, SpanHandle, TraceBuffer, Tracer

__all__ = [
    "CACHE_SENSITIVE_METRIC_PREFIX",
    "SUPERVISION_METRIC_PREFIX",
    "Instrumentation",
    "cache_neutral_obs_section",
    "merge_obs_sections",
]

#: Metric families whose values depend on engine cache temperature
#: (compiles skipped on a warm cache); stripped from same-seed
#: fingerprint comparisons alongside :data:`CACHE_SENSITIVE_SPANS`.
CACHE_SENSITIVE_METRIC_PREFIX = "engine_"

#: Metric families recording shard-supervision history (attempts,
#: retries, failures by kind).  They describe host-level accidents --
#: how many times the wall clock made us re-run a worker -- never
#: simulated behaviour, so like the engine-cache families they are
#: stripped before same-seed fingerprint comparisons.
SUPERVISION_METRIC_PREFIX = "supervisor_"

#: Fault kinds that open an episode / close it again; transients are
#: instantaneous.
_EPISODE_BEGIN = {
    "outage": "outage",
    "sm_fail": "sm_fail",
    "bw_degrade": "bw_degrade",
    "throttle": "throttle",
}
_EPISODE_END = {
    "restore": "outage",
    "sm_recover": "sm_fail",
    "bw_recover": "bw_degrade",
    "throttle_end": "throttle",
}


def cache_neutral_obs_section(section: dict) -> dict:
    """An ``obs`` report section with cache-temperature noise removed.

    Used by ``RouterReport.fingerprint``: span counts of
    :data:`~repro.obs.span.CACHE_SENSITIVE_SPANS` and metric families
    prefixed ``engine_`` vary with engine cache warmth, and the
    ``supervisor_`` families vary with host-level chaos and retries,
    so they (and the total span count they shift) are dropped before
    hashing.
    """
    span_counts = {
        name: count
        for name, count in section.get("span_counts", {}).items()
        if name not in CACHE_SENSITIVE_SPANS
    }
    metrics = {
        series: value
        for series, value in section.get("metrics", {}).items()
        if not series.startswith(CACHE_SENSITIVE_METRIC_PREFIX)
        and not series.startswith(SUPERVISION_METRIC_PREFIX)
    }
    neutral = {
        "span_counts": span_counts,
        "metrics": metrics,
        "trace_fingerprint": section.get("trace_fingerprint"),
    }
    if "trace_fingerprints" in section:
        # Merged sections carry the per-shard leaf fingerprints too;
        # they are cache-neutral by construction, so they survive.
        neutral["trace_fingerprints"] = section["trace_fingerprints"]
    return neutral


def _merge_metric_series(series: str, entries: List[dict]) -> dict:
    """Fold one metric series' snapshots from several obs sections.

    Counters and histogram states are sums (associative and, in the
    shard layer, over disjoint label sets anyway); gauges -- last-write
    -wins instantaneous levels with no cross-process "last" -- merge as
    the maximum, the conservative envelope for the levels they track
    (queue depth, degradation level).
    """
    kinds = sorted({entry["kind"] for entry in entries})
    if len(kinds) != 1:
        raise ValueError(
            "metric series %r has conflicting kinds across sections: %s"
            % (series, ", ".join(kinds))
        )
    kind = kinds[0]
    if kind == "counter":
        return {"kind": kind, "value": sum(e["value"] for e in entries)}
    if kind == "gauge":
        return {"kind": kind, "value": max(e["value"] for e in entries)}
    if kind != "histogram":
        raise ValueError("unknown metric kind %r in series %r" % (kind, series))
    edges = [tuple(edge for edge, _count in e["buckets"]) for e in entries]
    if any(other != edges[0] for other in edges[1:]):
        raise ValueError(
            "histogram series %r has mismatched bucket edges across "
            "sections" % (series,)
        )
    buckets = [
        [edge, sum(e["buckets"][index][1] for e in entries)]
        for index, edge in enumerate(edges[0])
    ]
    mins = [e["min"] for e in entries if e["min"] is not None]
    maxs = [e["max"] for e in entries if e["max"] is not None]
    return {
        "kind": kind,
        "buckets": buckets,
        "count": sum(e["count"] for e in entries),
        "sum": sum(e["sum"] for e in entries),
        "min": min(mins) if mins else None,
        "max": max(maxs) if maxs else None,
    }


def merge_obs_sections(sections: Sequence[dict]) -> dict:
    """Fold several per-run ``obs`` report sections into one.

    Span counts, metric counters and histogram states sum; gauges take
    their maximum.  The merged section keeps every leaf trace
    fingerprint (sorted, under ``trace_fingerprints``) and derives the
    combined ``trace_fingerprint`` by hashing that sorted list -- so
    the result is independent of merge order and grouping.  Callers
    wanting that associativity guarantee must pass leaf sections in a
    canonical order (``RouterReport.merge`` sorts its leaves before
    folding).
    """
    if not sections:
        raise ValueError("merge_obs_sections needs at least one section")
    if len(sections) == 1:
        return dict(sections[0])
    span_counts: Dict[str, int] = {}
    for section in sections:
        for name, count in section.get("span_counts", {}).items():
            span_counts[name] = span_counts.get(name, 0) + count
    series_entries: Dict[str, List[dict]] = {}
    for section in sections:
        for series, entry in section.get("metrics", {}).items():
            series_entries.setdefault(series, []).append(entry)
    metrics = {
        series: _merge_metric_series(series, series_entries[series])
        for series in sorted(series_entries)
    }
    fingerprints: List[str] = []
    for section in sections:
        nested = section.get("trace_fingerprints")
        if nested is not None:
            fingerprints.extend(nested)
        elif section.get("trace_fingerprint") is not None:
            fingerprints.append(section["trace_fingerprint"])
    fingerprints.sort()
    combined = hashlib.sha1(
        json.dumps(
            fingerprints, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    ).hexdigest()
    return {
        "n_spans": sum(section.get("n_spans", 0) for section in sections),
        "span_counts": {
            name: span_counts[name] for name in sorted(span_counts)
        },
        "metrics": metrics,
        "trace_fingerprint": combined,
        "trace_fingerprints": fingerprints,
    }


class Instrumentation:
    """Tracer + metrics + the callback surface of one observed run.

    ``shard`` optionally names the shard this run executes on (e.g.
    ``"s0"``): the run/platform spans carry it as a ``shard``
    attribute and every metric series gets a ``shard`` base label, so
    merging per-shard obs sections never collides series from
    different workers.  ``None`` (the default) leaves spans and
    series exactly as an unsharded run produces them -- the 1-shard
    degenerate case must not perturb a single fingerprint.
    """

    def __init__(
        self, enabled: bool = True, shard: Optional[str] = None
    ) -> None:
        self.enabled = enabled
        self.shard = shard
        self.buffer = TraceBuffer()
        self.tracer = Tracer(self.buffer, enabled=enabled)
        self.metrics = MetricsRegistry(
            base_labels={"shard": shard} if shard is not None else None
        )
        self._run: Optional[SpanHandle] = None
        self._platforms: Dict[str, SpanHandle] = {}
        self._requests: Dict[int, SpanHandle] = {}
        self._episodes: Dict[tuple, SpanHandle] = {}
        self._max_time_s = 0.0

    @classmethod
    def disabled(cls) -> "Instrumentation":
        """An inert instance: every callback is a no-op guard check."""
        return cls(enabled=False)

    def _touch(self, time_s: float) -> None:
        if time_s > self._max_time_s:
            self._max_time_s = time_s

    # -- run lifecycle ---------------------------------------------------
    def run_started(self, platforms: Sequence[str], time_s: float = 0.0) -> None:
        """Open the run root and one platform track per deployment."""
        if not self.enabled:
            return
        self._touch(time_s)
        attrs: Dict[str, object] = {"platforms": ",".join(sorted(platforms))}
        if self.shard is not None:
            attrs["shard"] = self.shard
        self._run = self.tracer.begin("run", time_s, **attrs)
        for name in sorted(platforms):
            platform_attrs: Dict[str, object] = {"platform": name}
            if self.shard is not None:
                platform_attrs["shard"] = self.shard
            self._platforms[name] = self.tracer.begin(
                "platform", time_s, parent=self._run, **platform_attrs
            )

    def run_finished(self, time_s: float) -> None:
        """Close every still-open span at ``max(time_s, latest seen)``."""
        if not self.enabled:
            return
        self._touch(time_s)
        end_s = self._max_time_s
        for key in sorted(self._episodes, key=str):
            self.tracer.end(self._episodes[key], end_s, open_at_drain=True)
        self._episodes.clear()
        for rid in sorted(self._requests):
            self.tracer.end(
                self._requests[rid], end_s, outcome="open_at_drain"
            )
        self._requests.clear()
        for name in sorted(self._platforms):
            self.tracer.end(self._platforms[name], end_s)
        self._platforms.clear()
        if self._run is not None:
            self.tracer.end(self._run, end_s)
            self._run = None
        self.tracer.drain_open(end_s)

    # -- requests --------------------------------------------------------
    def _request_span(self, request) -> SpanHandle:
        handle = self._requests.get(request.rid)
        if handle is None:
            handle = self.tracer.begin(
                "request",
                request.arrival_s,
                parent=self._run,
                rid=request.rid,
                tenant=request.tenant.name,
            )
            self._requests[request.rid] = handle
        return handle

    def request_admitted(
        self, request, time_s: float, platform: str, level: int,
        reason: str, queue_depth: int,
    ) -> None:
        """One request cleared admission onto ``platform``'s queue."""
        if not self.enabled:
            return
        self._touch(time_s)
        parent = self._request_span(request)
        self.tracer.instant(
            "admission",
            time_s,
            parent=parent,
            platform=platform,
            level=level,
            reason=reason,
        )
        self.metrics.counter(
            "requests_admitted_total",
            "requests admitted onto a platform queue",
            platform=platform,
        ).inc()
        self.metrics.gauge(
            "queue_depth",
            "requests queued on the platform",
            platform=platform,
        ).set(queue_depth)

    def request_rejected(self, request, time_s: float, reason: str) -> None:
        """One request reached a terminal rejection."""
        if not self.enabled:
            return
        self._touch(time_s)
        handle = self._requests.pop(request.rid, None)
        if handle is None:
            # Rejected at admission: the span brackets arrival -> now.
            handle = self.tracer.begin(
                "request",
                request.arrival_s,
                parent=self._run,
                rid=request.rid,
                tenant=request.tenant.name,
            )
        self.tracer.end(handle, time_s, outcome="rejected", reason=reason)
        self.metrics.counter(
            "requests_rejected_total",
            "requests terminally rejected",
            reason=reason,
        ).inc()

    def request_completed(
        self, request, time_s: float, platform: str, level: int,
    ) -> None:
        """One request's batch finished inside a completed batch."""
        if not self.enabled:
            return
        self._touch(time_s)
        handle = self._requests.pop(request.rid, None)
        if handle is not None:
            self.tracer.end(
                handle,
                time_s,
                outcome="completed",
                platform=platform,
                level=level,
            )
        self.metrics.counter(
            "requests_completed_total",
            "requests served to completion",
            platform=platform,
        ).inc()
        latency_s = time_s - request.arrival_s
        self.metrics.histogram(
            "request_latency_s",
            LATENCY_BUCKETS_S,
            "arrival to batch completion",
        ).observe(latency_s)
        slack_s = request.deadline_s - time_s
        self.metrics.histogram(
            "deadline_slack_s",
            SLACK_BUCKETS_S,
            "deadline minus finish (negative: missed)",
        ).observe(slack_s)

    def retry_scheduled(
        self, request, time_s: float, attempt: int, backoff_s: float
    ) -> None:
        """A failed request re-enters admission after backoff."""
        if not self.enabled:
            return
        self._touch(time_s)
        self.tracer.instant(
            "retry",
            time_s,
            parent=self._request_span(request),
            attempt=attempt,
            backoff_s=backoff_s,
        )
        self.metrics.counter(
            "retries_total", "failed requests re-admitted after backoff"
        ).inc()

    def failover(self, request, time_s: float, origin: str, target: str) -> None:
        """A request was evacuated off a dead platform."""
        if not self.enabled:
            return
        self._touch(time_s)
        self.metrics.counter(
            "failovers_total",
            "requests moved off a dead platform",
            origin=origin,
        ).inc()
        self.tracer.instant(
            "dispatch",
            time_s,
            parent=self._request_span(request),
            platform=target,
            cause="failover",
            origin=origin,
        )

    # -- batches ---------------------------------------------------------
    def batch_dispatched(
        self, platform: str, batch, capacity: int, queue_depth: int,
        time_s: float,
    ) -> None:
        """A batch launched; opens its ``execute_batch`` span.

        The open handle rides on ``batch.obs_span`` (the in-flight
        batch object), so completion/failure can close it without the
        instrumentation keying state off object identity.
        """
        if not self.enabled:
            return
        self._touch(time_s)
        rids = tuple(r.rid for r in batch.requests)
        self.tracer.instant(
            "dispatch",
            time_s,
            parent=self._platforms.get(platform),
            platform=platform,
            n_requests=len(rids),
            level=batch.rung.level,
        )
        batch.obs_span = self.tracer.begin(
            "execute_batch",
            time_s,
            parent=self._platforms.get(platform),
            platform=platform,
            request_ids=rids,
            level=batch.rung.level,
            batch=len(rids),
            capacity=capacity,
        )
        self.metrics.counter(
            "batches_dispatched_total",
            "batches launched",
            platform=platform,
        ).inc()
        self.metrics.histogram(
            "batch_occupancy",
            OCCUPANCY_BUCKETS,
            "occupied slots over plan capacity at launch",
            platform=platform,
        ).observe(len(rids) / capacity)
        self.metrics.gauge(
            "queue_depth",
            "requests queued on the platform",
            platform=platform,
        ).set(queue_depth)

    def _close_batch(
        self, platform: str, batch, time_s: float, outcome: str
    ) -> None:
        handle = getattr(batch, "obs_span", None)
        if handle is not None:
            self.tracer.end(handle, time_s, outcome=outcome)
            batch.obs_span = None

    def batch_completed(
        self, platform: str, batch, time_s: float, energy_j: float
    ) -> None:
        """A launched batch finished successfully."""
        if not self.enabled:
            return
        self._touch(time_s)
        self._close_batch(platform, batch, time_s, "completed")
        self.metrics.counter(
            "platform_energy_j",
            "energy spent serving completed batches",
            platform=platform,
        ).inc(energy_j)

    def batch_failed(self, platform: str, batch, time_s: float) -> None:
        """A launched batch did not complete (outage or transient)."""
        if not self.enabled:
            return
        self._touch(time_s)
        self._close_batch(platform, batch, time_s, "failed")
        self.metrics.counter(
            "batch_failures_total",
            "batches that launched and failed",
            platform=platform,
        ).inc()

    def batch_abandoned(self, platform: str, batch, time_s: float) -> None:
        """An in-flight batch was evacuated (outage failover) or
        stranded at drain -- it has no finish-time outcome."""
        if not self.enabled:
            return
        self._touch(time_s)
        self._close_batch(platform, batch, time_s, "abandoned")

    # -- degradation / resilience ---------------------------------------
    def degradation_move(
        self, platform: str, move: str, level: int, time_s: float
    ) -> None:
        """The platform's ladder stepped (``degrade``/``restore``)."""
        if not self.enabled:
            return
        self._touch(time_s)
        self.metrics.counter(
            "degradation_moves_total",
            "ladder steps taken",
            platform=platform,
            move=move,
        ).inc()
        self.metrics.gauge(
            "degradation_level",
            "current ladder level",
            platform=platform,
        ).set(level)

    # -- control plane ---------------------------------------------------
    def control_tick(
        self,
        time_s: float,
        observed_rps: float,
        forecast_rps: float,
        target_level: int,
        error_rps: Optional[float] = None,
    ) -> None:
        """One predictive-controller cadence firing."""
        if not self.enabled:
            return
        self._touch(time_s)
        self.tracer.instant(
            "control_tick",
            time_s,
            parent=self._run,
            observed_rps=observed_rps,
            forecast_rps=forecast_rps,
            target_level=target_level,
        )
        self.metrics.counter(
            "control_ticks_total", "predictive controller ticks"
        ).inc()
        self.metrics.gauge(
            "forecast_rate_rps", "forecast fleet arrival rate"
        ).set(forecast_rps)
        if error_rps is not None:
            self.metrics.histogram(
                "forecast_error_rps",
                RATE_ERROR_BUCKETS_RPS,
                "absolute one-step forecast error",
            ).observe(error_rps)

    def prewarm(self, platform: str, level: int, time_s: float) -> None:
        """The controller planted a plan-cache entry ahead of need."""
        if not self.enabled:
            return
        self._touch(time_s)
        self.tracer.instant(
            "prewarm",
            time_s,
            parent=self._platforms.get(platform),
            platform=platform,
            level=level,
        )
        self.metrics.counter(
            "control_prewarms_total",
            "rungs pre-warmed by the controller",
            platform=platform,
        ).inc()

    def dvfs_move(
        self, platform: str, relative_frequency: float, time_s: float
    ) -> None:
        """The controller commanded a platform DVFS state."""
        if not self.enabled:
            return
        self._touch(time_s)
        self.metrics.counter(
            "dvfs_moves_total",
            "controller-commanded frequency changes",
            platform=platform,
        ).inc()
        self.metrics.gauge(
            "platform_frequency",
            "commanded relative frequency",
            platform=platform,
        ).set(relative_frequency)

    def breaker_transition(
        self, platform: str, transition: str, time_s: float
    ) -> None:
        """A circuit breaker changed state."""
        if not self.enabled:
            return
        self._touch(time_s)
        self.metrics.counter(
            "breaker_transitions_total",
            "circuit-breaker state changes",
            platform=platform,
            transition=transition,
        ).inc()

    # -- faults ----------------------------------------------------------
    def fault(self, event, time_s: float) -> None:
        """One injected fault event was applied to its platform."""
        if not self.enabled:
            return
        self._touch(time_s)
        self.metrics.counter(
            "faults_injected_total",
            "fault events applied",
            kind=event.kind,
            platform=event.platform,
        ).inc()
        parent = self._platforms.get(event.platform)
        episode = _EPISODE_BEGIN.get(event.kind)
        if episode is not None:
            key = (event.platform, episode)
            open_handle = self._episodes.pop(key, None)
            if open_handle is not None:
                # Re-begin without an end: close the stale episode here.
                self.tracer.end(open_handle, time_s, reopened=True)
            self._episodes[key] = self.tracer.begin(
                "fault_episode",
                time_s,
                parent=parent,
                platform=event.platform,
                fault_kind=episode,
            )
            return
        episode = _EPISODE_END.get(event.kind)
        if episode is not None:
            open_handle = self._episodes.pop((event.platform, episode), None)
            if open_handle is not None:
                self.tracer.end(open_handle, time_s)
            return
        # Transient: an instantaneous episode.
        self.tracer.instant(
            "fault_episode",
            time_s,
            parent=parent,
            platform=event.platform,
            fault_kind=event.kind,
        )

    # -- engine hook bus -------------------------------------------------
    def attach_engine(
        self, engine, clock: Callable[[], float]
    ) -> Callable[[], None]:
        """Relay an engine's hook-bus events; returns the unsubscriber.

        ``clock`` supplies the sim time the relayed spans are stamped
        with (the engine itself is timeless -- its activity happens
        inside the caller's event loop).
        """
        if not self.enabled:
            return lambda: None

        def on_compile(key, plan, **_ignored):
            time_s = clock()
            self._touch(time_s)
            self.tracer.instant(
                "compile",
                time_s,
                platform=key.arch,
                network=key.network,
                batch=key.batch,
                perforation=key.perforation,
            )
            self.metrics.counter(
                "engine_compiles_total", "plan-cache misses compiled"
            ).inc()

        def on_cache_hit(kind, key, **_ignored):
            time_s = clock()
            self._touch(time_s)
            if kind == "compile":
                self.tracer.instant(
                    "plan_cache_lookup",
                    time_s,
                    platform=getattr(key, "arch", None),
                    outcome="hit",
                )
            self.metrics.counter(
                "engine_cache_hits_total",
                "compile/execute cache hits",
                cache=kind,
            ).inc()

        def on_execute(key, plan, report, cached, **_ignored):
            self.metrics.counter(
                "engine_executes_total", "plan executions (hits included)"
            ).inc()

        def on_prewarm(key, hit, **_ignored):
            self.metrics.counter(
                "engine_prewarms_total",
                "plan-cache entries requested by prewarm",
                outcome="hit" if hit else "miss",
            ).inc()

        def on_calibrate(step, **_ignored):
            time_s = clock()
            self._touch(time_s)
            self.metrics.counter(
                "calibration_steps_total",
                "calibrator decisions",
                action=step.action,
            ).inc()
            if step.action == "backtrack":
                self.tracer.instant(
                    "calibration_backtrack",
                    time_s,
                    entry_index=step.entry_index,
                    observed_entropy=step.observed_entropy,
                )

        engine.hooks.subscribe("on_compile", on_compile)
        engine.hooks.subscribe("on_cache_hit", on_cache_hit)
        engine.hooks.subscribe("on_execute", on_execute)
        engine.hooks.subscribe("on_prewarm", on_prewarm)
        engine.hooks.subscribe("on_calibrate", on_calibrate)

        def unsubscribe():
            engine.hooks.unsubscribe("on_compile", on_compile)
            engine.hooks.unsubscribe("on_cache_hit", on_cache_hit)
            engine.hooks.unsubscribe("on_execute", on_execute)
            engine.hooks.unsubscribe("on_prewarm", on_prewarm)
            engine.hooks.unsubscribe("on_calibrate", on_calibrate)

        return unsubscribe

    # -- single-platform server -----------------------------------------
    def server_batch(
        self, start_s: float, finish_s: float, n_requests: int,
        capacity: int, energy_j: float,
    ) -> None:
        """One :class:`InferenceServer` batch execution."""
        if not self.enabled:
            return
        self._touch(finish_s)
        self.tracer.emit(
            "execute_batch",
            start_s,
            finish_s,
            parent=self._run,
            batch=n_requests,
            capacity=capacity,
        )
        self.metrics.counter(
            "batches_dispatched_total", "batches launched", platform="server"
        ).inc()
        self.metrics.histogram(
            "batch_occupancy",
            OCCUPANCY_BUCKETS,
            "occupied slots over plan capacity at launch",
            platform="server",
        ).observe(n_requests / capacity)
        self.metrics.counter(
            "platform_energy_j",
            "energy spent serving completed batches",
            platform="server",
        ).inc(energy_j)

    # -- reporting -------------------------------------------------------
    def report_section(self) -> dict:
        """The plain-data ``obs`` section a report embeds.

        Span counts per name, the full metrics snapshot, and the
        cache-neutral trace fingerprint.  Keys are sorted; the section
        is JSON-serializable as-is.
        """
        counts = self.buffer.counts
        return {
            "n_spans": len(self.buffer),
            "span_counts": {
                name: counts[name] for name in sorted(counts) if counts[name]
            },
            "metrics": self.metrics.snapshot(),
            "trace_fingerprint": self.buffer.fingerprint(),
        }

    def coverage_of(self, request_ids: Sequence[int]) -> float:
        """Fraction of ``request_ids`` appearing in some
        ``execute_batch`` span -- the bench's span-coverage bar."""
        wanted = set(request_ids)
        if not wanted:
            return 1.0
        seen: set = set()
        for span in self.buffer.of_name("execute_batch"):
            seen.update(span.attrs.get("request_ids", ()))
        return len(wanted & seen) / len(wanted)
