"""Metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` holds named instrument families; each
family fans out into one instrument per label set, so
``registry.counter("batches_total", platform="K20c")`` and the same
name with ``platform="TX1"`` are independent series under one family.
A snapshot at any sim time is a pure, sorted plain-data view -- the
substrate for the JSON and Prometheus exporters in
:mod:`repro.obs.export` and for the ``obs`` section of a
:class:`~repro.serving.report.RouterReport`.

Boundary conventions (shared, by design, with the serving layer):

* **Histogram buckets are upper-inclusive**: a sample lands in the
  first bucket whose edge satisfies ``value <= edge`` (Prometheus's
  ``le`` semantics), with one overflow bucket above the last edge.
  This matches :class:`~repro.core.runtime.server.FlushPolicy`, whose
  timeout boundary is inclusive (a request arriving exactly at the
  flush point still joins the batch), so "exactly at the edge" always
  means "inside the lower/earlier bucket" across the codebase.
* **Percentiles interpolate linearly** between order statistics
  (numpy's "linear" method): :func:`linear_percentile` is the single
  implementation behind ``ServerReport.percentile`` and
  ``RouterReport.percentile_latency_s``, so the two report types
  cannot drift apart on edge handling (empty series -> 0.0, single
  sample -> that sample at every q).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "linear_percentile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS_S",
    "SLACK_BUCKETS_S",
    "OCCUPANCY_BUCKETS",
    "RATE_ERROR_BUCKETS_RPS",
]

#: Default latency histogram edges in seconds (upper-inclusive).
LATENCY_BUCKETS_S = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)

#: Deadline-slack edges in seconds; negative slack is a missed
#: deadline, so the low edges resolve *how badly* a request missed.
SLACK_BUCKETS_S = (-1.0, -0.5, -0.1, 0.0, 0.1, 0.25, 0.5, 1.0, 2.5)

#: Batch-occupancy edges (occupied slots / plan capacity).
OCCUPANCY_BUCKETS = (0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0)

#: Forecast-error edges in requests/second (absolute one-step error of
#: the control plane's arrival-rate forecasters).
RATE_ERROR_BUCKETS_RPS = (1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0)


def linear_percentile(values: Sequence[float], q: float) -> float:
    """``q``-th percentile (0..100) with linear interpolation.

    The shared edge conventions: an empty series yields 0.0 (reports
    aggregate "nothing served" as zero, not an error), a single sample
    is every percentile of itself, and ``q`` exactly 0/100 are the
    min/max order statistics.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be in [0, 100], got %r" % (q,))
    if not values:
        return 0.0
    ordered = sorted(values)
    position = (len(ordered) - 1) * q / 100.0
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return ordered[low]
    fraction = position - low
    interpolated = ordered[low] * (1.0 - fraction) + ordered[high] * fraction
    # Clamp: the lerp can drift past its endpoints by one ulp, and a
    # percentile must never leave the observed range.
    return min(max(interpolated, ordered[low]), ordered[high])


def _label_key(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    """Canonical (sorted, stringified) form of one label set."""
    return tuple((key, str(labels[key])) for key in sorted(labels))


def render_series(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """``name{a=x,b=y}`` -- the stable series id used in exports."""
    if not labels:
        return name
    return "%s{%s}" % (
        name, ",".join("%s=%s" % (key, value) for key, value in labels)
    )


class Counter:
    """Monotone accumulator."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counter increments must be >= 0, got %r" % (amount,))
        self.value += amount

    def snapshot(self) -> dict:
        """Plain-data view."""
        return {"value": self.value}


class Gauge:
    """Last-write-wins instantaneous value."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value

    def add(self, delta: float) -> None:
        """Shift the current level by ``delta``."""
        self.value += delta

    def snapshot(self) -> dict:
        """Plain-data view."""
        return {"value": self.value}


class Histogram:
    """Fixed-bucket histogram with upper-inclusive edges.

    ``edges`` must be strictly increasing; a sample ``v`` lands in the
    first bucket with ``v <= edge`` and in the overflow bucket when it
    exceeds the last edge.  ``sum``/``count``/``min``/``max`` ride
    along so means and ranges survive the bucketing.
    """

    kind = "histogram"

    def __init__(self, edges: Sequence[float]) -> None:
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        ordered = list(edges)
        if any(b <= a for a, b in zip(ordered, ordered[1:])):
            raise ValueError(
                "bucket edges must be strictly increasing, got %r" % (edges,)
            )
        self.edges: Tuple[float, ...] = tuple(ordered)
        self.bucket_counts: List[int] = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        index = len(self.edges)  # overflow unless an edge admits it
        for position, edge in enumerate(self.edges):
            if value <= edge:
                index = position
                break
        self.bucket_counts[index] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def cumulative(self) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, the
        overflow bucket rendered as ``inf``."""
        pairs = []
        running = 0
        for edge, bucket in zip(self.edges, self.bucket_counts):
            running += bucket
            pairs.append((edge, running))
        pairs.append((math.inf, running + self.bucket_counts[-1]))
        return pairs

    def snapshot(self) -> dict:
        """Plain-data view (bucket edges as strings so ``inf`` and JSON
        coexist)."""
        return {
            "buckets": [
                ["%.12g" % edge, count] for edge, count in self.cumulative()
            ],
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Named instrument families, each fanned out per label set.

    ``base_labels`` are merged into every series' label set (caller
    labels win on collision) -- how the shard layer stamps a worker's
    entire registry with its shard identity so per-shard snapshots
    stay disjoint and merge associatively.
    """

    _KINDS = ("counter", "gauge", "histogram")

    def __init__(self, base_labels: Optional[Dict[str, object]] = None) -> None:
        #: family name -> (kind, help text)
        self._families: Dict[str, Tuple[str, str]] = {}
        #: (family name, label key) -> instrument
        self._series: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], object] = {}
        #: labels stamped onto every series of this registry
        self._base_labels: Dict[str, object] = dict(base_labels or {})

    def _instrument(
        self,
        kind: str,
        name: str,
        help_text: str,
        labels: Dict[str, object],
        factory,
    ):
        if self._base_labels:
            labels = {**self._base_labels, **labels}
        known = self._families.get(name)
        if known is None:
            self._families[name] = (kind, help_text)
        elif known[0] != kind:
            raise ValueError(
                "metric %r is a %s, requested as %s" % (name, known[0], kind)
            )
        key = (name, _label_key(labels))
        instrument = self._series.get(key)
        if instrument is None:
            instrument = factory()
            self._series[key] = instrument
        return instrument

    def counter(self, name: str, help_text: str = "", **labels) -> Counter:
        """The counter series for ``name`` + ``labels`` (created lazily)."""
        return self._instrument("counter", name, help_text, labels, Counter)

    def gauge(self, name: str, help_text: str = "", **labels) -> Gauge:
        """The gauge series for ``name`` + ``labels`` (created lazily)."""
        return self._instrument("gauge", name, help_text, labels, Gauge)

    def histogram(
        self,
        name: str,
        edges: Sequence[float],
        help_text: str = "",
        **labels,
    ) -> Histogram:
        """The histogram series for ``name`` + ``labels``.

        Every series of one family must share ``edges``; differing
        edges for an existing family is an error.
        """
        histogram = self._instrument(
            "histogram", name, help_text, labels, lambda: Histogram(edges)
        )
        if histogram.edges != tuple(edges):
            raise ValueError(
                "histogram %r already registered with edges %r, got %r"
                % (name, histogram.edges, tuple(edges))
            )
        return histogram

    @property
    def n_series(self) -> int:
        """Registered (family, label set) series."""
        return len(self._series)

    def families(self) -> List[Tuple[str, str, str]]:
        """``(name, kind, help)`` per family, sorted by name."""
        return [
            (name,) + self._families[name] for name in sorted(self._families)
        ]

    def series(self) -> List[Tuple[str, Tuple[Tuple[str, str], ...], object]]:
        """``(family, labels, instrument)`` sorted by (family, labels)."""
        return [
            (name, labels, self._series[(name, labels)])
            for name, labels in sorted(self._series)
        ]

    def snapshot(self) -> dict:
        """The whole registry as sorted plain data.

        ``{series id: {"kind": ..., **instrument state}}`` -- stable
        under label/family insertion order, so two same-seed runs
        produce byte-identical snapshots.
        """
        data = {}
        for name, labels, instrument in self.series():
            entry = {"kind": instrument.kind}
            entry.update(instrument.snapshot())
            data[render_series(name, labels)] = entry
        return data
