"""Deterministic exporters: JSON, Prometheus text, Chrome trace_event.

Three serializations of the same observations:

* :func:`trace_to_json` / :func:`metrics_to_json` -- canonical
  (sorted, compact) JSON; byte-identical across same-seed runs and
  round-trippable through ``TraceBuffer.from_json``.
* :func:`prometheus_text` -- the text exposition format scrape
  endpoints speak (``# HELP`` / ``# TYPE`` / cumulative ``_bucket``
  lines), families and series in sorted order.
* :func:`chrome_trace` -- the Chrome ``trace_event`` JSON-array
  format, so a routing run opens directly in Perfetto or
  ``chrome://tracing``: duration spans become complete (``"X"``)
  events, sim seconds become microsecond timestamps, and each
  platform gets its own track (tid) under one process (pid).

:func:`validate_chrome_trace` is the schema check the benchmark and
tests assert -- it verifies the invariants Perfetto's importer relies
on without needing Perfetto itself.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Span, TraceBuffer

__all__ = [
    "trace_to_json",
    "metrics_to_json",
    "prometheus_text",
    "chrome_trace",
    "chrome_trace_json",
    "validate_chrome_trace",
]

#: The single synthetic process id all tracks live under.
_PID = 1

#: Track (tid) reserved for spans with no platform attribute.
_ROUTER_TID = 0


def trace_to_json(buffer: TraceBuffer, indent: Optional[int] = None) -> str:
    """Canonical JSON of a trace buffer (sorted keys, stable order)."""
    return json.dumps(
        buffer.to_dicts(),
        sort_keys=True,
        indent=indent,
        separators=(",", ":") if indent is None else None,
    )


def metrics_to_json(
    registry: MetricsRegistry, indent: Optional[int] = None
) -> str:
    """Canonical JSON of a metrics snapshot."""
    return json.dumps(
        registry.snapshot(),
        sort_keys=True,
        indent=indent,
        separators=(",", ":") if indent is None else None,
    )


def _format_value(value: float) -> str:
    """Prometheus sample rendering (ints without a trailing .0)."""
    if isinstance(value, float) and value.is_integer() and math.isfinite(value):
        return "%d" % int(value)
    return "%.12g" % value


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format.

    Families sorted by name, series sorted by label set; histograms
    expose cumulative ``_bucket{le=...}`` plus ``_sum`` and
    ``_count``, matching the upper-inclusive bucket convention.
    """
    by_family: Dict[str, List] = {}
    for name, labels, instrument in registry.series():
        by_family.setdefault(name, []).append((labels, instrument))
    lines = []
    for name, kind, help_text in registry.families():
        if help_text:
            lines.append("# HELP %s %s" % (name, help_text))
        lines.append("# TYPE %s %s" % (name, kind))
        for labels, instrument in by_family.get(name, []):
            label_text = ",".join(
                '%s="%s"' % (key, value) for key, value in labels
            )
            if kind in ("counter", "gauge"):
                lines.append(
                    "%s%s %s"
                    % (
                        name,
                        "{%s}" % label_text if label_text else "",
                        _format_value(instrument.value),
                    )
                )
                continue
            for edge, cumulative_count in instrument.cumulative():
                le = "+Inf" if math.isinf(edge) else "%.12g" % edge
                bucket_labels = (
                    label_text + "," if label_text else ""
                ) + 'le="%s"' % le
                lines.append(
                    "%s_bucket{%s} %d" % (name, bucket_labels, cumulative_count)
                )
            suffix = "{%s}" % label_text if label_text else ""
            lines.append(
                "%s_sum%s %s" % (name, suffix, _format_value(instrument.sum))
            )
            lines.append("%s_count%s %d" % (name, suffix, instrument.count))
    return "\n".join(lines) + "\n"


def _span_tid(span: Span, tids: Dict[str, int]) -> int:
    """The Chrome track a span renders on (per-platform lanes)."""
    platform = span.attrs.get("platform")
    if platform is None:
        return _ROUTER_TID
    return tids.setdefault(str(platform), len(tids) + 1)


def chrome_trace(buffer: TraceBuffer) -> dict:
    """The trace as a Chrome ``trace_event`` object.

    Every span becomes one complete (``"X"``) event; instant spans get
    the 1-microsecond minimum duration Perfetto renders.  Metadata
    events name the process and the per-platform threads.  Timestamps
    are sim-clock microseconds -- the sim origin is ``ts=0``.
    """
    tids: Dict[str, int] = {}
    events = []
    for data in buffer.to_dicts():
        span = Span.from_dict(data)
        start_us = span.start_s * 1e6
        duration_us = max(span.duration_s * 1e6, 1.0)
        args = {key: span.attrs[key] for key in sorted(span.attrs)}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": start_us,
                "dur": duration_us,
                "pid": _PID,
                "tid": _span_tid(span, tids),
            }
        )
        events[-1]["args"] = args
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": _ROUTER_TID,
            "args": {"name": "repro router (sim time)"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": _ROUTER_TID,
            "args": {"name": "router"},
        },
    ]
    for platform in sorted(tids):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tids[platform],
                "args": {"name": platform},
            }
        )
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def chrome_trace_json(buffer: TraceBuffer, indent: Optional[int] = None) -> str:
    """Canonical JSON of :func:`chrome_trace`."""
    return json.dumps(
        chrome_trace(buffer),
        sort_keys=True,
        indent=indent,
        separators=(",", ":") if indent is None else None,
    )


def validate_chrome_trace(data: object) -> List[str]:
    """Schema-check a Chrome trace object; returns the problems found.

    Asserts the invariants the Perfetto / ``chrome://tracing``
    importer needs: a ``traceEvents`` list whose entries carry a
    ``name``, a known phase, integer pid/tid, and -- for ``"X"``
    complete events -- non-negative numeric ``ts``/``dur``.  An empty
    list means the trace loads.
    """
    problems = []
    if not isinstance(data, dict):
        return ["top level must be an object, got %s" % type(data).__name__]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    if not events:
        problems.append("traceEvents is empty")
    for index, event in enumerate(events):
        where = "traceEvents[%d]" % index
        if not isinstance(event, dict):
            problems.append("%s: not an object" % where)
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            problems.append("%s: missing name" % where)
        phase = event.get("ph")
        if phase not in ("X", "B", "E", "i", "I", "M", "C"):
            problems.append("%s: unknown phase %r" % (where, phase))
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append("%s: %s must be an int" % (where, field))
        if phase == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or isinstance(
                    value, bool
                ):
                    problems.append(
                        "%s: %s must be numeric" % (where, field)
                    )
                elif value < 0 or not math.isfinite(value):
                    problems.append(
                        "%s: %s must be finite and >= 0, got %r"
                        % (where, field, value)
                    )
        if "args" in event and not isinstance(event["args"], dict):
            problems.append("%s: args must be an object" % where)
    return problems
