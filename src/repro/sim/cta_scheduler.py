"""CTA (thread-block) schedulers: Round-Robin and Priority-SM (Fig. 7).

Hardware GPUs dispatch CTAs to SMs round-robin, filling every SM to its
occupancy limit -- fine for big grids, wasteful for the small grids of
non-batched CNN inference, where it smears a handful of CTAs across all
SMs and keeps every SM powered.

The paper's Priority-SM (PSM) scheduler instead packs ``optTLP`` CTAs
onto each SM in priority order, occupying only ``optSM`` SMs; the rest
can be power gated or released to other kernels.  Fig. 7's claim -- PSM
achieves nearly the same performance with half the SMs -- is reproduced
by ``benchmarks/bench_fig7_rr_vs_psm.py``.

Schedulers are small strategy objects: given the per-SM residency
vector they return the SM that should receive the next CTA, or ``None``
when no SM they are willing to use has a free slot.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["CTAScheduler", "RoundRobinScheduler", "PrioritySMScheduler"]


class CTAScheduler:
    """Strategy interface for CTA dispatch.

    Subclasses implement :meth:`select_sm`.  ``residency[i]`` is the
    number of CTAs currently resident on SM ``i``; ``max_ctas_per_sm``
    is the kernel's occupancy limit on this architecture.
    """

    name = "abstract"

    def select_sm(
        self, residency: Sequence[int], max_ctas_per_sm: int
    ) -> Optional[int]:
        """Return the SM index to dispatch the next CTA to, or None."""
        raise NotImplementedError

    def powered_sms(self, n_sms: int) -> int:
        """SMs that must stay powered while this scheduler runs."""
        return n_sms

    def reset(self) -> None:
        """Clear per-launch state (called once per kernel launch)."""


class RoundRobinScheduler(CTAScheduler):
    """Hardware-style dispatch: cycle over all SMs, skip full ones.

    Every SM ends up occupied (Fig. 7 left), so none can be gated.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def select_sm(
        self, residency: Sequence[int], max_ctas_per_sm: int
    ) -> Optional[int]:
        n_sms = len(residency)
        for offset in range(n_sms):
            index = (self._next + offset) % n_sms
            if residency[index] < max_ctas_per_sm:
                self._next = (index + 1) % n_sms
                return index
        return None


class PrioritySMScheduler(CTAScheduler):
    """P-CNN's packing dispatch (Section IV.C.2).

    Fills SM 0 to ``opt_tlp`` CTAs, then SM 1, ... up to ``opt_sm``
    SMs.  Once a CTA retires, its slot is refilled (still restricted to
    the first ``opt_sm`` SMs), so steady-state residency is ``opt_tlp``
    per occupied SM.  The ``n_sms - opt_sm`` never-touched SMs can be
    power gated -- :meth:`powered_sms` reports only ``opt_sm``.
    """

    name = "priority-sm"

    def __init__(self, opt_tlp: int, opt_sm: int) -> None:
        if opt_tlp < 1:
            raise ValueError("opt_tlp must be >= 1, got %r" % (opt_tlp,))
        if opt_sm < 1:
            raise ValueError("opt_sm must be >= 1, got %r" % (opt_sm,))
        self.opt_tlp = opt_tlp
        self.opt_sm = opt_sm

    def powered_sms(self, n_sms: int) -> int:
        return min(self.opt_sm, n_sms)

    def select_sm(
        self, residency: Sequence[int], max_ctas_per_sm: int
    ) -> Optional[int]:
        limit = min(self.opt_tlp, max_ctas_per_sm)
        usable = min(self.opt_sm, len(residency))
        for index in range(usable):
            if residency[index] < limit:
                return index
        return None
