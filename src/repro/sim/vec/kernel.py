"""Batched SM-residency kernel simulation (array twin of
:func:`repro.sim.engine.simulate_kernel`).

The reference simulator walks Python ``CTA``/``SMState`` objects:
per event it scans every SM for its next completion, subtracts
progress CTA by CTA and rebuilds residency lists.  This twin keeps
the whole residency matrix as one ``(n_sms, max_ctas_per_sm)``
float64 array of remaining work (empty slots hold ``+inf``) plus
int64 residency counts, and advances all SMs with three array
operations per event: a row-min, a broadcast subtract, and a retire
mask.

Bit-exactness with the reference is by construction:

* the per-CTA progress rate is the same expression
  (``peak * (t / (t + t_half)) / t``) evaluated element-wise;
* the global step is the minimum of per-SM ``min(remaining) / rate``
  values -- each computed by the identical scalar division, and a
  minimum is order-independent -- so the advanced interval is the
  same float;
* retirement uses the same ``remaining <= 1e-9`` post-subtraction
  test, and the CTA scheduler is the *real* strategy object driven
  through a synchronized Python residency list, preserving its
  internal state (e.g. Round-Robin's cursor) and therefore placement.

Differences are declared, not silent: trace collection is rejected
(use the reference when you need an :class:`ExecutionTrace`), and all
validation errors reuse the reference's messages.  The differential
suite (``tests/sim/test_vec_equivalence.py``) asserts field-for-field
equality of :class:`~repro.sim.engine.KernelResult` across
architectures, schedulers and libraries.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpu import occupancy
from repro.gpu.architecture import GPUArchitecture
from repro.gpu.kernels import GemmShape, SgemmKernel
from repro.gpu.libraries import KernelLibrary
from repro.sim.cta_scheduler import CTAScheduler, RoundRobinScheduler
from repro.sim.engine import KernelResult, _energy, cta_work
from repro.sim.sm import DEFAULT_TLP_HALF

__all__ = ["simulate_kernel_vec"]


def simulate_kernel_vec(
    arch: GPUArchitecture,
    kernel: SgemmKernel,
    shape: GemmShape,
    library: Optional[KernelLibrary] = None,
    scheduler: Optional[CTAScheduler] = None,
    max_ctas_per_sm: Optional[int] = None,
    collect_trace: bool = False,
) -> KernelResult:
    """Vectorized :func:`repro.sim.engine.simulate_kernel`.

    Accepts the same arguments; returns a bit-identical
    :class:`~repro.sim.engine.KernelResult` (modulo ``trace``, which
    this backend does not produce).
    """
    if collect_trace:
        raise ValueError(
            "simulate_kernel_vec does not collect traces; use "
            "repro.sim.engine.simulate_kernel for ExecutionTrace runs"
        )
    scheduler = scheduler or RoundRobinScheduler()
    scheduler.reset()
    if max_ctas_per_sm is None:
        max_ctas_per_sm = occupancy.ctas_per_sm(arch, kernel)
    if max_ctas_per_sm < 1:
        raise ValueError(
            "kernel %s cannot fit on %s (occupancy limit is 0)"
            % (kernel.name, arch.name)
        )
    issue_eff = library.issue_efficiency if library else 1.0
    overhead = library.transform_overhead if library else 1.0
    work = cta_work(kernel, shape)
    grid = kernel.grid_size(shape)
    peak_rate = arch.cores_per_sm * issue_eff

    n_sms = arch.n_sms
    cta_cost = work.weighted
    # Residency matrix: remaining work per (SM, slot); +inf marks an
    # empty slot, so row minima and retire masks ignore it naturally.
    remaining = np.full((n_sms, max_ctas_per_sm), np.inf, dtype=np.float64)
    counts = np.zeros(n_sms, dtype=np.int64)
    # The scheduler reads a plain-Python residency vector (like the
    # reference's list comprehension) -- kept in sync with `counts`.
    counts_list = [0] * n_sms
    busy_cycles = np.zeros(n_sms, dtype=np.float64)
    retired = np.zeros(n_sms, dtype=np.int64)
    next_cta = 0
    now = 0.0
    tlp_time_integral = 0.0

    def dispatch_until_stalled() -> None:
        nonlocal next_cta
        while next_cta < grid:
            target = scheduler.select_sm(counts_list, max_ctas_per_sm)
            if target is None:
                return
            remaining[target, counts_list[target]] = cta_cost
            counts_list[target] += 1
            counts[target] += 1
            next_cta += 1

    dispatch_until_stalled()
    left = grid
    while left > 0:
        active = counts > 0
        if not np.any(active):
            raise RuntimeError(
                "simulation deadlock: %d CTAs left but no SM is executing"
                % left
            )
        # rate[i] = peak * lhf(t_i) / t_i, the reference's exact ops.
        with np.errstate(divide="ignore", invalid="ignore"):
            hiding = counts / (counts + DEFAULT_TLP_HALF)
            rates = peak_rate * hiding / counts
            row_min = remaining.min(axis=1)
            step = float(np.min(row_min[active] / rates[active]))
        resident_now = int(counts.sum())
        tlp_time_integral += resident_now * step
        progressed = step * rates
        remaining[active] -= progressed[active, None]
        done = remaining <= 1e-9
        if done.any():
            row_done = done.sum(axis=1)
            remaining[done] = np.inf
            # Compact finite slots to the row front (ascending sort
            # parks the +inf vacancies at the tail); slot order inside
            # a row never affects any computed quantity.
            changed = row_done > 0
            remaining[changed] = np.sort(remaining[changed], axis=1)
            counts -= row_done
            retired += row_done
            left -= int(row_done.sum())
            for sm_id in np.flatnonzero(changed):
                counts_list[sm_id] = int(counts[sm_id])
        busy_cycles[active] += step
        now += step
        dispatch_until_stalled()

    cycles = now * overhead
    seconds = arch.cycles_to_seconds(cycles)
    dram_total = work.dram_bytes * grid
    bandwidth_floor = dram_total / arch.mem_bandwidth_bytes_per_s
    seconds = max(seconds, bandwidth_floor)
    cycles = arch.seconds_to_cycles(seconds)

    used = [sm_id for sm_id in range(n_sms) if retired[sm_id] > 0]
    sms_used = len(used)
    powered = max(scheduler.powered_sms(n_sms), sms_used)
    busy_list = busy_cycles.tolist()
    busy_sm_seconds = sum(
        arch.cycles_to_seconds(busy_list[sm_id] * overhead)
        for sm_id in used
    )
    avg_tlp = tlp_time_integral / now / max(sms_used, 1) if now > 0 else 0.0
    issued_capacity = (
        sum(busy_list[sm_id] for sm_id in used) * arch.cores_per_sm
    )
    activity = (
        min(1.0, (work.total_insts * grid) / issued_capacity)
        if issued_capacity
        else 0.0
    )
    energy_joules = _energy(arch, seconds, powered, busy_sm_seconds, activity)
    return KernelResult(
        cycles=cycles,
        seconds=seconds,
        grid_size=grid,
        sms_used=sms_used,
        powered_sms=powered,
        avg_tlp=avg_tlp,
        activity=activity,
        energy_joules=energy_joules,
        dram_bytes=dram_total,
        trace=None,
    )
