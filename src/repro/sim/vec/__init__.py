"""Vectorized (struct-of-arrays) twins of the simulation hot paths.

This package rewrites the discrete-event inner loops as numpy array
programs while the original object-per-event implementations stay in
place as the *reference oracle*:

* :mod:`repro.sim.vec.events` -- the SoA primitives: a ``(time, seq)``
  keyed binary heap over parallel float64/int64 arrays
  (:class:`SoAEventQueue`, pop-order bit-identical to ``heapq``) and
  the column-major arrival stream (:class:`ArrivalColumns`, ordering
  bit-identical to :func:`repro.serving.request.merge_loads`).
* :mod:`repro.sim.vec.scoring` -- element-wise SoC curves evaluated
  across whole request vectors with the exact scalar op order of
  :mod:`repro.core.satisfaction`.
* :mod:`repro.sim.vec.kernel` -- :func:`simulate_kernel_vec`, the
  batched SM-residency stepper mirroring
  :func:`repro.sim.engine.simulate_kernel` field for field.

The serving-side consumer is :mod:`repro.serving.vec_router`
(selected via ``RequestRouter(..., backend="vectorized")``); the
equivalence contract -- bit-identical ``RouterReport`` fingerprints,
event logs and obs exports on every seed -- is enforced by
``tests/sim/test_vec_equivalence.py`` and
``tests/serving/test_backend_equivalence.py``.
"""

from repro.sim.vec.events import ArrivalColumns, SoAEventQueue
from repro.sim.vec.kernel import simulate_kernel_vec
from repro.sim.vec.scoring import (
    soc_accuracy_vec,
    soc_time_vec,
    soc_value_vec,
)

__all__ = [
    "ArrivalColumns",
    "SoAEventQueue",
    "simulate_kernel_vec",
    "soc_accuracy_vec",
    "soc_time_vec",
    "soc_value_vec",
]
