"""Struct-of-arrays event-queue primitives for the vectorized backend.

Two data structures back :mod:`repro.serving.vec_router`:

* :class:`SoAEventQueue` -- a binary min-heap whose entries live in
  parallel scalar columns (float64 times, sequence numbers, kind
  codes, payloads) instead of per-event tuples.  The key is
  ``(time_s, seq)`` with a strictly monotone push sequence, so its pop
  order is bit-identical to pushing the same ``(time_s, seq)`` pairs
  through ``heapq`` -- equal timestamps drain in push (FIFO) order.
  The columns are plain Python lists rather than ndarrays: the heap
  only ever sees scalar element access (a handful of live events, no
  bulk operations), and extracting a numpy scalar costs several times
  a list index, so the list layout wins at every realistic size.
* :class:`ArrivalColumns` -- the column-major twin of
  :func:`repro.serving.request.merge_loads`: every tenant trace's
  arrival/deadline/difficulty clocks live in float64 arrays sorted by
  the same total ``(arrival, tenant name, position)`` key, and request
  ids are row indices along that order.  ``Request`` objects are only
  materialized on demand (lazily, for reports), which is most of the
  fast path's win.

Float64 storage is exact for every clock that flows through here:
``float(np.float64(x))`` round-trips bit-identically, so pushing a
reference-computed time through the arrays and popping it back cannot
perturb the simulation -- property-tested in
``tests/sim/test_soa_events.py``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.request import Request, Tenant, TenantLoad

__all__ = ["SoAEventQueue", "ArrivalColumns"]

_INF = math.inf


class SoAEventQueue:
    """A ``(time_s, seq)``-keyed binary min-heap in parallel columns.

    ``push`` assigns each entry the next monotone sequence number
    (starting at ``first_seq``), exactly like the reference router's
    ``push_seq`` counter; ``pop`` returns plain-Python scalars.  The
    columns are Python lists (see the module docstring for why not
    ndarrays); they grow by ``append`` and shrink on pop.
    """

    __slots__ = (
        "_times",
        "_seqs",
        "_kinds",
        "_payloads",
        "_next_seq",
        "version",
    )

    def __init__(self, first_seq: int = 0, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError(
                "capacity must be >= 1, got %r" % (capacity,)
            )
        self._times: List[float] = []
        self._seqs: List[int] = []
        self._kinds: List[int] = []
        self._payloads: List[int] = []
        self._next_seq = int(first_seq)
        #: Bumped on every mutation; lets a caller cache ``peek_time``
        #: and re-read it only when the heap actually changed (an
        #: attribute load is ~4x cheaper than the method call).
        self.version = 0

    def __len__(self) -> int:
        return len(self._times)

    @property
    def next_seq(self) -> int:
        """The sequence number the next ``push`` will consume."""
        return self._next_seq

    def push(self, time_s: float, kind: int, payload: int) -> int:
        """Insert one event; returns the sequence number it got."""
        times = self._times
        seqs = self._seqs
        kinds = self._kinds
        payloads = self._payloads
        size = len(times)
        seq = self._next_seq
        self._next_seq = seq + 1
        self.version += 1
        times.append(time_s)
        seqs.append(seq)
        kinds.append(kind)
        payloads.append(payload)
        # Sift up with a hole: shift ancestors down until the new key
        # fits, then store the entry once (half the array traffic of
        # swap-based sifting).  A fresh seq exceeds every stored one,
        # so the tie comparison always keeps the ancestor.
        child = size
        while child > 0:
            parent = (child - 1) >> 1
            tp = times[parent]
            if tp < time_s or (tp == time_s and seqs[parent] < seq):
                break
            times[child] = tp
            seqs[child] = seqs[parent]
            kinds[child] = kinds[parent]
            payloads[child] = payloads[parent]
            child = parent
        times[child] = time_s
        seqs[child] = seq
        kinds[child] = kind
        payloads[child] = payload
        return seq

    def peek_time(self) -> float:
        """The root's timestamp (``inf`` when empty)."""
        times = self._times
        return times[0] if times else _INF

    def pop(self) -> Tuple[float, int, int, int]:
        """Remove and return ``(time_s, seq, kind, payload)``."""
        times = self._times
        if not times:
            raise IndexError("pop from an empty SoAEventQueue")
        seqs = self._seqs
        kinds = self._kinds
        payloads = self._payloads
        out = (times[0], seqs[0], kinds[0], payloads[0])
        self.version += 1
        tail_t = times.pop()
        tail_s = seqs.pop()
        tail_k = kinds.pop()
        tail_p = payloads.pop()
        size = len(times)
        if size > 0:
            # Re-seat the displaced tail with a hole sift-down: pull
            # the smaller child up until the tail's key fits, then
            # store it once.
            parent = 0
            while True:
                left = 2 * parent + 1
                if left >= size:
                    break
                child = left
                tc = times[left]
                sc = seqs[left]
                right = left + 1
                if right < size:
                    tr = times[right]
                    if tr < tc or (tr == tc and seqs[right] < sc):
                        child = right
                        tc = tr
                        sc = seqs[right]
                if tail_t < tc or (tail_t == tc and tail_s < sc):
                    break
                times[parent] = tc
                seqs[parent] = sc
                kinds[parent] = kinds[child]
                payloads[parent] = payloads[child]
                parent = child
            times[parent] = tail_t
            seqs[parent] = tail_s
            kinds[parent] = tail_k
            payloads[parent] = tail_p
        return out


class ArrivalColumns:
    """Column-major arrival stream, ordering-identical to
    :func:`~repro.serving.request.merge_loads`.

    Rows are sorted by the total key ``(arrival_s, tenant name,
    per-tenant position)`` and the row index *is* the request id.  The
    float columns keep both numpy views (for vectorized scoring) and
    plain-list mirrors (scalar indexing on a Python list is several
    times faster than on an ndarray, and ``ndarray.tolist()`` converts
    float64 to the bit-identical Python float).
    """

    __slots__ = (
        "tenants",
        "n",
        "arrivals",
        "difficulty",
        "deadlines",
        "tenant_index",
        "arrivals_list",
        "tenant_index_list",
        "has_deadline_list",
        "_difficulty_list",
        "_deadlines_list",
        "_requests",
    )

    def __init__(self, loads: Sequence[TenantLoad]) -> None:
        seen = set()
        for load in loads:
            if load.tenant.name in seen:
                raise ValueError(
                    "duplicate tenant %r" % (load.tenant.name,)
                )
            seen.add(load.tenant.name)
        self.tenants: List[Tenant] = [load.tenant for load in loads]
        # Tenant-name ranks preserve lexicographic order, so the int
        # sort key below compares exactly like the reference's string.
        rank = {
            name: code
            for code, name in enumerate(
                sorted(load.tenant.name for load in loads)
            )
        }
        arrival_parts = []
        difficulty_parts = []
        tenant_parts = []
        name_parts = []
        position_parts = []
        for index, load in enumerate(loads):
            trace = load.trace
            count = trace.n_requests
            arrival_parts.append(
                np.asarray(trace.arrivals_s, dtype=np.float64)
            )
            difficulty_parts.append(
                np.asarray(trace.difficulty, dtype=np.float64)
            )
            tenant_parts.append(np.full(count, index, dtype=np.int64))
            name_parts.append(
                np.full(count, rank[load.tenant.name], dtype=np.int64)
            )
            position_parts.append(np.arange(count, dtype=np.int64))
        if arrival_parts:
            arrivals = np.concatenate(arrival_parts)
            difficulty = np.concatenate(difficulty_parts)
            tenant_index = np.concatenate(tenant_parts)
            names = np.concatenate(name_parts)
            positions = np.concatenate(position_parts)
        else:
            arrivals = np.empty(0, dtype=np.float64)
            difficulty = np.empty(0, dtype=np.float64)
            tenant_index = np.empty(0, dtype=np.int64)
            names = np.empty(0, dtype=np.int64)
            positions = np.empty(0, dtype=np.int64)
        # lexsort keys run minor-to-major: the reference sort key is
        # (arrival, tenant name, position).
        order = np.lexsort((positions, names, arrivals))
        self.arrivals = arrivals[order]
        self.difficulty = difficulty[order]
        self.tenant_index = tenant_index[order]
        unusable = np.array(
            [load.tenant.requirement.unusable_s for load in loads]
            or [0.0],
            dtype=np.float64,
        )
        self.deadlines = (
            self.arrivals + unusable[self.tenant_index]
            if len(loads)
            else np.empty(0, dtype=np.float64)
        )
        self.n = int(self.arrivals.shape[0])
        self.arrivals_list = self.arrivals.tolist()
        self.tenant_index_list = self.tenant_index.tolist()
        self.has_deadline_list = np.isfinite(self.deadlines).tolist()
        # The remaining list mirrors are off the admission hot path
        # (report assembly, calibration) and build on first use.
        self._difficulty_list: Optional[List[float]] = None
        self._deadlines_list: Optional[List[float]] = None
        self._requests: List[Optional[Request]] = [None] * self.n

    @property
    def difficulty_list(self) -> List[float]:
        mirror = self._difficulty_list
        if mirror is None:
            mirror = self.difficulty.tolist()
            self._difficulty_list = mirror
        return mirror

    @property
    def deadlines_list(self) -> List[float]:
        mirror = self._deadlines_list
        if mirror is None:
            mirror = self.deadlines.tolist()
            self._deadlines_list = mirror
        return mirror

    def request_at(self, rid: int) -> Request:
        """Materialize (and cache) the ``Request`` for one row."""
        request = self._requests[rid]
        if request is None:
            request = Request(
                rid=rid,
                tenant=self.tenants[self.tenant_index_list[rid]],
                arrival_s=self.arrivals_list[rid],
                difficulty=self.difficulty_list[rid],
            )
            self._requests[rid] = request
        return request

    def materialize_all(self) -> List[Request]:
        """Every request, eagerly (slow path / report assembly)."""
        return [self.request_at(rid) for rid in range(self.n)]
