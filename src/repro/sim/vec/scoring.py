"""Vectorized SoC curves (element-wise twins of
:mod:`repro.core.satisfaction`).

Each function evaluates the scalar reference's exact operation order
element-wise over float64 arrays, so every output element is
bit-identical to calling the scalar function on the same inputs: the
linear-decay branch is ``1.0 - (runtime - T_i) / span`` with ``span =
T_u - T_i``, the accuracy tail is ``threshold / entropy``, and Eq. 15
is ``soc_time * soc_accuracy / energy`` in that association.  Branches
are realized with ``np.where`` masks; the masked-out lanes may compute
``inf``/``nan`` intermediates (e.g. a background tenant's infinite
span), which is why the arithmetic runs under ``np.errstate`` -- the
selected lanes match the scalar branch outcomes exactly.

Used by the vectorized router backend to precompute per-(platform,
rung) accuracy columns across the whole request vector, and by the
differential tests as the array-vs-scalar oracle pairing.
"""

from __future__ import annotations

import numpy as np

from repro.core.satisfaction import TimeRequirement

__all__ = ["soc_time_vec", "soc_accuracy_vec", "soc_value_vec"]


def soc_time_vec(
    runtimes_s: np.ndarray, requirement: TimeRequirement
) -> np.ndarray:
    """Element-wise :func:`repro.core.satisfaction.soc_time`."""
    runtimes = np.asarray(runtimes_s, dtype=np.float64)
    if np.any(runtimes < 0):
        raise ValueError("runtime must be non-negative")
    imperceptible = requirement.imperceptible_s
    unusable = requirement.unusable_s
    span = unusable - imperceptible
    with np.errstate(divide="ignore", invalid="ignore"):
        decayed = 1.0 - (runtimes - imperceptible) / span
    return np.where(
        runtimes <= imperceptible,
        1.0,
        np.where(runtimes >= unusable, 0.0, decayed),
    )


def soc_accuracy_vec(
    entropies: np.ndarray, entropy_threshold: float
) -> np.ndarray:
    """Element-wise :func:`repro.core.satisfaction.soc_accuracy`."""
    values = np.asarray(entropies, dtype=np.float64)
    if np.any(values < 0) or entropy_threshold <= 0:
        raise ValueError("entropy must be >= 0 and threshold > 0")
    with np.errstate(divide="ignore", over="ignore"):
        degraded = entropy_threshold / values
    return np.where(values <= entropy_threshold, 1.0, degraded)


def soc_value_vec(
    soc_times: np.ndarray,
    soc_accuracies: np.ndarray,
    energy_joules: float,
) -> np.ndarray:
    """Element-wise Eq. 15 value: ``soc_time * soc_accuracy / energy``."""
    if energy_joules <= 0:
        raise ValueError("energy must be positive")
    times = np.asarray(soc_times, dtype=np.float64)
    accuracies = np.asarray(soc_accuracies, dtype=np.float64)
    return times * accuracies / energy_joules
