"""Event-driven kernel execution simulator (the GPGPU-Sim substitute).

The simulator advances time from CTA completion to CTA completion.  At
each event the chosen CTA scheduler refills freed slots; SM throughput
follows the latency-hiding model of :mod:`repro.sim.sm`.  A chip-level
DRAM bandwidth bound is applied at the end (a kernel cannot finish
faster than its global traffic can stream).

Two entry points:

* :func:`simulate_kernel` -- full event simulation; supports arbitrary
  CTA schedulers and produces an optional :class:`ExecutionTrace` and
  an energy estimate.  Used for the RR-vs-PSM experiments (Fig. 7) and
  the scheduler evaluation (Figs. 13-15).
* :func:`analytic_kernel_time_s` -- closed-form wave model matching the
  simulator's steady state; used by the offline time model (Eq. 12)
  where thousands of evaluations are needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.gpu import occupancy
from repro.gpu.architecture import GPUArchitecture
from repro.gpu.kernels import GemmShape, SgemmKernel
from repro.gpu.libraries import KernelLibrary
from repro.gpu.spilling import ACCESSES_PER_SPILL, COST_GLOBAL, COST_SHARED
from repro.sim.cta_scheduler import CTAScheduler, RoundRobinScheduler
from repro.sim.sm import CTA, DEFAULT_TLP_HALF, SMState
from repro.sim.trace import ExecutionTrace

__all__ = [
    "CTAWork",
    "cta_work",
    "KernelResult",
    "simulate_kernel",
    "analytic_kernel_time_s",
    "analytic_kernel_result",
]


@dataclass(frozen=True)
class CTAWork:
    """Instruction-mix breakdown of one CTA's execution.

    ``weighted`` is the scalar work fed to the SM throughput model:
    FFMAs count 1, shared-memory accesses :data:`COST_SHARED`, global
    accesses :data:`COST_GLOBAL`, bookkeeping 1.  ``dram_bytes`` feeds
    the chip bandwidth bound.
    """

    ffma: float
    shared_insts: float
    global_insts: float
    other_insts: float
    dram_bytes: float

    @property
    def weighted(self) -> float:
        """Scalar work in instruction-equivalents."""
        return (
            self.ffma
            + self.shared_insts * COST_SHARED
            + self.global_insts * COST_GLOBAL
            + self.other_insts
        )

    @property
    def total_insts(self) -> float:
        """Unweighted instruction count."""
        return self.ffma + self.shared_insts + self.global_insts + self.other_insts


def cta_work(kernel: SgemmKernel, shape: GemmShape) -> CTAWork:
    """Instruction mix of one CTA of ``kernel`` over ``shape``'s K depth.

    Operand tiles are fetched from DRAM once and staged through shared
    memory; results are stored once; spilled registers incur
    :data:`ACCESSES_PER_SPILL` accesses per K step per thread, placed
    wherever the spill plan put them.
    """
    k = shape.k_depth
    k_steps = math.ceil(k / kernel.k_unroll)
    # Tiles overhanging the matrix edge predicate their loads off: a
    # 128-column tile over a 1-column GEMM (batch-1 classifier) fetches
    # one column of B, not 128.  FFMA lanes still execute on padding
    # (rEC's waste), so only the memory terms are clamped.
    eff_m = min(kernel.tile_m, shape.m_rows)
    eff_n = min(kernel.tile_n, shape.n_cols)
    operand_elements = (eff_m + eff_n) * k
    results = eff_m * eff_n
    spill_sh_words = kernel.spilled_bytes_shared // 4
    spill_gl_words = kernel.spilled_bytes_global // 4
    spill_accesses = ACCESSES_PER_SPILL * k_steps * kernel.block_size
    global_insts = (
        operand_elements + results + spill_gl_words * spill_accesses
    )
    shared_insts = operand_elements + spill_sh_words * spill_accesses
    other = kernel.other_insts_per_cta(k)
    dram_bytes = 4.0 * (
        operand_elements + results + spill_gl_words * spill_accesses
    )
    return CTAWork(
        ffma=kernel.ffma_per_cta(k),
        shared_insts=float(shared_insts),
        global_insts=float(global_insts),
        other_insts=other,
        dram_bytes=dram_bytes,
    )


@dataclass(frozen=True)
class KernelResult:
    """Outcome of one simulated (or analytically modeled) kernel.

    Attributes
    ----------
    cycles / seconds:
        Kernel duration.
    grid_size:
        CTAs executed.
    sms_used:
        SMs that held at least one CTA.
    powered_sms:
        SMs that had to stay powered (scheduler-dependent).
    avg_tlp:
        Time-averaged CTAs per *used* SM.
    activity:
        Average issue activity of busy SMs in [0, 1] (drives dynamic
        power).
    energy_joules:
        Energy under the architecture's power model, honoring the
        scheduler's ``powered_sms``.
    dram_bytes:
        Total global-memory traffic.
    trace:
        Optional event trace.
    """

    cycles: float
    seconds: float
    grid_size: int
    sms_used: int
    powered_sms: int
    avg_tlp: float
    activity: float
    energy_joules: float
    dram_bytes: float
    trace: Optional[ExecutionTrace] = None

    @property
    def achieved_flops(self) -> float:
        """Not stored directly; compute via shape.flops / seconds."""
        raise AttributeError(
            "use shape.flops / result.seconds; the result does not retain "
            "the GEMM shape"
        )


def _energy(
    arch: GPUArchitecture,
    seconds: float,
    powered_sms: int,
    busy_sm_seconds: float,
    activity: float,
) -> float:
    """Integrate the three power components over one kernel."""
    static = arch.idle_power_w * seconds + powered_sms * arch.sm_static_power_w * seconds
    dynamic = busy_sm_seconds * activity * arch.sm_dynamic_power_w
    return static + dynamic


def simulate_kernel(
    arch: GPUArchitecture,
    kernel: SgemmKernel,
    shape: GemmShape,
    library: Optional[KernelLibrary] = None,
    scheduler: Optional[CTAScheduler] = None,
    max_ctas_per_sm: Optional[int] = None,
    collect_trace: bool = False,
) -> KernelResult:
    """Run one SGEMM launch through the event-driven simulator.

    ``library`` contributes its sustained issue efficiency and transform
    overhead (defaults to an ideal back-end).  ``scheduler`` defaults to
    hardware Round-Robin.  ``max_ctas_per_sm`` defaults to the
    occupancy limit of Eq. 5 (+ shared-memory/thread/CTA caps).
    """
    scheduler = scheduler or RoundRobinScheduler()
    scheduler.reset()
    if max_ctas_per_sm is None:
        max_ctas_per_sm = occupancy.ctas_per_sm(arch, kernel)
    if max_ctas_per_sm < 1:
        raise ValueError(
            "kernel %s cannot fit on %s (occupancy limit is 0)"
            % (kernel.name, arch.name)
        )
    issue_eff = library.issue_efficiency if library else 1.0
    overhead = library.transform_overhead if library else 1.0
    work = cta_work(kernel, shape)
    grid = kernel.grid_size(shape)
    peak_rate = arch.cores_per_sm * issue_eff

    sms = [SMState(i, peak_rate) for i in range(arch.n_sms)]
    trace = ExecutionTrace() if collect_trace else None
    next_cta = 0
    now = 0.0
    tlp_time_integral = 0.0

    def dispatch_until_stalled() -> None:
        nonlocal next_cta
        while next_cta < grid:
            residency = [sm.residency for sm in sms]
            target = scheduler.select_sm(residency, max_ctas_per_sm)
            if target is None:
                return
            cta = CTA(cta_id=next_cta, work=work.weighted)
            sms[target].dispatch(cta, now)
            if trace is not None:
                trace.record(now, "dispatch", cta.cta_id, target)
            next_cta += 1

    dispatch_until_stalled()
    remaining = grid
    while remaining > 0:
        step = None
        for sm in sms:
            candidate = sm.next_completion_in()
            if candidate is not None and (step is None or candidate < step):
                step = candidate
        if step is None:
            raise RuntimeError(
                "simulation deadlock: %d CTAs left but no SM is executing"
                % remaining
            )
        resident_now = sum(sm.residency for sm in sms)
        tlp_time_integral += resident_now * step
        for sm in sms:
            finished = sm.advance(step, now)
            for cta in finished:
                remaining -= 1
                if trace is not None:
                    trace.record(now + step, "retire", cta.cta_id, sm.sm_id)
        now += step
        dispatch_until_stalled()

    cycles = now * overhead
    seconds = arch.cycles_to_seconds(cycles)
    dram_total = work.dram_bytes * grid
    bandwidth_floor = dram_total / arch.mem_bandwidth_bytes_per_s
    seconds = max(seconds, bandwidth_floor)
    cycles = arch.seconds_to_cycles(seconds)

    used = [sm for sm in sms if sm.ctas_retired > 0]
    sms_used = len(used)
    powered = max(scheduler.powered_sms(arch.n_sms), sms_used)
    busy_sm_seconds = sum(
        arch.cycles_to_seconds(sm.busy_cycles * overhead) for sm in used
    )
    avg_tlp = tlp_time_integral / now / max(sms_used, 1) if now > 0 else 0.0
    # Issue activity: useful instructions versus what the busy SMs could
    # have issued while busy.
    issued_capacity = sum(sm.busy_cycles for sm in used) * arch.cores_per_sm
    activity = min(1.0, (work.total_insts * grid) / issued_capacity) if issued_capacity else 0.0
    energy_joules = _energy(arch, seconds, powered, busy_sm_seconds, activity)
    if trace is not None:
        trace.finalize({sm.sm_id: sm.busy_cycles for sm in used})
    return KernelResult(
        cycles=cycles,
        seconds=seconds,
        grid_size=grid,
        sms_used=sms_used,
        powered_sms=powered,
        avg_tlp=avg_tlp,
        activity=activity,
        energy_joules=energy_joules,
        dram_bytes=dram_total,
        trace=trace,
    )


def analytic_kernel_time_s(
    arch: GPUArchitecture,
    kernel: SgemmKernel,
    shape: GemmShape,
    library: Optional[KernelLibrary] = None,
    tlp: Optional[int] = None,
    n_sms: Optional[int] = None,
) -> float:
    """Closed-form kernel duration in seconds (smooth steady state).

    With ``g = GridSize / n_sms`` CTAs per SM over the whole launch and
    a residency cap of ``tlp``, the SM model's saturating rate
    ``R * t / (t + h)`` integrates to::

        cycles = (w / R) * (g + h * max(g / tlp, 1))

    which matches the event simulator in both limits: big grids run at
    the sustained rate ``R * tlp / (tlp + h)`` (the wave regime of
    Eq. 8), tiny grids pay one CTA's un-hidden latency ``w (1 + h) / R``.
    Unlike a ceil-based wave count, it is smooth in the grid size, so
    perforation's column reduction is always visible to the tuner.
    The DRAM bandwidth floor is applied as in the simulator.
    """
    if tlp is None:
        tlp = occupancy.ctas_per_sm(arch, kernel)
    if tlp < 1:
        raise ValueError("kernel does not fit: occupancy limit is 0")
    if n_sms is None:
        n_sms = arch.n_sms
    if not 1 <= n_sms <= arch.n_sms:
        raise ValueError(
            "n_sms must be in [1, %d], got %r" % (arch.n_sms, n_sms)
        )
    issue_eff = library.issue_efficiency if library else 1.0
    overhead = library.transform_overhead if library else 1.0
    work = cta_work(kernel, shape)
    grid = kernel.grid_size(shape)
    peak_rate = arch.cores_per_sm * issue_eff
    g = grid / n_sms
    hiding_half = DEFAULT_TLP_HALF
    cycles = (work.weighted / peak_rate) * (g + hiding_half * max(g / tlp, 1.0))
    seconds = arch.cycles_to_seconds(cycles * overhead)
    bandwidth_floor = work.dram_bytes * grid / arch.mem_bandwidth_bytes_per_s
    return max(seconds, bandwidth_floor)


def analytic_kernel_result(
    arch: GPUArchitecture,
    kernel: SgemmKernel,
    shape: GemmShape,
    library: Optional[KernelLibrary] = None,
    tlp: Optional[int] = None,
    n_sms: Optional[int] = None,
    powered_sms: Optional[int] = None,
) -> KernelResult:
    """Closed-form :class:`KernelResult` (no event loop, no trace).

    Large batched launches produce grids of 10^4..10^6 CTAs, where the
    event simulation adds nothing but wall-clock time; this fast path
    agrees with :func:`simulate_kernel` in the steady state and is what
    :class:`repro.core.runtime.scheduler.RuntimeKernelManager` switches
    to above its grid-size cutoff.
    """
    if tlp is None:
        tlp = occupancy.ctas_per_sm(arch, kernel)
    if n_sms is None:
        n_sms = arch.n_sms
    seconds = analytic_kernel_time_s(
        arch, kernel, shape, library=library, tlp=tlp, n_sms=n_sms
    )
    work = cta_work(kernel, shape)
    grid = kernel.grid_size(shape)
    sms_used = min(n_sms, grid)
    powered = powered_sms if powered_sms is not None else sms_used
    powered = max(powered, sms_used)
    busy_sm_seconds = seconds * sms_used
    issued_capacity = (
        arch.seconds_to_cycles(busy_sm_seconds) * arch.cores_per_sm
    )
    activity = (
        min(1.0, (work.total_insts * grid) / issued_capacity)
        if issued_capacity
        else 0.0
    )
    energy_joules = _energy(arch, seconds, powered, busy_sm_seconds, activity)
    return KernelResult(
        cycles=arch.seconds_to_cycles(seconds),
        seconds=seconds,
        grid_size=grid,
        sms_used=sms_used,
        powered_sms=powered,
        avg_tlp=min(tlp, grid / max(sms_used, 1)),
        activity=activity,
        energy_joules=energy_joules,
        dram_bytes=work.dram_bytes * grid,
        trace=None,
    )
