"""Streaming-multiprocessor execution model.

An SM processes the instruction streams of its resident CTAs.  The
throughput model has two ingredients:

* a peak rate of ``cores_per_sm`` instruction-equivalents per cycle,
  derated by the kernel library's sustained ``issue_efficiency``;
* a latency-hiding curve: with ``t`` resident CTAs the SM reaches
  ``t / (t + t_half)`` of that derated peak.  One lonely CTA cannot
  cover pipeline and memory latency; more residency asymptotically
  saturates the SM.  This is the mechanism behind the paper's central
  trade-off (Section III.D): smaller tiles/registers raise ``t`` and
  the hiding factor, but also raise per-CTA instruction counts.

Resident CTAs share the SM's rate equally, which is what a fine-grained
warp scheduler averages out to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["CTA", "SMState", "latency_hiding_factor", "DEFAULT_TLP_HALF"]

#: Residency at which an SM reaches half of its saturated rate.
DEFAULT_TLP_HALF = 1.0


def latency_hiding_factor(resident_ctas: int, tlp_half: float = DEFAULT_TLP_HALF) -> float:
    """Fraction of the SM's derated peak achieved at this residency.

    Saturating curve ``t / (t + t_half)``; 0 when the SM is empty.
    """
    if resident_ctas <= 0:
        return 0.0
    return resident_ctas / (resident_ctas + tlp_half)


@dataclass
class CTA:
    """One thread block in flight.

    ``work`` is in instruction-equivalents (weighted by access costs,
    see :func:`repro.sim.engine.cta_work`); ``remaining`` counts down as
    the simulation advances.
    """

    cta_id: int
    work: float
    remaining: float = field(default=-1.0)
    start_cycle: float = field(default=-1.0)
    finish_cycle: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if self.work <= 0:
            raise ValueError("CTA work must be positive, got %r" % (self.work,))
        if self.remaining < 0:
            self.remaining = self.work


class SMState:
    """Mutable state of one SM during a kernel simulation."""

    def __init__(
        self,
        sm_id: int,
        peak_rate_per_cycle: float,
        tlp_half: float = DEFAULT_TLP_HALF,
    ) -> None:
        if peak_rate_per_cycle <= 0:
            raise ValueError("peak rate must be positive")
        self.sm_id = sm_id
        self.peak_rate = peak_rate_per_cycle
        self.tlp_half = tlp_half
        self.resident: List[CTA] = []
        self.busy_cycles = 0.0
        self.ctas_retired = 0

    @property
    def residency(self) -> int:
        """Number of CTAs currently resident."""
        return len(self.resident)

    @property
    def rate_per_cta(self) -> float:
        """Progress rate of each resident CTA (work units per cycle)."""
        t = self.residency
        if t == 0:
            return 0.0
        return self.peak_rate * latency_hiding_factor(t, self.tlp_half) / t

    def dispatch(self, cta: CTA, now: float) -> None:
        """Place a CTA on this SM."""
        cta.start_cycle = now
        self.resident.append(cta)

    def next_completion_in(self) -> Optional[float]:
        """Cycles until the first resident CTA retires (None if idle)."""
        rate = self.rate_per_cta
        if rate <= 0.0:
            return None
        return min(cta.remaining for cta in self.resident) / rate

    def advance(self, cycles: float, now: float) -> List[CTA]:
        """Progress all resident CTAs by ``cycles``; return retirees."""
        if not self.resident:
            return []
        rate = self.rate_per_cta
        progressed = cycles * rate
        finished: List[CTA] = []
        survivors: List[CTA] = []
        for cta in self.resident:
            cta.remaining -= progressed
            if cta.remaining <= 1e-9:
                cta.remaining = 0.0
                cta.finish_cycle = now + cycles
                finished.append(cta)
            else:
                survivors.append(cta)
        self.resident = survivors
        self.busy_cycles += cycles
        self.ctas_retired += len(finished)
        return finished
