"""Execution traces for kernel simulations.

The trace records CTA dispatch/retire events and per-SM busy time so
tests and benchmarks can assert *where* work ran (e.g. PSM confines a
4-CTA grid to 2 SMs while RR smears it over 4 -- Fig. 7), not just how
long it took.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["TraceEvent", "ExecutionTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One scheduling event.

    ``kind`` is ``"dispatch"`` or ``"retire"``; ``cycle`` is the
    simulation timestamp.
    """

    cycle: float
    kind: str
    cta_id: int
    sm_id: int


@dataclass
class ExecutionTrace:
    """Event log plus per-SM aggregate statistics for one launch."""

    events: List[TraceEvent] = field(default_factory=list)
    busy_cycles_per_sm: Dict[int, float] = field(default_factory=dict)
    ctas_per_sm: Dict[int, int] = field(default_factory=dict)

    def record(self, cycle: float, kind: str, cta_id: int, sm_id: int) -> None:
        """Append an event."""
        self.events.append(TraceEvent(cycle, kind, cta_id, sm_id))
        if kind == "dispatch":
            self.ctas_per_sm[sm_id] = self.ctas_per_sm.get(sm_id, 0) + 1

    def finalize(self, busy_cycles_per_sm: Dict[int, float]) -> None:
        """Store the per-SM busy-cycle totals at end of simulation."""
        self.busy_cycles_per_sm = dict(busy_cycles_per_sm)

    @property
    def sms_used(self) -> Tuple[int, ...]:
        """SMs that received at least one CTA, sorted."""
        return tuple(sorted(self.ctas_per_sm))

    @property
    def n_sms_used(self) -> int:
        """Number of SMs that ever held a CTA."""
        return len(self.ctas_per_sm)

    def dispatches(self) -> List[TraceEvent]:
        """All dispatch events in order."""
        return [e for e in self.events if e.kind == "dispatch"]

    def max_concurrency(self) -> Dict[int, int]:
        """Peak simultaneous residency observed per SM."""
        current: Dict[int, int] = {}
        peak: Dict[int, int] = {}
        for event in self.events:
            if event.kind == "dispatch":
                current[event.sm_id] = current.get(event.sm_id, 0) + 1
            elif event.kind == "retire":
                current[event.sm_id] = current.get(event.sm_id, 0) - 1
            peak[event.sm_id] = max(
                peak.get(event.sm_id, 0), current.get(event.sm_id, 0)
            )
        return peak
