"""Warp-level issue simulation: deriving the latency-hiding curve.

The CTA-level model of :mod:`repro.sim.sm` *assumes* a saturating
residency curve ``rate(t) = peak * t / (t + h)`` with ``h = 1`` CTA.
This module derives that curve from first principles with a small
warp-level simulation of the Table VI configuration (32-thread warps,
a greedy-then-oldest (GTO) warp scheduler, single-issue SM front end):

* each warp executes an instruction stream mixing compute ops
  (pipeline latency ~10 cycles) and memory ops (DRAM latency ~300
  cycles) in the kernel's instruction-mix proportions;
* the scheduler issues from the current warp until it stalls on a
  dependency (GTO), then switches to the oldest ready warp;
* achieved IPC over a long window, swept over the resident warp count,
  is the latency-hiding curve.

:func:`fit_tlp_half` least-squares-fits ``t/(t+h)`` to the simulated
curve; the validation test checks the CTA-level default ``h = 1`` CTA
(= ``block/32`` warps at that block size) falls inside the band the
warp simulation produces for SGEMM-like instruction mixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = [
    "WarpIssueConfig",
    "simulate_issue_efficiency",
    "hiding_curve",
    "fit_tlp_half",
]

#: Pipeline latency of an arithmetic instruction (cycles).
COMPUTE_LATENCY = 10

#: Latency of a global-memory instruction (cycles).
MEMORY_LATENCY = 300


@dataclass(frozen=True)
class WarpIssueConfig:
    """Instruction-stream statistics of one kernel's warps.

    ``memory_fraction`` is the share of issued instructions that go to
    global memory; ``ilp`` is the number of back-to-back independent
    instructions a warp can issue before hitting a dependency on an
    outstanding result (SGEMM's unrolled FFMA chains give ~4-8).
    """

    memory_fraction: float = 0.06
    ilp: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.memory_fraction <= 1.0:
            raise ValueError("memory_fraction must be in [0, 1]")
        if self.ilp < 1:
            raise ValueError("ilp must be >= 1")


def simulate_issue_efficiency(
    n_warps: int,
    config: WarpIssueConfig = WarpIssueConfig(),
    horizon_cycles: int = 20000,
) -> float:
    """Fraction of cycles the SM issues with ``n_warps`` resident.

    Deterministic GTO simulation: a warp issues ``ilp`` instructions
    (one per cycle), then stalls until the latency of the oldest of
    those instructions expires; every ``1/memory_fraction``-th
    instruction is a memory op.  The scheduler prefers the current
    warp, falling back to the oldest ready one.
    """
    if n_warps < 1:
        raise ValueError("n_warps must be >= 1")
    period = max(1, round(1.0 / config.memory_fraction)) if config.memory_fraction else 0

    ready_at = [0] * n_warps  # cycle at which each warp can issue again
    issued_count = [0] * n_warps
    burst_left = [config.ilp] * n_warps
    issued_total = 0
    current = 0
    cycle = 0
    while cycle < horizon_cycles:
        # GTO: stick with `current` if it can issue, else oldest ready.
        candidate = None
        if ready_at[current] <= cycle:
            candidate = current
        else:
            best_ready = None
            for w in range(n_warps):
                if ready_at[w] <= cycle and (
                    best_ready is None or ready_at[w] < ready_at[best_ready]
                ):
                    best_ready = w
            candidate = best_ready
        if candidate is None:
            # Nothing ready: fast-forward to the next wake-up.
            cycle = min(ready_at)
            continue
        current = candidate
        issued_total += 1
        issued_count[current] += 1
        is_memory = period and issued_count[current] % period == 0
        burst_left[current] -= 1
        if burst_left[current] <= 0 or is_memory:
            latency = MEMORY_LATENCY if is_memory else COMPUTE_LATENCY
            ready_at[current] = cycle + latency
            burst_left[current] = config.ilp
        cycle += 1
    return issued_total / horizon_cycles


def hiding_curve(
    max_warps: int = 32,
    config: WarpIssueConfig = WarpIssueConfig(),
) -> List[Tuple[int, float]]:
    """(resident warps, issue efficiency) over the residency sweep."""
    if max_warps < 1:
        raise ValueError("max_warps must be >= 1")
    return [
        (w, simulate_issue_efficiency(w, config))
        for w in range(1, max_warps + 1)
    ]


def fit_tlp_half(
    curve: Sequence[Tuple[int, float]], warps_per_cta: int = 8
) -> float:
    """Least-squares fit of ``eff(t) = t / (t + h)`` in *CTA* units.

    ``warps_per_cta`` converts the warp-residency axis to CTAs (a
    256-thread block is 8 warps).  Closed form: for each point,
    ``h_i = t_i (1 - e_i) / e_i``; the fit is the efficiency-weighted
    mean of the per-point estimates.
    """
    if warps_per_cta < 1:
        raise ValueError("warps_per_cta must be >= 1")
    estimates = []
    weights = []
    for warps, eff in curve:
        if eff <= 0.0 or eff >= 1.0:
            continue
        t_ctas = warps / warps_per_cta
        estimates.append(t_ctas * (1.0 - eff) / eff)
        weights.append(eff)
    if not estimates:
        raise ValueError("curve has no fittable points")
    total = sum(weights)
    return sum(h * w for h, w in zip(estimates, weights)) / total
