"""Event-driven GPU kernel simulator (the GPGPU-Sim substitute).

Provides CTA schedulers (Round-Robin, Priority-SM), the SM
latency-hiding throughput model, the kernel execution engine and
execution traces.
"""

from repro.sim.cta_scheduler import (
    CTAScheduler,
    PrioritySMScheduler,
    RoundRobinScheduler,
)
from repro.sim.engine import (
    CTAWork,
    KernelResult,
    analytic_kernel_time_s,
    cta_work,
    simulate_kernel,
)
from repro.sim.multikernel import (
    SharedRunResult,
    TenantResult,
    TenantSpec,
    partition_for_layer,
    simulate_shared,
)
from repro.sim.sm import CTA, SMState, latency_hiding_factor
from repro.sim.trace import ExecutionTrace, TraceEvent
from repro.sim.warp import (
    WarpIssueConfig,
    fit_tlp_half,
    hiding_curve,
    simulate_issue_efficiency,
)

__all__ = [
    "CTAScheduler",
    "PrioritySMScheduler",
    "RoundRobinScheduler",
    "CTAWork",
    "KernelResult",
    "analytic_kernel_time_s",
    "cta_work",
    "simulate_kernel",
    "SharedRunResult",
    "TenantResult",
    "TenantSpec",
    "partition_for_layer",
    "simulate_shared",
    "CTA",
    "SMState",
    "latency_hiding_factor",
    "ExecutionTrace",
    "TraceEvent",
    "WarpIssueConfig",
    "fit_tlp_half",
    "hiding_curve",
    "simulate_issue_efficiency",
]
