"""Spatial multi-kernel execution: sharing the chip between tenants.

Section III.D.2 of the paper discusses why MPS-style multi-processing
cannot give CNN inference latency guarantees (no control over where
thread blocks land) and why naive spatial multitasking wastes SMs
(per-layer Util varies).  P-CNN's answer is that Eq. 11's ``optSM``
frees ``nSMs - optSM`` SMs *per layer* which can host a co-tenant
without touching the primary kernel's wave count.

This module makes that concrete: :func:`simulate_shared` runs several
kernels concurrently, either under a static SM partition
(:func:`partition_for_layer` builds the paper's own-SMs/released-SMs
split) or fully mixed (the MPS-style baseline).  Under the partition
the primary layer keeps its solo latency while the co-tenant gets real
throughput out of the freed SMs; mixed, both tenants' CTAs compete for
every SM and the primary's latency becomes load-dependent -- exactly
the paper's argument against MPS for time-sensitive inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.gpu import occupancy
from repro.gpu.architecture import GPUArchitecture
from repro.gpu.kernels import GemmShape, SgemmKernel
from repro.gpu.libraries import KernelLibrary
from repro.sim.engine import cta_work
from repro.sim.sm import CTA, SMState

__all__ = [
    "TenantSpec",
    "TenantResult",
    "SharedRunResult",
    "simulate_shared",
    "partition_for_layer",
]


@dataclass(frozen=True)
class TenantSpec:
    """One kernel stream in a shared run."""

    name: str
    kernel: SgemmKernel
    shape: GemmShape
    library: Optional[KernelLibrary] = None
    max_ctas_per_sm: Optional[int] = None

    def occupancy_cap(self, arch: GPUArchitecture) -> int:
        """Per-SM residency cap for this tenant."""
        if self.max_ctas_per_sm is not None:
            return self.max_ctas_per_sm
        return occupancy.ctas_per_sm(arch, self.kernel)


@dataclass(frozen=True)
class TenantResult:
    """Per-tenant outcome of a shared run."""

    name: str
    seconds: float
    grid_size: int
    sms_used: int

    @property
    def throughput_ctas_per_s(self) -> float:
        """CTA completion rate."""
        return self.grid_size / self.seconds if self.seconds else 0.0


@dataclass(frozen=True)
class SharedRunResult:
    """Outcome of running two tenants on one chip."""

    tenants: Tuple[TenantResult, ...]
    makespan_s: float

    def tenant(self, name: str) -> TenantResult:
        """Look up one tenant's result."""
        for result in self.tenants:
            if result.name == name:
                return result
        raise KeyError("no tenant %r" % (name,))


def partition_for_layer(
    arch: GPUArchitecture, opt_sm: int
) -> Tuple[Sequence[int], Sequence[int]]:
    """The paper's partition: the primary layer owns SMs [0, optSM),
    a co-tenant owns the released SMs [optSM, nSMs)."""
    if not 1 <= opt_sm <= arch.n_sms:
        raise ValueError("opt_sm must be in [1, %d]" % (arch.n_sms,))
    return tuple(range(opt_sm)), tuple(range(opt_sm, arch.n_sms))


def simulate_shared(
    arch: GPUArchitecture,
    tenants: Sequence[Tuple[TenantSpec, Sequence[int]]],
    mix: bool = False,
) -> SharedRunResult:
    """Run multiple kernels concurrently on one simulated chip.

    ``tenants`` pairs each spec with the SM indices it may use; with
    ``mix=True`` the partitions are ignored and every tenant may place
    CTAs on every SM (the MPS-style baseline), with residency shared
    fairly up to the per-tenant occupancy cap.

    Each SM executes the CTAs resident on it regardless of owner; the
    latency-hiding model sees the *total* residency, so co-located
    tenants slow each other exactly as competing blocks would.
    """
    if not tenants:
        raise ValueError("at least one tenant required")
    sms = [SMState(i, arch.cores_per_sm) for i in range(arch.n_sms)]
    n_sms = arch.n_sms

    class _Stream:
        def __init__(
            self, tag: int, spec: TenantSpec, allowed: Sequence[int]
        ) -> None:
            self.tag = tag
            self.spec = spec
            self.allowed = tuple(range(n_sms)) if mix else tuple(allowed)
            if not self.allowed:
                raise ValueError(
                    "tenant %r has no SMs assigned" % (spec.name,)
                )
            eff = spec.library.issue_efficiency if spec.library else 1.0
            overhead = spec.library.transform_overhead if spec.library else 1.0
            self.work = cta_work(spec.kernel, spec.shape).weighted / eff * overhead
            self.cap = spec.occupancy_cap(arch)
            self.remaining = spec.kernel.grid_size(spec.shape)
            self.resident = 0
            self.next_id = 0
            self.finish_cycle = None
            self.sms_used = set()

        def resident_on(self, sm_index: int) -> int:
            return sum(
                1 for cta in sms[sm_index].resident if cta.cta_id // 10**6 == self.tag
            )

    streams = [
        _Stream(tag, spec, allowed)
        for tag, (spec, allowed) in enumerate(tenants)
    ]

    def dispatch() -> None:
        progress = True
        while progress:
            progress = False
            for stream in streams:
                if stream.remaining <= stream.resident:
                    continue
                # least-loaded allowed SM with room under the cap
                best = None
                for index in stream.allowed:
                    if stream.resident_on(index) >= stream.cap:
                        continue
                    if best is None or sms[index].residency < sms[best].residency:
                        best = index
                if best is None:
                    continue
                cta = CTA(
                    cta_id=stream.tag * 10**6 + stream.next_id,
                    work=stream.work,
                )
                stream.next_id += 1
                stream.resident += 1
                stream.sms_used.add(best)
                sms[best].dispatch(cta, now)
                progress = True

    now = 0.0
    dispatch()
    total_remaining = sum(s.remaining for s in streams)
    while total_remaining > 0:
        step = None
        for sm in sms:
            candidate = sm.next_completion_in()
            if candidate is not None and (step is None or candidate < step):
                step = candidate
        if step is None:
            raise RuntimeError("deadlock: work remains but nothing executes")
        for sm in sms:
            for cta in sm.advance(step, now):
                stream = streams[cta.cta_id // 10**6]
                stream.remaining -= 1
                stream.resident -= 1
                total_remaining -= 1
                if stream.remaining == 0:
                    stream.finish_cycle = now + step
        now += step
        dispatch()

    results = tuple(
        TenantResult(
            name=stream.spec.name,
            seconds=arch.cycles_to_seconds(stream.finish_cycle or now),
            grid_size=stream.spec.kernel.grid_size(stream.spec.shape),
            sms_used=len(stream.sms_used),
        )
        for stream in streams
    )
    return SharedRunResult(tenants=results, makespan_s=arch.cycles_to_seconds(now))
