"""Result integrity validation: never trust a worker's payload.

A spawn worker returns its result over a pipe; between ``os.fork`` -
less spawn bootstrap, pickling and a possibly-dying process there are
plenty of ways to receive garbage.  :func:`validate_result` is the
supervisor's acceptance gate: a structural schema check (is this a
shard result at all, does it answer *this* spec), then a semantic
cross-check (the worker declares its report fingerprint before
returning; the supervisor recomputes it from the received report --
any in-flight mutation shows up as a mismatch), then conservation
(every request offered to the shard must have a terminal record).

Everything is duck-typed: the module imports nothing from
:mod:`repro.serving`, so the supervisor stays generic and the import
graph stays acyclic.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["validate_result", "witness_disagreement"]


def _expected_offered(spec) -> Optional[int]:
    """How many requests the spec offers, when it says."""
    loads = getattr(spec, "loads", None)
    if loads is None:
        return None
    total = 0
    for load in loads:
        trace = getattr(load, "trace", None)
        if trace is None or not hasattr(trace, "n_requests"):
            return None
        total += trace.n_requests
    return total


def validate_result(spec, result) -> Optional[str]:
    """The reason ``result`` is unacceptable for ``spec`` (or None).

    Checks, in order: payload shape (``shard_id`` / ``report``
    present, report fingerprintable), identity (the result answers
    this spec's shard and seed), fingerprint integrity (declared ==
    recomputed), request conservation (``n_offered`` matches the
    spec's loads), and span presence for instrumented specs.
    """
    if result is None:
        return "no result payload"
    shard_id = getattr(result, "shard_id", None)
    report = getattr(result, "report", None)
    if shard_id is None or report is None:
        return "schema: payload is not a shard result (%s)" % (
            type(result).__name__,
        )
    if shard_id != spec.shard_id:
        return "schema: result for shard %r answers spec for shard %r" % (
            shard_id, spec.shard_id,
        )
    seed = getattr(result, "seed", None)
    want_seed = getattr(spec, "seed", None)
    if seed is not None and want_seed is not None and seed != want_seed:
        return "schema: result seed %r != spec seed %r" % (seed, want_seed)
    fingerprint = getattr(report, "fingerprint", None)
    if not callable(fingerprint):
        return "schema: report of type %s is not fingerprintable" % (
            type(report).__name__,
        )
    try:
        recomputed = fingerprint()
    except Exception as error:  # corrupted report internals
        return "integrity: fingerprint recompute failed (%s: %s)" % (
            type(error).__name__, error,
        )
    declared = getattr(result, "declared_fingerprint", None)
    if declared is not None and declared != recomputed:
        return (
            "integrity: declared fingerprint %s != recomputed %s"
            % (declared, recomputed)
        )
    expected = _expected_offered(spec)
    observed = getattr(report, "n_offered", None)
    if expected is not None and observed is not None and observed != expected:
        return (
            "integrity: report accounts for %d requests, spec offered %d"
            % (observed, expected)
        )
    if getattr(spec, "instrument", False) and getattr(
        result, "spans", None
    ) is None:
        return "schema: instrumented spec returned no spans"
    return None


def witness_disagreement(primary, witness) -> Optional[str]:
    """Why a witness re-execution disagrees with the primary (or None).

    Both results have already passed :func:`validate_result`; the
    witness ran the same spec clean, so any fingerprint divergence
    means the primary's report is self-consistent but wrong (forged,
    or produced by a nondeterministic worker).
    """
    primary_fp = primary.report.fingerprint()
    witness_fp = witness.report.fingerprint()
    if primary_fp != witness_fp:
        return (
            "witness: primary fingerprint %s != witness %s"
            % (primary_fp, witness_fp)
        )
    return None
