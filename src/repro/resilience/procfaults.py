"""Seeded process-fault injection: the chaos monkey for shard workers.

:mod:`repro.faults` injects faults into the *simulated* hardware; a
:class:`ProcFaultPlan` injects faults into the *real* orchestration
layer -- the spawn workers themselves.  A plan rides inside a
``ShardSpec`` (duck-typed, like ``ShardSpec.controller``) and the
worker consults it exactly once, at the top of ``run_shard``:

* ``crash``    -- the worker kills itself via ``os._exit`` before
  producing a result (the supervisor sees a dead process);
* ``hang``     -- the worker sleeps ``hang_s`` before running (the
  supervisor's wall-clock timeout fires and kills it);
* ``corrupt``  -- the worker completes but mutates its report after
  declaring its fingerprint (integrity validation catches the stale
  declaration);
* ``truncate`` -- the worker returns a payload that is not a shard
  result at all (schema validation catches it);
* ``forge``    -- the worker mutates its report *and* re-declares a
  self-consistent fingerprint (only witness quorum catches it).

Decisions are a pure function of ``(seed, shard_id, attempt)`` via
SHA-1 -- no RNG state, no wall clock -- so a supervised run under
injection is exactly as replayable as the simulation it wraps:
same plan, same kills, same retries, same merged fingerprint.

This module is stdlib-only and imports nothing from
:mod:`repro.serving`, so either layer can hold a plan without import
cycles.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["FAULT_KINDS", "ProcFaultPlan"]

#: Every fault kind a plan can decide, in threshold order.
FAULT_KINDS = ("crash", "hang", "corrupt", "truncate", "forge")

#: Kinds that tamper with an otherwise-complete result (applied after
#: the worker finishes, as opposed to killing/stalling it first).
TAMPER_KINDS = ("corrupt", "truncate", "forge")


def _unit(seed: int, shard_id: int, attempt: int) -> float:
    """A deterministic draw in ``[0, 1)`` for one (shard, attempt)."""
    digest = hashlib.sha1(
        ("procfault:%d:%d:%d" % (seed, shard_id, attempt)).encode("ascii")
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class ProcFaultPlan:
    """A picklable, seeded schedule of worker-process faults.

    ``forced`` pins specific shards to specific kinds (the benchmarks
    use it: "shard 1 crashes, shard 2 hangs"); everything else draws
    from the rates.  ``max_faulty_attempts`` bounds injection per
    shard: attempts beyond it run clean, so a supervisor with
    ``max_attempts > max_faulty_attempts`` always converges -- the
    recovered run is bit-identical to a fault-free one because the
    sim seed never depends on the attempt number.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    corrupt_rate: float = 0.0
    truncate_rate: float = 0.0
    forge_rate: float = 0.0
    #: Explicit (shard_id, kind) pins, consulted before the rates.
    forced: Tuple[Tuple[int, str], ...] = ()
    #: Attempts beyond this run clean (1 = first attempt only).
    max_faulty_attempts: int = 1
    #: How long a hanging worker sleeps; pair with a supervisor
    #: timeout below it or the worker just finishes late.
    hang_s: float = 3600.0
    #: The exit code a crashing worker dies with (audit breadcrumb).
    crash_exit_code: int = 87

    def __post_init__(self) -> None:
        rates = (
            self.crash_rate, self.hang_rate, self.corrupt_rate,
            self.truncate_rate, self.forge_rate,
        )
        if any(rate < 0.0 for rate in rates) or sum(rates) > 1.0:
            raise ValueError(
                "fault rates must be >= 0 and sum to <= 1, got %r"
                % (rates,)
            )
        for shard_id, kind in self.forced:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    "unknown forced fault kind %r for shard %r"
                    % (kind, shard_id)
                )
        if self.max_faulty_attempts < 0:
            raise ValueError(
                "max_faulty_attempts must be >= 0, got %r"
                % (self.max_faulty_attempts,)
            )
        if self.hang_s <= 0.0:
            raise ValueError("hang_s must be > 0, got %r" % (self.hang_s,))

    @property
    def may_hang(self) -> bool:
        """Whether any shard/attempt can draw a ``hang`` (a supervisor
        must have a timeout to recover from one)."""
        return self.hang_rate > 0.0 or any(
            kind == "hang" for _shard, kind in self.forced
        )

    def decide(self, shard_id: int, attempt: int) -> Optional[str]:
        """The fault (or ``None``) for one shard's attempt.

        Pure in ``(seed, shard_id, attempt)``: workers and the inline
        supervisor evaluate it independently and agree.
        """
        if attempt > self.max_faulty_attempts:
            return None
        pinned: Dict[int, str] = dict(self.forced)
        if shard_id in pinned:
            return pinned[shard_id]
        draw = _unit(self.seed, shard_id, attempt)
        edge = 0.0
        for kind, rate in (
            ("crash", self.crash_rate),
            ("hang", self.hang_rate),
            ("corrupt", self.corrupt_rate),
            ("truncate", self.truncate_rate),
            ("forge", self.forge_rate),
        ):
            edge += rate
            if draw < edge:
                return kind
        return None

    def tamper(self, kind: str, result):
        """Apply a post-completion fault to an otherwise-good result.

        Duck-typed over any dataclass result with ``report`` /
        ``declared_fingerprint`` fields whose report carries
        ``horizon_s`` and ``fingerprint()`` -- in practice a
        ``ShardResult``.  ``truncate`` discards the result entirely
        (schema check trips); ``corrupt`` mutates the report under a
        now-stale declared fingerprint (cross-check trips); ``forge``
        mutates *and* re-declares consistently (only a witness run
        disagrees).
        """
        if kind == "truncate":
            return {"shard_id": getattr(result, "shard_id", None),
                    "truncated": True}
        if kind not in ("corrupt", "forge"):
            raise ValueError("tamper cannot apply fault kind %r" % (kind,))
        report = dataclasses.replace(
            result.report, horizon_s=result.report.horizon_s + 1.0
        )
        if kind == "corrupt":
            return dataclasses.replace(result, report=report)
        return dataclasses.replace(
            result,
            report=report,
            declared_fingerprint=report.fingerprint(),
        )
