"""Checkpoint/resume: completed shard results persisted to a run dir.

A supervised fleet run can die halfway -- the host reboots, the
supervisor exhausts one shard's retries with no healthy escalation
target.  :class:`CheckpointStore` makes the *completed* work durable:
every accepted shard result is pickled into the run directory keyed
by a digest of its (normalized) spec, and a re-run with the same
inputs loads those results back instead of re-executing -- only the
shards that actually failed run again.

The digest normalizes away ``attempt`` and ``proc_faults``: which
attempt finally succeeded and what chaos was scheduled are execution
noise, not inputs to the result (attempt-invariance is exactly the
supervisor's contract), so a resume under a different fault plan
still reuses clean results.

Corrupt or stale checkpoint files are treated as misses, never
errors: the worst a bad checkpoint can do is cost one re-execution.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from typing import Optional

__all__ = ["CheckpointStore"]


class CheckpointStore:
    """Durable per-shard results under one run directory."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)

    # -- keys ------------------------------------------------------------
    @staticmethod
    def spec_digest(spec) -> str:
        """A stable content hash of one spec's *inputs*.

        ``attempt`` and ``proc_faults`` are normalized out (see module
        docstring); everything else -- loads, faults, seed, config --
        feeds the pickle that is hashed, so a changed workload never
        resurrects a stale result.
        """
        normalized = spec
        if dataclasses.is_dataclass(spec):
            fields = {f.name for f in dataclasses.fields(spec)}
            overrides = {}
            if "attempt" in fields:
                overrides["attempt"] = 1
            if "proc_faults" in fields:
                overrides["proc_faults"] = None
            if overrides:
                normalized = dataclasses.replace(spec, **overrides)
        payload = pickle.dumps(normalized, protocol=4)
        return hashlib.sha1(payload).hexdigest()

    def path_for(self, spec) -> str:
        """Where one spec's result lives (digest-keyed, so the same
        shard id can hold both its original and an escalation spec)."""
        return os.path.join(
            self.root,
            "shard-%02d-%s.pkl"
            % (spec.shard_id, self.spec_digest(spec)[:12]),
        )

    # -- round trip ------------------------------------------------------
    def load(self, spec) -> Optional[object]:
        """The previously-saved result for ``spec``, or ``None``.

        Misses on absent, unreadable, or digest-mismatched files --
        a resume never fails because of a bad checkpoint, it just
        re-executes.
        """
        path = self.path_for(spec)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except Exception:
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("digest") != self.spec_digest(spec):
            return None
        return payload.get("result")

    def save(self, spec, result) -> str:
        """Persist one accepted result (atomic write-then-rename)."""
        path = self.path_for(spec)
        payload = {
            "digest": self.spec_digest(spec),
            "shard_id": spec.shard_id,
            "result": result,
        }
        staging = path + ".tmp"
        with open(staging, "wb") as handle:
            pickle.dump(payload, handle, protocol=4)
        os.replace(staging, path)
        return path

    def write_manifest(self, payload: dict) -> str:
        """A human-readable summary of the supervised run (JSON)."""
        path = os.path.join(self.root, "manifest.json")
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path
