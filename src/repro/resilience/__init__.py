"""Host-level resilience: supervised shard execution for the fleet.

:mod:`repro.faults` makes the *simulated* hardware fail; this package
makes the *real* orchestration layer survive.  It supplies the
:class:`ShardSupervisor` the fleet coordinator runs its spawn workers
under -- per-shard wall-clock timeouts with kill-and-retry, structured
:class:`ShardFailure` capture, result integrity validation (schema +
declared-vs-recomputed fingerprint cross-check, optional
duplicate-execution witness quorum), checkpoint/resume of completed
:class:`ShardResult`\\ s, and a seeded :class:`ProcFaultPlan` chaos
injector for the workers themselves (self-kill, hang, corrupted /
truncated / forged results).

Two invariants anchor the design:

* **attempt-invariance** -- a retry re-runs the same spec with the
  same sim seed (only the audit ``attempt`` counter changes), so the
  accepted report fingerprint is identical no matter which attempt
  produced it: a run that survives supervisor-level chaos is
  bit-identical to the fault-free same-seed run;
* **wall-clock containment** -- supervision is the only place real
  time exists, and it feeds timeouts and diagnostics only, never
  anything fingerprinted (the package sits inside REP001's
  determinism-lint scope with a single reviewed suppression).

The package is stdlib-only and duck-typed over specs/results, so it
imports nothing from :mod:`repro.serving` -- the serving layer
imports *us*, and the import graph stays acyclic.
"""

from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.integrity import validate_result, witness_disagreement
from repro.resilience.procfaults import FAULT_KINDS, ProcFaultPlan
from repro.resilience.supervisor import (
    FAILURE_KINDS,
    ShardFailure,
    ShardRunRecord,
    ShardSupervisor,
    SupervisionError,
    SupervisionOutcome,
    SupervisionReport,
    SupervisorConfig,
    merge_records,
)

__all__ = [
    "CheckpointStore",
    "FAILURE_KINDS",
    "FAULT_KINDS",
    "ProcFaultPlan",
    "ShardFailure",
    "ShardRunRecord",
    "ShardSupervisor",
    "SupervisionError",
    "SupervisionOutcome",
    "SupervisionReport",
    "SupervisorConfig",
    "merge_records",
    "validate_result",
    "witness_disagreement",
]
