"""ShardSupervisor: async per-shard dispatch under adult supervision.

The coordinator used to run its shards through a bare ``Pool.map`` --
one crashed worker aborted the whole run, one hung worker blocked it
forever, and whatever came back over the pipe was trusted verbatim.
The supervisor replaces that with per-shard managed processes:

* each shard attempt runs in its own spawn ``Process`` with a result
  ``Pipe``; the supervisor multiplexes over pipes and process
  sentinels, so a dead worker is noticed immediately and a silent one
  is killed at the wall-clock ``timeout_s``;
* every failure -- crash, timeout, task exception, schema/fingerprint
  integrity violation, witness disagreement -- becomes a structured
  :class:`ShardFailure` and a bounded retry (``max_attempts``);
* results pass :func:`~repro.resilience.integrity.validate_result`
  before acceptance, and ``witness=True`` re-executes each shard
  clean and requires fingerprint agreement (duplicate-execution
  quorum of two);
* accepted results persist through an optional
  :class:`~repro.resilience.checkpoint.CheckpointStore`, so a re-run
  resumes completed shards instead of re-executing them.

Attempt-invariance is the load-bearing contract: a retry re-runs the
*same spec* (only the audit-only ``attempt`` counter changes, never
the sim seed), so whichever attempt finally succeeds produces the
same report fingerprint -- supervision recovers from host faults
without perturbing a single simulated bit.

Wall-clock time appears exactly once, in :func:`_now_s`, and is used
only for timeouts and failure diagnostics -- never anything that
feeds a fingerprint (REP001's discipline; the single read carries the
reviewed suppression).

The module is stdlib-only and duck-typed over specs/results (any
dataclass with ``shard_id`` and optionally ``attempt`` /
``proc_faults`` fields), so :mod:`repro.resilience` imports nothing
from :mod:`repro.serving` and the import graph stays acyclic.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Callable, Dict, List, Optional, Tuple

from repro.resilience.integrity import validate_result, witness_disagreement
from repro.resilience.procfaults import TAMPER_KINDS

__all__ = [
    "FAILURE_KINDS",
    "ShardFailure",
    "ShardRunRecord",
    "ShardSupervisor",
    "SupervisionError",
    "SupervisionOutcome",
    "SupervisionReport",
    "SupervisorConfig",
    "merge_records",
]

#: Every way one attempt can fail: the process died (``crashed``),
#: the wall-clock budget expired (``timeout``), the task raised
#: (``error``), the payload failed schema/fingerprint validation
#: (``integrity``), or a duplicate execution disagreed (``witness``).
FAILURE_KINDS = ("crashed", "timeout", "error", "integrity", "witness")


def _now_s() -> float:
    """The supervisor's only wall-clock read (timeouts/diagnostics;
    never fingerprint-bearing)."""
    return time.monotonic()  # lint: ignore[REP001]


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision policy knobs (picklable; rides across sessions)."""

    #: Wall-clock budget per attempt; ``None`` disables the timeout
    #: (and with it recovery from hung workers).
    timeout_s: Optional[float] = None
    #: Attempts per shard before it is declared failed.
    max_attempts: int = 3
    #: Re-execute every shard clean and require fingerprint agreement.
    witness: bool = False
    #: Grace between ``terminate()`` and ``kill()`` for timed-out workers.
    kill_grace_s: float = 2.0

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0.0:
            raise ValueError(
                "timeout_s must be > 0, got %r" % (self.timeout_s,)
            )
        if self.max_attempts < 1:
            raise ValueError(
                "max_attempts must be >= 1, got %r" % (self.max_attempts,)
            )
        if self.kill_grace_s <= 0.0:
            raise ValueError(
                "kill_grace_s must be > 0, got %r" % (self.kill_grace_s,)
            )


@dataclass(frozen=True)
class ShardFailure:
    """One attempt's structured post-mortem."""

    shard_id: int
    attempt: int
    kind: str
    detail: str
    exitcode: Optional[int] = None
    #: Wall-clock seconds the attempt ran (diagnostics only; 0.0 for
    #: inline-synthesized failures).
    wall_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "attempt": self.attempt,
            "kind": self.kind,
            "detail": self.detail,
            "exitcode": self.exitcode,
            "wall_s": self.wall_s,
        }


@dataclass(frozen=True)
class ShardRunRecord:
    """One shard's supervision history: attempts, failures, outcome."""

    shard_id: int
    #: ``ok`` (clean first attempt), ``retried`` (succeeded after
    #: failures), ``resumed`` (loaded from checkpoint), ``failed``
    #: (attempts exhausted; the coordinator escalates).
    status: str
    attempts: int
    failures: Tuple[ShardFailure, ...] = ()
    resumed: bool = False

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "status": self.status,
            "attempts": self.attempts,
            "failures": [failure.to_dict() for failure in self.failures],
            "resumed": self.resumed,
        }


@dataclass(frozen=True)
class SupervisionReport:
    """The whole run's supervision ledger, shard-id ordered."""

    records: Tuple[ShardRunRecord, ...] = ()

    @property
    def failures(self) -> Tuple[ShardFailure, ...]:
        return tuple(
            failure
            for record in self.records
            for failure in record.failures
        )

    @property
    def failed_shards(self) -> Tuple[int, ...]:
        return tuple(
            record.shard_id
            for record in self.records
            if record.status == "failed"
        )

    @property
    def retried_shards(self) -> Tuple[int, ...]:
        return tuple(
            record.shard_id
            for record in self.records
            if record.status == "retried"
        )

    @property
    def resumed_shards(self) -> Tuple[int, ...]:
        return tuple(
            record.shard_id
            for record in self.records
            if record.status == "resumed"
        )

    def counters(self) -> Dict[str, int]:
        """Flat supervision tallies (the obs wiring's source)."""
        tallies = {
            "attempts": sum(record.attempts for record in self.records),
            "retries": sum(
                max(0, record.attempts - 1) for record in self.records
            ),
            "resumed": len(self.resumed_shards),
            "failed": len(self.failed_shards),
        }
        for kind in FAILURE_KINDS:
            tallies["failures_" + kind] = sum(
                1 for failure in self.failures if failure.kind == kind
            )
        return tallies

    def to_dict(self) -> dict:
        return {
            "records": [record.to_dict() for record in self.records],
            "counters": self.counters(),
        }


class SupervisionError(RuntimeError):
    """A shard exhausted its attempts and nothing could absorb it."""

    def __init__(self, message: str, report: SupervisionReport) -> None:
        super().__init__(message)
        self.report = report


@dataclass(frozen=True)
class SupervisionOutcome:
    """Accepted results (by shard id) plus the supervision ledger."""

    results: Dict[int, object]
    report: SupervisionReport


def merge_records(
    base: Tuple[ShardRunRecord, ...], extra: Tuple[ShardRunRecord, ...]
) -> Tuple[ShardRunRecord, ...]:
    """Fold a follow-up supervision pass into an earlier ledger.

    The coordinator re-supervises an escalation target after folding
    failed shards' loads into it; the target's two passes merge into
    one record (attempts sum, failures concatenate, status reflects
    the combined history).
    """
    merged: Dict[int, ShardRunRecord] = {
        record.shard_id: record for record in base
    }
    for record in extra:
        prior = merged.get(record.shard_id)
        if prior is None:
            merged[record.shard_id] = record
            continue
        attempts = prior.attempts + record.attempts
        failures = prior.failures + record.failures
        if record.status == "failed":
            status = "failed"
        elif failures or attempts > 1:
            status = "retried"
        else:
            status = record.status
        merged[record.shard_id] = ShardRunRecord(
            shard_id=record.shard_id,
            status=status,
            attempts=attempts,
            failures=failures,
            resumed=prior.resumed or record.resumed,
        )
    return tuple(merged[shard_id] for shard_id in sorted(merged))


def _supervised_entry(task: Callable, spec, conn) -> None:
    """The spawn child's wrapper: run the task, pipe the verdict.

    Top-level so the spawn start method can pickle a reference to it.
    An injected ``crash`` never reaches the ``send`` (``os._exit``
    happens inside the task); an exception travels back as a
    structured ``("error", traceback)`` message instead of poisoning
    the supervisor.
    """
    try:
        result = task(spec)
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc(limit=32)))
        finally:
            conn.close()
        return
    try:
        conn.send(("ok", result))
    except Exception:
        # Unpicklable result: the parent sees a clean exit with no
        # message and records a crashed attempt.
        pass
    conn.close()


@dataclass
class _Work:
    """One queued attempt: a primary run, or a witness re-execution
    checking an already-validated primary result."""

    spec: object
    witness_of: Optional[object] = None


@dataclass
class _Running:
    """One live spawn attempt."""

    work: _Work
    process: object
    conn: object
    started_s: float
    deadline_s: Optional[float]


@dataclass
class _ShardState:
    """Mutable per-shard supervision state."""

    spec: object
    attempt: int = 1
    failures: List[ShardFailure] = field(default_factory=list)
    result: Optional[object] = None
    resumed: bool = False
    done: bool = False


class ShardSupervisor:
    """Runs a batch of shard specs to acceptance or exhaustion.

    ``task`` is the worker entry point (``run_shard`` in production;
    any picklable top-level callable in tests).  ``inline=True``
    executes attempts in the calling process -- process faults from a
    spec's ``proc_faults`` plan are *pre-empted* (the supervisor
    consults the same ``decide`` function the worker would and
    synthesizes the identical failure) so an injected crash cannot
    take the test process down, while tamper kinds really execute and
    really trip validation.  The failure/retry sequence, and therefore
    every accepted result, is identical between inline and spawn.
    """

    def __init__(
        self,
        task: Callable,
        config: Optional[SupervisorConfig] = None,
        inline: bool = False,
        processes: Optional[int] = None,
        checkpoint: Optional[object] = None,
    ) -> None:
        if processes is not None and processes < 1:
            raise ValueError(
                "processes must be >= 1, got %r" % (processes,)
            )
        self.task = task
        self.config = config if config is not None else SupervisorConfig()
        self.inline = inline
        self.processes = processes
        self.checkpoint = checkpoint

    # -- public entry ----------------------------------------------------
    def run(self, specs) -> SupervisionOutcome:
        """Supervise every spec; return accepted results + ledger.

        Never raises for shard failures -- exhausted shards are simply
        absent from ``results`` and marked ``failed`` in the ledger;
        deciding whether that is fatal (or escalatable) is the
        caller's policy.
        """
        specs = sorted(specs, key=lambda spec: spec.shard_id)
        ids = [spec.shard_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate shard ids in specs: %r" % (ids,))
        for spec in specs:
            plan = getattr(spec, "proc_faults", None)
            if (
                plan is not None
                and getattr(plan, "may_hang", False)
                and self.config.timeout_s is None
            ):
                raise ValueError(
                    "ProcFaultPlan can draw 'hang' but the supervisor "
                    "has no timeout_s; a hung worker would never be "
                    "recovered"
                )
        states: Dict[int, _ShardState] = {}
        queue: deque = deque()
        for spec in specs:
            state = _ShardState(spec=spec)
            states[spec.shard_id] = state
            cached = (
                self.checkpoint.load(spec)
                if self.checkpoint is not None
                else None
            )
            if cached is not None and validate_result(spec, cached) is None:
                state.result = cached
                state.resumed = True
                state.done = True
                continue
            queue.append(_Work(spec=self._attempt_spec(spec, 1)))
        if self.inline:
            self._drain_inline(queue, states)
        else:
            self._drain_spawn(queue, states)
        report = SupervisionReport(
            records=tuple(
                self._record(states[shard_id]) for shard_id in sorted(states)
            )
        )
        if self.checkpoint is not None:
            self.checkpoint.write_manifest(report.to_dict())
        results = {
            shard_id: state.result
            for shard_id, state in states.items()
            if state.result is not None
        }
        return SupervisionOutcome(results=results, report=report)

    # -- spec plumbing ---------------------------------------------------
    @staticmethod
    def _attempt_spec(spec, attempt: int):
        """The spec for one numbered attempt (audit-only counter; the
        sim seed is untouched, which is what makes results
        attempt-invariant)."""
        if dataclasses.is_dataclass(spec) and any(
            field_.name == "attempt" for field_ in dataclasses.fields(spec)
        ):
            return dataclasses.replace(spec, attempt=attempt)
        return spec

    @staticmethod
    def _clean_spec(spec):
        """The spec with fault injection stripped (witness runs, and
        inline execution where the supervisor pre-empts the plan)."""
        if dataclasses.is_dataclass(spec) and any(
            field_.name == "proc_faults"
            for field_ in dataclasses.fields(spec)
        ):
            return dataclasses.replace(spec, proc_faults=None)
        return spec

    def _record(self, state: _ShardState) -> ShardRunRecord:
        if state.resumed:
            status = "resumed"
        elif state.result is None:
            status = "failed"
        elif state.failures or state.attempt > 1:
            status = "retried"
        else:
            status = "ok"
        return ShardRunRecord(
            shard_id=state.spec.shard_id,
            status=status,
            attempts=0 if state.resumed else state.attempt,
            failures=tuple(state.failures),
            resumed=state.resumed,
        )

    # -- attempt outcomes (shared by inline and spawn) -------------------
    def _register_failure(
        self, states: Dict[int, _ShardState], queue: deque,
        failure: ShardFailure,
    ) -> None:
        state = states[failure.shard_id]
        state.failures.append(failure)
        if state.attempt < self.config.max_attempts:
            state.attempt += 1
            queue.append(
                _Work(spec=self._attempt_spec(state.spec, state.attempt))
            )
        else:
            state.done = True

    def _accept(
        self, states: Dict[int, _ShardState], spec, result
    ) -> None:
        state = states[spec.shard_id]
        state.result = result
        state.done = True
        if self.checkpoint is not None:
            self.checkpoint.save(spec, result)

    def _handle_result(
        self, states: Dict[int, _ShardState], queue: deque,
        work: _Work, result, wall_s: float,
    ) -> None:
        """Validate one received payload; accept, witness, or retry."""
        spec = work.spec
        attempt = getattr(spec, "attempt", states[spec.shard_id].attempt)
        if work.witness_of is not None:
            reason = validate_result(spec, result)
            if reason is None:
                reason = witness_disagreement(work.witness_of, result)
            if reason is None:
                self._accept(states, spec, work.witness_of)
            else:
                self._register_failure(
                    states, queue,
                    ShardFailure(
                        shard_id=spec.shard_id,
                        attempt=attempt,
                        kind="witness",
                        detail=reason,
                        wall_s=wall_s,
                    ),
                )
            return
        reason = validate_result(spec, result)
        if reason is not None:
            self._register_failure(
                states, queue,
                ShardFailure(
                    shard_id=spec.shard_id,
                    attempt=attempt,
                    kind="integrity",
                    detail=reason,
                    wall_s=wall_s,
                ),
            )
            return
        if self.config.witness:
            queue.append(
                _Work(spec=self._clean_spec(spec), witness_of=result)
            )
            return
        self._accept(states, spec, result)

    # -- inline execution ------------------------------------------------
    def _drain_inline(
        self, queue: deque, states: Dict[int, _ShardState]
    ) -> None:
        while queue:
            work = queue.popleft()
            spec = work.spec
            attempt = getattr(spec, "attempt", 1)
            plan = (
                getattr(spec, "proc_faults", None)
                if work.witness_of is None
                else None
            )
            kind = (
                plan.decide(spec.shard_id, attempt)
                if plan is not None
                else None
            )
            if kind == "crash":
                self._register_failure(
                    states, queue,
                    ShardFailure(
                        shard_id=spec.shard_id,
                        attempt=attempt,
                        kind="crashed",
                        detail="injected crash (inline pre-emption)",
                        exitcode=plan.crash_exit_code,
                    ),
                )
                continue
            if (
                kind == "hang"
                and self.config.timeout_s is not None
                and plan.hang_s >= self.config.timeout_s
            ):
                self._register_failure(
                    states, queue,
                    ShardFailure(
                        shard_id=spec.shard_id,
                        attempt=attempt,
                        kind="timeout",
                        detail=(
                            "injected hang (inline pre-emption): %.0fs "
                            "sleep vs %.1fs timeout"
                            % (plan.hang_s, self.config.timeout_s)
                        ),
                    ),
                )
                continue
            try:
                result = self.task(self._clean_spec(spec))
            except Exception:
                self._register_failure(
                    states, queue,
                    ShardFailure(
                        shard_id=spec.shard_id,
                        attempt=attempt,
                        kind="error",
                        detail=traceback.format_exc(limit=32),
                    ),
                )
                continue
            if kind in TAMPER_KINDS:
                result = plan.tamper(kind, result)
            self._handle_result(states, queue, work, result, 0.0)

    # -- spawn execution -------------------------------------------------
    def _drain_spawn(
        self, queue: deque, states: Dict[int, _ShardState]
    ) -> None:
        context = multiprocessing.get_context("spawn")
        slots = self.processes
        if slots is None:
            slots = max(1, min(len(states), os.cpu_count() or 1))
        running: Dict[int, _Running] = {}
        try:
            while queue or running:
                while queue and len(running) < slots:
                    work = queue.popleft()
                    running[work.spec.shard_id] = self._launch(context, work)
                self._poll(running, states, queue)
        finally:
            for run in running.values():
                self._kill(run.process)
                run.conn.close()

    def _launch(self, context, work: _Work) -> _Running:
        parent_conn, child_conn = context.Pipe(duplex=False)
        spec = (
            self._clean_spec(work.spec)
            if work.witness_of is not None
            else work.spec
        )
        process = context.Process(
            target=_supervised_entry,
            args=(self.task, spec, child_conn),
            daemon=True,
        )
        process.start()
        child_conn.close()
        started_s = _now_s()
        deadline_s = (
            None
            if self.config.timeout_s is None
            else started_s + self.config.timeout_s
        )
        return _Running(
            work=work,
            process=process,
            conn=parent_conn,
            started_s=started_s,
            deadline_s=deadline_s,
        )

    def _poll(
        self, running: Dict[int, _Running],
        states: Dict[int, _ShardState], queue: deque,
    ) -> None:
        """One multiplexed wait over result pipes + process sentinels,
        then a deterministic (shard-id ordered) sweep of outcomes."""
        handles = []
        deadlines = []
        for run in running.values():
            handles.append(run.conn)
            handles.append(run.process.sentinel)
            if run.deadline_s is not None:
                deadlines.append(run.deadline_s)
        timeout = None
        if deadlines:
            timeout = max(0.0, min(deadlines) - _now_s())
        mp_connection.wait(handles, timeout)
        finished: List[int] = []
        for shard_id in sorted(running):
            run = running[shard_id]
            wall_s = _now_s() - run.started_s
            attempt = getattr(
                run.work.spec, "attempt", states[shard_id].attempt
            )
            if run.conn.poll():
                try:
                    tag, payload = run.conn.recv()
                except Exception:
                    tag, payload = None, None
                run.process.join(self.config.kill_grace_s)
                self._kill(run.process)
                if tag == "ok":
                    self._handle_result(
                        states, queue, run.work, payload, wall_s
                    )
                else:
                    kind = "error" if tag == "error" else "crashed"
                    detail = (
                        payload
                        if isinstance(payload, str)
                        else "malformed supervision message from worker"
                    )
                    self._register_failure(
                        states, queue,
                        ShardFailure(
                            shard_id=shard_id,
                            attempt=attempt,
                            kind=kind,
                            detail=detail,
                            exitcode=run.process.exitcode,
                            wall_s=wall_s,
                        ),
                    )
            elif not run.process.is_alive():
                run.process.join()
                self._register_failure(
                    states, queue,
                    ShardFailure(
                        shard_id=shard_id,
                        attempt=attempt,
                        kind="crashed",
                        detail=(
                            "worker exited (code %r) without a result"
                            % (run.process.exitcode,)
                        ),
                        exitcode=run.process.exitcode,
                        wall_s=wall_s,
                    ),
                )
            elif run.deadline_s is not None and _now_s() >= run.deadline_s:
                self._kill(run.process)
                self._register_failure(
                    states, queue,
                    ShardFailure(
                        shard_id=shard_id,
                        attempt=attempt,
                        kind="timeout",
                        detail=(
                            "attempt exceeded the %.1fs wall-clock "
                            "timeout and was killed"
                            % (self.config.timeout_s,)
                        ),
                        exitcode=run.process.exitcode,
                        wall_s=wall_s,
                    ),
                )
            else:
                continue
            run.conn.close()
            finished.append(shard_id)
        for shard_id in finished:
            del running[shard_id]

    def _kill(self, process) -> None:
        """Terminate, then escalate to SIGKILL after the grace."""
        if not process.is_alive():
            return
        process.terminate()
        process.join(self.config.kill_grace_s)
        if process.is_alive():
            process.kill()
            process.join(self.config.kill_grace_s)
