"""Determinism double-run smoke: the bit-reproducibility claim, executed.

PRs 2/3 assert that same-seed router runs are bit-identical
(``RouterReport.fingerprint``); the benchmarks check it inside one
process invocation.  This test raises the bar to two *independent*
in-process executions of the router-overload bench at ``--quick``
scale -- fresh fleet, fresh engine caches, fresh report -- and demands
identical fingerprints.  Anything REP001 exists to catch (a stray
wall-clock read, an unseeded draw, unstable iteration feeding the
fingerprint) breaks this test before it breaks a nightly bench.
"""

import importlib.util
import sys
from pathlib import Path

BENCHMARKS_DIR = Path(__file__).parent.parent / "benchmarks"


def _load_bench(name):
    # The benches import their shared helpers as ``common`` relative to
    # the benchmarks directory, so it must be importable first.
    if str(BENCHMARKS_DIR) not in sys.path:
        sys.path.insert(0, str(BENCHMARKS_DIR))
    spec = importlib.util.spec_from_file_location(
        name, BENCHMARKS_DIR / ("%s.py" % name)
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_router_overload_quick_is_bit_identical_across_runs():
    bench = _load_bench("bench_router_overload")
    n = bench.QUICK_N_REQUESTS

    _, first, first_rerun, _, _ = bench.reproduce(n)
    _, second, second_rerun, _, _ = bench.reproduce(n)

    fingerprints = {
        report.fingerprint()
        for report in (first, first_rerun, second, second_rerun)
    }
    assert len(fingerprints) == 1, (
        "same-seed --quick runs diverged: %s" % sorted(fingerprints)
    )
    # The fingerprint covers real work, not an empty run.
    assert first.n_offered == second.n_offered > 0
    assert first.n_completed == second.n_completed > 0


def test_router_overload_traced_runs_are_bit_identical():
    """The tracing-enabled variant of the same bar.

    Instrumentation must neither perturb routing nor itself diverge:
    two independent traced executions produce identical report
    fingerprints AND identical cache-neutral trace fingerprints, and
    the trace's execute_batch spans account for every completed
    request.
    """
    bench = _load_bench("bench_router_overload")
    n = bench.QUICK_N_REQUESTS

    first, first_obs = bench.reproduce_traced(n)
    second, second_obs = bench.reproduce_traced(n)

    assert first.fingerprint() == second.fingerprint(), (
        "tracing-enabled same-seed runs diverged"
    )
    assert (
        first_obs.buffer.fingerprint() == second_obs.buffer.fingerprint()
    ), "same-seed runs produced different traces"
    assert first.obs is not None and second.obs is not None
    completed = [r.request.rid for r in first.completed]
    assert completed and first_obs.coverage_of(completed) == 1.0
