"""Golden fixture tests: every rule fires on seeded bad code at the
expected locations and stays silent on the good twin.

The goldens pin ``(rule_id, line)`` pairs, so a rule that drifts to a
different anchor or grows false positives fails loudly here.
"""

from pathlib import Path

from repro.lint import run_lint

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file (relative) -> expected unsuppressed (rule, line) pairs.
GOLDEN = {
    "repro/sim/rep001_bad.py": [
        ("REP001", 12),   # time.time()
        ("REP001", 16),   # aliased perf_counter()
        ("REP001", 20),   # os.urandom
        ("REP001", 24),   # uuid.uuid4
        ("REP001", 28),   # random.seed
        ("REP001", 29),   # random.random
        ("REP001", 33),   # np.random.rand
    ],
    "rep002_bad.py": [
        ("REP002", 5),
        ("REP002", 9),
        ("REP002", 13),
        ("REP002", 17),
    ],
    "rep003_bad.py": [
        ("REP003", 7),    # values() in a list comp
        ("REP003", 14),   # unsorted items()
        ("REP003", 16),   # set(...) iteration
        ("REP003", 18),   # dumps without sort_keys
        ("REP003", 22),   # keys() in a list comp
    ],
    "rep004_bad.py": [
        ("REP004", 5),    # ms + s
        ("REP004", 9),    # J - mJ
        ("REP004", 13),   # ms vs s comparison
        ("REP004", 17),   # s + J (cross-dimension)
        ("REP004", 21),   # bytes vs kb
        ("REP004", 24),   # docstring declares seconds, name suffixless
    ],
    "cycle_pkg/alpha.py": [
        ("REP005", 2),    # cycle edge to beta
        ("REP005", 10),   # unmarked local import
    ],
    "cycle_pkg/beta.py": [
        ("REP005", 4),    # cycle edge back to alpha
    ],
    "rep006_bad.py": [
        ("REP006", 4),
        ("REP006", 9),
        ("REP006", 13),
        ("REP006", 17),
    ],
    "repro/sim/rep007_bad.py": [
        ("REP007", 12),  # two hops to time.time via repro.gpu
        ("REP007", 16),  # one hop to uuid.uuid4
    ],
    "repro/serving/shard/rep008_bad.py": [
        ("REP008", 24),  # lambda field(default_factory=...)
        ("REP008", 31),  # closure-captured local class reference
    ],
    "spawn_helpers.py": [
        ("REP008", 11),  # class outside any importable package
    ],
    "rep009_bad.py": [
        ("REP009", 15),  # subscriber records a fingerprinted kind
        ("REP009", 18),  # subscriber records a dynamic kind
        ("REP009", 33),  # ledger write reached from ControlPlane.tick
    ],
}

#: Fixtures that must produce zero unsuppressed findings.
CLEAN = [
    "repro/sim/rep001_good.py",
    "rep001_outside.py",
    "rep002_good.py",
    "rep003_good.py",
    "rep004_good.py",
    "cycle_pkg/gamma.py",
    "cycle_pkg/delta.py",
    "rep006_good.py",
    "repro/sim/rep007_good.py",
    "repro/gpu/clock_helpers.py",
    "repro/serving/shard/rep008_good.py",
    "rep009_good.py",
    "stale.py",
]


def _found(report, fixture):
    suffix = str(Path(fixture))
    return sorted(
        (v.rule_id, v.line)
        for v in report.violations
        if v.path.endswith(suffix)
    )


def test_bad_fixtures_fire_exactly_the_goldens():
    report = run_lint([FIXTURES])
    for fixture, expected in GOLDEN.items():
        assert _found(report, fixture) == sorted(expected), fixture


def test_good_fixtures_stay_silent():
    report = run_lint([FIXTURES])
    for fixture in CLEAN:
        assert _found(report, fixture) == [], fixture


def test_no_unexpected_files_fire():
    report = run_lint([FIXTURES])
    expected_files = {str(Path(f)) for f in GOLDEN} | {"suppressed.py"}
    for violation in report.violations:
        assert any(
            violation.path.endswith(name) for name in expected_files
        ), violation.render()


def test_suppression_fixture_splits_records():
    report = run_lint([FIXTURES / "suppressed.py"])
    suppressed = sorted(
        (v.rule_id, v.line) for v in report.suppressed
    )
    assert suppressed == [
        ("REP002", 5), ("REP004", 9), ("REP006", 8),
    ]
    assert [(v.rule_id, v.line) for v in report.violations] == [
        ("REP006", 17)
    ]
    assert all(v.suppressed for v in report.suppressed)
    assert not report.ok


def test_rep007_renders_the_full_call_chain():
    report = run_lint([FIXTURES])
    hits = [
        v
        for v in report.violations
        if v.rule_id == "REP007" and v.path.endswith("rep007_bad.py")
    ]
    by_line = {v.line: v for v in hits}
    assert by_line[12].chain == (
        "repro.sim.rep007_bad.step_window",
        "repro.gpu.clock_helpers.middle",
        "repro.gpu.clock_helpers.deep_clock",
        "time.time",
    )
    assert (
        "call chain: repro.sim.rep007_bad.step_window -> "
        "repro.gpu.clock_helpers.middle -> "
        "repro.gpu.clock_helpers.deep_clock -> time.time"
        in by_line[12].message
    )
    assert by_line[16].chain == (
        "repro.sim.rep007_bad.label_run",
        "repro.gpu.clock_helpers.fresh_tag",
        "uuid.uuid4",
    )


def test_rep007_containment_marker_records_a_suppression():
    # The ``# lint: ignore[REP007]`` on the banned read both stops
    # the seed (watchdog_deadline stays clean) and files the read in
    # the reviewable suppression inventory -- never silently dropped.
    report = run_lint([FIXTURES])
    contained = [
        (v.rule_id, v.line)
        for v in report.suppressed
        if v.path.endswith("clock_helpers.py")
    ]
    assert contained == [("REP007", 24)]


def test_stale_suppressions_are_inventoried():
    report = run_lint([FIXTURES])
    stale = [
        (Path(s.path).name, s.line, s.rule_id, s.reason)
        for s in report.stale
    ]
    assert ("stale.py", 10, "REP002", "unused") in stale
    assert ("stale.py", 14, "REP999", "unknown-rule") in stale
    # suppressed.py line 8 names REP004+REP006 but only REP006 fires
    # there -- the rotted half of the comma list is flagged.
    assert ("suppressed.py", 8, "REP004", "unused") in stale
    assert len(stale) == 3
    # Stale markers never affect the exit-status contract by default.
    assert all(not s.path.endswith("stale.py") for s in report.suppressed)


def test_rule_filter_restricts_findings():
    report = run_lint([FIXTURES], rule_ids=["REP006"])
    assert report.rules_run == ["REP006"]
    assert {v.rule_id for v in report.violations} == {"REP006"}


def test_single_rule_on_single_file():
    report = run_lint(
        [FIXTURES / "rep002_bad.py"], rule_ids=["REP002"]
    )
    assert len(report.violations) == len(GOLDEN["rep002_bad.py"])
    assert report.files_scanned == 1
