"""Reporter tests: text and JSON render the same report faithfully."""

import json
from pathlib import Path

from repro.lint import render_json, render_text, run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def test_text_report_lists_locations_and_summary():
    report = run_lint([FIXTURES / "rep006_bad.py"])
    text = render_text(report)
    assert "rep006_bad.py:4:" in text
    assert "REP006" in text
    assert "FAILED" in text
    assert "REP006=4" in text


def test_text_report_clean_run():
    report = run_lint([FIXTURES / "rep006_good.py"])
    text = render_text(report)
    assert text.startswith("clean") or "\nclean" in text
    assert "violation(s)" in text


def test_text_report_suppressions_only_when_verbose():
    report = run_lint([FIXTURES / "suppressed.py"])
    assert "suppressed (3):" not in render_text(report)
    verbose = render_text(report, verbose=True)
    assert "suppressed (3):" in verbose
    assert "(suppressed)" in verbose


def test_json_report_round_trips_and_matches():
    report = run_lint([FIXTURES / "suppressed.py"])
    data = json.loads(render_json(report))
    assert data["ok"] is False
    assert data["files_scanned"] == 1
    assert data["counts"] == {"REP006": 1}
    assert len(data["suppressed"]) == 3
    assert all(v["suppressed"] for v in data["suppressed"])
    rules = {v["rule"] for v in data["violations"]}
    assert rules == {"REP006"}


def test_json_schema_is_stable():
    report = run_lint([FIXTURES / "rep006_good.py"])
    data = json.loads(render_json(report))
    assert set(data) == {
        "ok", "files_scanned", "rules_run", "counts", "violations",
        "suppressed", "stale_suppressions", "errors",
    }
    assert data["ok"] is True
    assert data["rules_run"] == [
        "REP001", "REP002", "REP003", "REP004", "REP005",
        "REP006", "REP007", "REP008", "REP009",
    ]


def test_parse_errors_are_reported_not_skipped(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    report = run_lint([broken])
    assert not report.ok
    assert list(report.errors) == [str(broken)]
    assert "syntax error" in render_text(report)
