"""CLI tests for ``python -m repro lint``."""

import json
import subprocess
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def _git(args, cwd):
    subprocess.run(
        ["git", "-c", "user.email=t@t.invalid", "-c", "user.name=t"]
        + args,
        cwd=cwd, check=True, capture_output=True,
    )


def test_lint_clean_paths_exit_zero(capsys):
    code = main(["lint", str(FIXTURES / "rep006_good.py")])
    out = capsys.readouterr().out
    assert code == 0
    assert "clean" in out


def test_lint_bad_paths_exit_one(capsys):
    code = main(["lint", str(FIXTURES / "rep006_bad.py")])
    out = capsys.readouterr().out
    assert code == 1
    assert "REP006" in out


def test_lint_json_format(capsys):
    code = main(
        ["lint", str(FIXTURES / "rep002_bad.py"), "--format", "json"]
    )
    data = json.loads(capsys.readouterr().out)
    assert code == 1
    assert data["counts"] == {"REP002": 4}


def test_lint_rule_filter(capsys):
    code = main(
        ["lint", str(FIXTURES), "--rule", "REP006", "--format", "json"]
    )
    data = json.loads(capsys.readouterr().out)
    assert code == 1
    assert data["rules_run"] == ["REP006"]
    assert set(data["counts"]) == {"REP006"}


def test_lint_unknown_rule_is_an_error(capsys):
    code = main(["lint", str(FIXTURES), "--rule", "REP999"])
    captured = capsys.readouterr()
    assert code == 2
    assert "REP999" in captured.err


def test_lint_list_rules(capsys):
    code = main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule_id in (
        "REP001", "REP002", "REP003", "REP004", "REP005", "REP006"
    ):
        assert rule_id in out


def test_lint_default_target_is_the_package(capsys):
    # Bare ``lint`` checks the installed repro package itself -- this
    # doubles as the repo-is-clean acceptance gate through the CLI.
    code = main(["lint"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "clean" in out


def test_lint_show_suppressed(capsys):
    code = main(
        ["lint", str(FIXTURES / "suppressed.py"), "--show-suppressed"]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "suppressed (3):" in out


def test_lint_sarif_format(capsys):
    code = main(
        ["lint", str(FIXTURES / "rep006_bad.py"), "--format", "sarif"]
    )
    data = json.loads(capsys.readouterr().out)
    assert code == 1
    assert data["version"] == "2.1.0"
    run = data["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert "REP006" in rule_ids
    assert {r["ruleId"] for r in run["results"]} == {"REP006"}
    assert all(r["level"] == "error" for r in run["results"])
    region = run["results"][0]["locations"][0]["physicalLocation"][
        "region"
    ]
    assert region["startLine"] == 4 and region["startColumn"] >= 1


def test_lint_sarif_carries_chains_suppressions_and_stale(capsys):
    code = main(["lint", str(FIXTURES), "--format", "sarif"])
    run = json.loads(capsys.readouterr().out)["runs"][0]
    assert code == 1
    chains = [
        r["properties"]["callChain"]
        for r in run["results"]
        if r["ruleId"] == "REP007"
        and r["level"] == "error"
        and "properties" in r
    ]
    assert [
        "repro.sim.rep007_bad.step_window",
        "repro.gpu.clock_helpers.middle",
        "repro.gpu.clock_helpers.deep_clock",
        "time.time",
    ] in chains
    notes = [r for r in run["results"] if r["level"] == "note"]
    assert notes
    assert all(
        r["suppressions"] == [{"kind": "inSource"}] for r in notes
    )
    stale = run["properties"]["staleSuppressions"]
    assert {s["rule"] for s in stale} == {"REP002", "REP004", "REP999"}


def test_lint_show_stale_fails_on_stale_markers(capsys):
    code = main(["lint", str(FIXTURES / "stale.py"), "--show-stale"])
    out = capsys.readouterr().out
    assert code == 1
    assert "stale suppressions (2):" in out
    assert "REP999" in out
    assert "unregistered" in out


def test_stale_markers_do_not_fail_without_the_flag(capsys):
    code = main(["lint", str(FIXTURES / "stale.py")])
    out = capsys.readouterr().out
    assert code == 0
    assert "clean" in out


def test_lint_changed_narrows_to_git_diff(tmp_path, monkeypatch, capsys):
    _git(["init", "-q"], tmp_path)
    clean = tmp_path / "clean.py"
    clean.write_text("def ok():\n    return 1\n")
    bad = tmp_path / "bad.py"
    bad.write_text("def seed(x):\n    return x\n")
    _git(["add", "."], tmp_path)
    _git(["commit", "-q", "-m", "seed"], tmp_path)
    bad.write_text("def hit(sink=[]):\n    return sink\n")
    monkeypatch.chdir(tmp_path)
    code = main(
        ["lint", str(tmp_path), "--changed", "--format", "json"]
    )
    data = json.loads(capsys.readouterr().out)
    assert code == 1
    # Only the file git reports as changed is analyzed.
    assert data["files_scanned"] == 1
    assert data["counts"] == {"REP006": 1}


def test_lint_changed_includes_untracked_files(
    tmp_path, monkeypatch, capsys
):
    _git(["init", "-q"], tmp_path)
    (tmp_path / "clean.py").write_text("def ok():\n    return 1\n")
    _git(["add", "."], tmp_path)
    _git(["commit", "-q", "-m", "seed"], tmp_path)
    # A brand-new module, never git-added, must still be analyzed.
    (tmp_path / "new.py").write_text("def hit(sink=[]):\n    return sink\n")
    monkeypatch.chdir(tmp_path)
    code = main(
        ["lint", str(tmp_path), "--changed", "--format", "json"]
    )
    data = json.loads(capsys.readouterr().out)
    assert code == 1
    assert data["files_scanned"] == 1
    assert data["counts"] == {"REP006": 1}


def test_lint_changed_with_a_clean_diff_scans_nothing(
    tmp_path, monkeypatch, capsys
):
    _git(["init", "-q"], tmp_path)
    bad = tmp_path / "bad.py"
    bad.write_text("def hit(sink=[]):\n    return sink\n")
    _git(["add", "."], tmp_path)
    _git(["commit", "-q", "-m", "seed"], tmp_path)
    monkeypatch.chdir(tmp_path)
    code = main(
        ["lint", str(tmp_path), "--changed", "--format", "json"]
    )
    data = json.loads(capsys.readouterr().out)
    # An empty diff is a real answer, not a fallback: exit clean.
    assert code == 0
    assert data["files_scanned"] == 0


def test_lint_changed_falls_back_outside_git(
    tmp_path, monkeypatch, capsys
):
    target = tmp_path / "tree"
    target.mkdir()
    (target / "bad.py").write_text("def hit(sink=[]):\n    return sink\n")
    monkeypatch.chdir(tmp_path)  # not a git checkout
    code = main(["lint", str(target), "--changed"])
    captured = capsys.readouterr()
    assert code == 1
    assert "full sweep" in captured.err
    assert "REP006" in captured.out
