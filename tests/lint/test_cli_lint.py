"""CLI tests for ``python -m repro lint``."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def test_lint_clean_paths_exit_zero(capsys):
    code = main(["lint", str(FIXTURES / "rep006_good.py")])
    out = capsys.readouterr().out
    assert code == 0
    assert "clean" in out


def test_lint_bad_paths_exit_one(capsys):
    code = main(["lint", str(FIXTURES / "rep006_bad.py")])
    out = capsys.readouterr().out
    assert code == 1
    assert "REP006" in out


def test_lint_json_format(capsys):
    code = main(
        ["lint", str(FIXTURES / "rep002_bad.py"), "--format", "json"]
    )
    data = json.loads(capsys.readouterr().out)
    assert code == 1
    assert data["counts"] == {"REP002": 4}


def test_lint_rule_filter(capsys):
    code = main(
        ["lint", str(FIXTURES), "--rule", "REP006", "--format", "json"]
    )
    data = json.loads(capsys.readouterr().out)
    assert code == 1
    assert data["rules_run"] == ["REP006"]
    assert set(data["counts"]) == {"REP006"}


def test_lint_unknown_rule_is_an_error(capsys):
    code = main(["lint", str(FIXTURES), "--rule", "REP999"])
    captured = capsys.readouterr()
    assert code == 2
    assert "REP999" in captured.err


def test_lint_list_rules(capsys):
    code = main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule_id in (
        "REP001", "REP002", "REP003", "REP004", "REP005", "REP006"
    ):
        assert rule_id in out


def test_lint_default_target_is_the_package(capsys):
    # Bare ``lint`` checks the installed repro package itself -- this
    # doubles as the repo-is-clean acceptance gate through the CLI.
    code = main(["lint"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "clean" in out


def test_lint_show_suppressed(capsys):
    code = main(
        ["lint", str(FIXTURES / "suppressed.py"), "--show-suppressed"]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "suppressed (3):" in out
