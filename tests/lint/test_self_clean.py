"""The analyzer's acceptance gate: ``src/repro`` is violation-free.

Every finding in the package is either fixed or carries a reviewed
``# lint: ignore[...]`` suppression; this test pins both halves so a
new violation *or* an unreviewed suppression fails CI.
"""

from pathlib import Path

import repro
from repro.lint import run_lint

PACKAGE_ROOT = Path(repro.__file__).parent

#: The reviewed suppression inventory: (module path suffix, rule, count).
#: Adding a suppression means updating this list in the same PR.
RECORDED_SUPPRESSIONS = [
    ("core/runtime/accuracy_tuning.py", "REP002", 1),
    ("nn/perforation.py", "REP002", 3),
    # The supervisor's single wall-clock read: shard timeouts measure
    # real elapsed time by definition, and nothing derived from it is
    # fingerprinted (see the module docstring's containment invariant).
    ("resilience/supervisor.py", "REP001", 1),
]


#: The reviewed benchmark-sweep inventory (REP002/REP003/REP006 over
#: benchmarks/ and examples/): exact-sentinel assertions only --
#: piecewise SoC curves saturating to exactly 0/1 and Table VI
#: configuration constants.
BENCH_SUPPRESSIONS = [
    ("benchmarks/bench_fig13_runtime_soctime.py", "REP002", 3),
    ("benchmarks/bench_fig3_satisfaction_curves.py", "REP002", 5),
    ("benchmarks/bench_table4_kernel_detail.py", "REP002", 2),
]

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_package_has_zero_unsuppressed_violations():
    report = run_lint([PACKAGE_ROOT])
    assert report.ok, "\n".join(v.render() for v in report.violations)


def test_package_has_zero_stale_suppressions():
    # Every marker in the package must still cover a live finding --
    # the suppression inventory cannot rot silently.
    report = run_lint([PACKAGE_ROOT])
    assert report.stale == [], "\n".join(
        stale.render() for stale in report.stale
    )


def test_whole_program_rules_are_clean_standalone():
    # REP007..REP009 alone (interprocedural taint, spawn contract,
    # hook purity): zero findings and zero suppressions in the
    # package -- the call-graph rules hold without any carve-outs.
    report = run_lint(
        [PACKAGE_ROOT], rule_ids=["REP007", "REP008", "REP009"]
    )
    assert report.ok, "\n".join(v.render() for v in report.violations)
    assert not report.suppressed, [
        v.render() for v in report.suppressed
    ]


def test_benchmarks_and_examples_sweep_is_clean():
    # Satellite scope: the module-local correctness rules also hold
    # over benchmarks/ and examples/, modulo the recorded exact
    # -sentinel suppressions above.
    report = run_lint(
        [REPO_ROOT / "benchmarks", REPO_ROOT / "examples"],
        rule_ids=["REP002", "REP003", "REP006"],
    )
    assert report.ok, "\n".join(v.render() for v in report.violations)
    assert report.stale == [], [s.render() for s in report.stale]
    actual = {}
    for violation in report.suppressed:
        key = (violation.path, violation.rule_id)
        actual[key] = actual.get(key, 0) + 1
    expected_total = sum(count for _, _, count in BENCH_SUPPRESSIONS)
    assert len(report.suppressed) == expected_total, sorted(actual)
    for suffix, rule_id, count in BENCH_SUPPRESSIONS:
        matches = sum(
            n for (path, rule), n in actual.items()
            if rule == rule_id and path.endswith(str(Path(suffix)))
        )
        assert matches == count, (suffix, rule_id, sorted(actual))


def test_package_scans_every_module():
    report = run_lint([PACKAGE_ROOT])
    n_files = len(list(PACKAGE_ROOT.rglob("*.py")))
    assert report.files_scanned == n_files
    assert report.errors == {}


def test_suppression_inventory_matches_recorded():
    report = run_lint([PACKAGE_ROOT])
    actual = {}
    for violation in report.suppressed:
        key = (violation.path, violation.rule_id)
        actual[key] = actual.get(key, 0) + 1
    expected_total = sum(count for _, _, count in RECORDED_SUPPRESSIONS)
    assert len(report.suppressed) == expected_total, sorted(actual)
    for suffix, rule_id, count in RECORDED_SUPPRESSIONS:
        matches = sum(
            n for (path, rule), n in actual.items()
            if rule == rule_id and path.endswith(str(Path(suffix)))
        )
        assert matches == count, (suffix, rule_id, sorted(actual))


def test_simulation_packages_exist_for_rep001_scope():
    # REP001's scope list must track the real package layout; a rename
    # would silently unscope the determinism rule.
    from repro.lint.rules.determinism import SIMULATION_PACKAGES

    for package in SIMULATION_PACKAGES:
        relative = Path(*package.split(".")[1:])
        assert (PACKAGE_ROOT / relative / "__init__.py").exists(), package


def test_obs_package_is_rep001_rep003_clean():
    # The observability layer feeds trace/metric fingerprints, so it
    # sits inside REP001's simulation scope and its exporters must be
    # REP003-clean -- pinned explicitly, not just via the package scan.
    from repro.lint.rules.determinism import SIMULATION_PACKAGES

    assert "repro.obs" in SIMULATION_PACKAGES
    obs_root = PACKAGE_ROOT / "obs"
    report = run_lint([obs_root], rule_ids=["REP001", "REP003"])
    assert report.ok, "\n".join(v.render() for v in report.violations)
    assert report.files_scanned == len(list(obs_root.rglob("*.py")))
    assert not report.suppressed, "obs must not carry suppressions"


def test_control_package_is_rep001_clean():
    # The predictive control plane feeds forecasts and DVFS commands
    # straight into fingerprinted router runs, so it lives inside
    # REP001's simulation scope and must be wall-clock/ambient-entropy
    # free with no suppressions.
    from repro.lint.rules.determinism import SIMULATION_PACKAGES

    assert "repro.control" in SIMULATION_PACKAGES
    control_root = PACKAGE_ROOT / "control"
    report = run_lint([control_root], rule_ids=["REP001"])
    assert report.ok, "\n".join(v.render() for v in report.violations)
    assert report.files_scanned == len(list(control_root.rglob("*.py")))
    assert not report.suppressed, "control must not carry suppressions"


def test_resilience_package_is_rep001_clean():
    # Supervision is where wall-clock time is *allowed* to exist, which
    # is exactly why the package sits inside REP001's scope: every real
    # -time read must be a reviewed suppression, and there is precisely
    # one (the supervisor's timeout clock).  Anything else -- fault
    # plans, integrity checks, checkpoints -- must be clock-free.
    from repro.lint.rules.determinism import SIMULATION_PACKAGES

    assert "repro.resilience" in SIMULATION_PACKAGES
    resilience_root = PACKAGE_ROOT / "resilience"
    report = run_lint([resilience_root], rule_ids=["REP001"])
    assert report.ok, "\n".join(v.render() for v in report.violations)
    assert report.files_scanned == len(
        list(resilience_root.rglob("*.py"))
    )
    suppressed = [
        (violation.path, violation.rule_id)
        for violation in report.suppressed
    ]
    assert len(suppressed) == 1, suppressed
    path, rule_id = suppressed[0]
    assert rule_id == "REP001"
    assert path.endswith("supervisor.py")

def test_vectorized_backend_is_rep001_rep007_clean():
    # The vectorized backend (repro.sim.vec plus the serving twin)
    # re-implements the fingerprinted hot path as array programs, so
    # it inherits REP001's determinism scope through the repro.sim /
    # repro.serving prefixes -- pinned explicitly so a package move
    # cannot silently unscope it.  Both the module-local rule and the
    # interprocedural taint rule must hold with zero suppressions.
    from repro.lint.rules.determinism import SIMULATION_PACKAGES

    assert any(
        "repro.sim.vec".startswith(package)
        for package in SIMULATION_PACKAGES
    )
    vec_root = PACKAGE_ROOT / "sim" / "vec"
    vec_router = PACKAGE_ROOT / "serving" / "vec_router.py"
    assert vec_router.exists()
    report = run_lint(
        [vec_root, vec_router], rule_ids=["REP001", "REP007"]
    )
    assert report.ok, "\n".join(v.render() for v in report.violations)
    assert report.files_scanned == len(list(vec_root.rglob("*.py"))) + 1
    assert not report.suppressed, (
        "the vectorized backend must not carry suppressions"
    )
