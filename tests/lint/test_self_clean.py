"""The analyzer's acceptance gate: ``src/repro`` is violation-free.

Every finding in the package is either fixed or carries a reviewed
``# lint: ignore[...]`` suppression; this test pins both halves so a
new violation *or* an unreviewed suppression fails CI.
"""

from pathlib import Path

import repro
from repro.lint import run_lint

PACKAGE_ROOT = Path(repro.__file__).parent

#: The reviewed suppression inventory: (module path suffix, rule, count).
#: Adding a suppression means updating this list in the same PR.
RECORDED_SUPPRESSIONS = [
    ("core/runtime/accuracy_tuning.py", "REP002", 1),
    ("nn/perforation.py", "REP002", 3),
]


def test_package_has_zero_unsuppressed_violations():
    report = run_lint([PACKAGE_ROOT])
    assert report.ok, "\n".join(v.render() for v in report.violations)


def test_package_scans_every_module():
    report = run_lint([PACKAGE_ROOT])
    n_files = len(list(PACKAGE_ROOT.rglob("*.py")))
    assert report.files_scanned == n_files
    assert report.errors == {}


def test_suppression_inventory_matches_recorded():
    report = run_lint([PACKAGE_ROOT])
    actual = {}
    for violation in report.suppressed:
        key = (violation.path, violation.rule_id)
        actual[key] = actual.get(key, 0) + 1
    expected_total = sum(count for _, _, count in RECORDED_SUPPRESSIONS)
    assert len(report.suppressed) == expected_total, sorted(actual)
    for suffix, rule_id, count in RECORDED_SUPPRESSIONS:
        matches = sum(
            n for (path, rule), n in actual.items()
            if rule == rule_id and path.endswith(str(Path(suffix)))
        )
        assert matches == count, (suffix, rule_id, sorted(actual))


def test_simulation_packages_exist_for_rep001_scope():
    # REP001's scope list must track the real package layout; a rename
    # would silently unscope the determinism rule.
    from repro.lint.rules.determinism import SIMULATION_PACKAGES

    for package in SIMULATION_PACKAGES:
        relative = Path(*package.split(".")[1:])
        assert (PACKAGE_ROOT / relative / "__init__.py").exists(), package


def test_obs_package_is_rep001_rep003_clean():
    # The observability layer feeds trace/metric fingerprints, so it
    # sits inside REP001's simulation scope and its exporters must be
    # REP003-clean -- pinned explicitly, not just via the package scan.
    from repro.lint.rules.determinism import SIMULATION_PACKAGES

    assert "repro.obs" in SIMULATION_PACKAGES
    obs_root = PACKAGE_ROOT / "obs"
    report = run_lint([obs_root], rule_ids=["REP001", "REP003"])
    assert report.ok, "\n".join(v.render() for v in report.violations)
    assert report.files_scanned == len(list(obs_root.rglob("*.py")))
    assert not report.suppressed, "obs must not carry suppressions"


def test_control_package_is_rep001_clean():
    # The predictive control plane feeds forecasts and DVFS commands
    # straight into fingerprinted router runs, so it lives inside
    # REP001's simulation scope and must be wall-clock/ambient-entropy
    # free with no suppressions.
    from repro.lint.rules.determinism import SIMULATION_PACKAGES

    assert "repro.control" in SIMULATION_PACKAGES
    control_root = PACKAGE_ROOT / "control"
    report = run_lint([control_root], rule_ids=["REP001"])
    assert report.ok, "\n".join(v.render() for v in report.violations)
    assert report.files_scanned == len(list(control_root.rglob("*.py")))
    assert not report.suppressed, "control must not carry suppressions"
