"""Unit tests for the conservative project call graph.

The whole-program rules (REP007..REP009) all lean on the same
resolution substrate; these tests pin each resolution path in
isolation -- lexical scope, aliases, methods, constructors -- and the
property test at the bottom pins the headline guarantee: taint
analysis results do not depend on module analysis order.
"""

import textwrap
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.callgraph import build_callgraph
from repro.lint.core import (
    ProjectContext,
    iter_python_files,
    load_source_module,
)
from repro.lint.rules.taint import TaintRule

FIXTURES = Path(__file__).parent / "fixtures"


def _graph(tmp_path, sources):
    modules = []
    for name, text in sorted(sources.items()):
        path = tmp_path / ("%s.py" % name)
        path.write_text(textwrap.dedent(text))
        modules.append(load_source_module(path))
    return build_callgraph(modules)


def _targets(graph, qualname):
    return sorted(
        target
        for site in graph.functions[qualname].calls
        for target in site.targets
    )


def test_module_function_edge(tmp_path):
    graph = _graph(tmp_path, {
        "m": """
            def helper():
                return 1


            def entry():
                return helper()
        """,
    })
    assert _targets(graph, "m.entry") == ["m.helper"]


def test_cross_module_alias_and_external_names(tmp_path):
    graph = _graph(tmp_path, {
        "helpers": """
            def work():
                return 0
        """,
        "consumer": """
            import time
            from time import perf_counter
            from helpers import work as w


            def go():
                w()
                time.time()
                perf_counter()
        """,
    })
    assert _targets(graph, "consumer.go") == ["helpers.work"]
    externals = sorted(
        site.external
        for site in graph.functions["consumer.go"].calls
        if site.external is not None
    )
    # Alias expansion recovers the true dotted names (REP001 parity).
    assert externals == ["time.perf_counter", "time.time"]


def test_method_resolution_through_project_bases(tmp_path):
    graph = _graph(tmp_path, {
        "m": """
            class Base:
                def ping(self):
                    return 1


            class Child(Base):
                def run(self):
                    return self.ping()
        """,
    })
    assert _targets(graph, "m.Child.run") == ["m.Base.ping"]


def test_closure_inside_method_sees_self(tmp_path):
    graph = _graph(tmp_path, {
        "m": """
            class Plane:
                def helper(self):
                    return 1

                def tick(self):
                    def inner():
                        return self.helper()
                    return inner
        """,
    })
    inner = "m.Plane.tick.<locals>.inner"
    assert _targets(graph, inner) == ["m.Plane.helper"]


def test_constructor_edges_reach_init_and_post_init(tmp_path):
    graph = _graph(tmp_path, {
        "m": """
            class Spec:
                def __init__(self):
                    self.x = 0

                def __post_init__(self):
                    pass


            def build():
                return Spec()
        """,
    })
    assert _targets(graph, "m.build") == [
        "m.Spec.__init__", "m.Spec.__post_init__",
    ]


def test_nested_definitions_resolve_lexically(tmp_path):
    graph = _graph(tmp_path, {
        "m": """
            def outer():
                def inner():
                    return 1
                return inner()
        """,
    })
    assert _targets(graph, "m.outer") == ["m.outer.<locals>.inner"]


def test_calls_through_objects_stay_unresolved(tmp_path):
    # Conservatism: an attribute call on a plain object is neither a
    # project edge nor a reason to guess.
    graph = _graph(tmp_path, {
        "m": """
            def go(engine):
                return engine.dispatch()
        """,
    })
    assert _targets(graph, "m.go") == []


def test_callers_of_reverse_index(tmp_path):
    graph = _graph(tmp_path, {
        "m": """
            def helper():
                return 1


            def a():
                return helper()


            def b():
                return helper()
        """,
    })
    callers = sorted(name for name, _ in graph.callers_of("m.helper"))
    assert callers == ["m.a", "m.b"]


def _fixture_modules():
    return [
        load_source_module(path)
        for path in iter_python_files([FIXTURES])
    ]


def _taint_key(violation):
    return (
        violation.path, violation.line, violation.col,
        violation.message, violation.chain,
    )


def test_graph_shape_is_order_independent():
    modules = _fixture_modules()
    forward = build_callgraph(modules)
    backward = build_callgraph(list(reversed(modules)))
    assert sorted(forward.functions) == sorted(backward.functions)
    for qualname in forward.functions:
        assert [
            (site.targets, site.external)
            for site in forward.functions[qualname].calls
        ] == [
            (site.targets, site.external)
            for site in backward.functions[qualname].calls
        ], qualname


@settings(max_examples=12, deadline=None)
@given(st.permutations(list(range(len(_fixture_modules())))))
def test_taint_results_independent_of_module_order(order):
    # The acceptance property for REP007: any analysis order yields
    # byte-identical violations, witness chains included.
    modules = _fixture_modules()
    baseline = TaintRule().check_project(
        modules, ProjectContext(modules)
    )
    permuted = [modules[index] for index in order]
    result = TaintRule().check_project(
        permuted, ProjectContext(permuted)
    )
    assert sorted(map(_taint_key, result)) == sorted(
        map(_taint_key, baseline)
    )
    assert len(result) == len(baseline)
