"""Analyzer core: suppressions, module naming, registry, discovery."""

from pathlib import Path

import pytest

from repro.lint.core import (
    RuleRegistry,
    SuppressionTable,
    iter_python_files,
    load_source_module,
    module_name_for,
    registry,
)

FIXTURES = Path(__file__).parent / "fixtures"


class TestSuppressionTable:
    def test_single_rule(self):
        table = SuppressionTable.parse("x = 1  # lint: ignore[REP002]\n")
        assert table.covers(1, "REP002")
        assert not table.covers(1, "REP001")
        assert not table.covers(2, "REP002")

    def test_multiple_rules_one_comment(self):
        table = SuppressionTable.parse(
            "x = 1  # lint: ignore[REP004, REP006]\n"
        )
        assert table.covers(1, "REP004")
        assert table.covers(1, "REP006")

    def test_marker_inside_string_is_not_a_suppression(self):
        table = SuppressionTable.parse('x = "# lint: ignore[REP002]"\n')
        assert not table.covers(1, "REP002")

    def test_marker_count(self):
        source = (
            "a = 1  # lint: ignore[REP001]\n"
            "b = 2\n"
            "c = 3  # lint: ignore[REP002]\n"
        )
        assert SuppressionTable.parse(source).n_markers == 2

    def test_unparseable_source_has_no_suppressions(self):
        table = SuppressionTable.parse("x = (\n")
        assert table.n_markers == 0


class TestModuleNaming:
    def test_package_module(self):
        path = FIXTURES / "repro" / "sim" / "rep001_bad.py"
        assert module_name_for(path) == "repro.sim.rep001_bad"

    def test_package_init_is_the_package(self):
        path = FIXTURES / "cycle_pkg" / "__init__.py"
        assert module_name_for(path) == "cycle_pkg"

    def test_file_outside_any_package(self):
        path = FIXTURES / "rep002_bad.py"
        assert module_name_for(path) == "rep002_bad"


class TestLoadSourceModule:
    def test_loads_tree_and_suppressions(self):
        module = load_source_module(FIXTURES / "suppressed.py")
        assert module.name == "suppressed"
        assert module.tree.body
        assert module.suppressions.n_markers >= 3

    def test_syntax_error_propagates(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        with pytest.raises(SyntaxError):
            load_source_module(bad)


class TestRegistry:
    def test_catalog_has_the_nine_rules(self):
        ids = [rule.rule_id for rule in registry]
        assert ids == [
            "REP001", "REP002", "REP003", "REP004", "REP005",
            "REP006", "REP007", "REP008", "REP009",
        ]

    def test_every_rule_is_documented(self):
        for rule in registry:
            assert rule.summary, rule.rule_id
            assert rule.rationale, rule.rule_id

    def test_unknown_rule_lists_catalog(self):
        with pytest.raises(KeyError, match="REP001"):
            registry.get("REP999")

    def test_select_subset_preserves_request_order(self):
        rules = registry.select(["REP003", "REP001"])
        assert [r.rule_id for r in rules] == ["REP003", "REP001"]

    def test_bad_rule_id_rejected_at_registration(self):
        fresh = RuleRegistry()
        with pytest.raises(ValueError, match="REPnnn"):
            @fresh.register
            class Nameless:  # noqa: N801 - deliberate bad rule
                rule_id = "not-an-id"

    def test_duplicate_rule_id_rejected(self):
        fresh = RuleRegistry()

        @fresh.register
        class First:
            rule_id = "REP101"

        with pytest.raises(ValueError, match="duplicate"):
            @fresh.register
            class Second:
                rule_id = "REP101"


class TestDiscovery:
    def test_directory_expansion_is_sorted_and_deduped(self):
        files = iter_python_files([FIXTURES, FIXTURES / "rep002_bad.py"])
        assert files == sorted(set(files))
        assert FIXTURES / "rep002_bad.py" in files

    def test_non_python_path_rejected(self, tmp_path):
        stray = tmp_path / "notes.txt"
        stray.write_text("hi")
        with pytest.raises(ValueError, match="notes.txt"):
            iter_python_files([stray])
