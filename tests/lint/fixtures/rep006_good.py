"""REP006 fixture: the sanctioned default patterns."""
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


def collect(item, bucket: Optional[list] = None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket


def window(sizes: Tuple[int, ...] = (1, 2, 4)):
    return sizes  # tuples are immutable


@dataclass
class Report:
    rows: List[int] = field(default_factory=list)
