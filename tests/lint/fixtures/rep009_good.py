"""REP009 fixture: the sanctioned observer patterns stay clean.

Subscribers may count and trace; the engine relay may record the
cache-neutral kinds the fingerprint strips; the tick path may act
through sanctioned seams like ``prewarm``.
"""


def attach_counters(engine, counters):
    def on_execute(key, report):
        counters[key] = counters.get(key, 0) + 1

    engine.hooks.subscribe("on_execute", on_execute)


def relay_cache_events(engine, events):
    def on_compile(key, plan):
        events.record("compile", key=key)

    def on_cache_hit(key, plan):
        events.record("cache_hit", key=key)

    engine.hooks.subscribe("on_compile", on_compile)
    engine.hooks.subscribe("on_cache_hit", on_cache_hit)


class ControlPlane:
    def __init__(self, engine):
        self._engine = engine

    def tick(self, now, states):
        self._prewarm(states)
        return states

    def _prewarm(self, states):
        for state in states:
            self._engine.prewarm(state)
