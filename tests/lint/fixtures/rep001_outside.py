"""REP001 fixture: banned calls *outside* any simulation package.

The determinism rule is scoped to repro.{sim,serving,faults,
workloads,schedulers}; tooling and offline scripts may read clocks.
"""
import time


def stamp():
    return time.time()  # allowed: not a simulation path
