"""Suppression fixture: findings covered by ignore comments."""


def is_idle(utilization):
    return utilization == 0.0  # lint: ignore[REP002]


def total(queue_ms, service_s, bucket=[]):  # lint: ignore[REP004, REP006]
    bucket.append(queue_ms + service_s)  # lint: ignore[REP004]
    return bucket


def not_a_suppression():
    return "# lint: ignore[REP006]"  # a string literal, not a comment


def still_fires(sink=[]):  # line 17: REP006, not suppressed
    return sink
