"""REP003 fixture: order-unstable iteration in export paths."""
import json


def to_dict(counts):
    return {
        "counts": [value for value in counts.values()],  # line 7: view
        "kinds": list(counts.keys()),  # line 8 is fine: not a loop here
    }


def fingerprint(payload, seen):
    rows = []
    for key, value in payload.items():  # line 14: unsorted items()
        rows.append((key, value))
    for kind in set(seen):  # line 16: set iteration
        rows.append(kind)
    return json.dumps(rows)  # line 18: dumps without sort_keys


def export_rows(index):
    return [index[key] for key in index.keys()]  # line 22: keys() view
