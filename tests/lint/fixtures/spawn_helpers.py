"""REP008 fixture: a payload class outside any importable package.

This file sits at the fixture root with no ``__init__.py`` above it,
so a spawn worker has no module path to import ``OutsidePayload``
from -- referencing it from a spawn root is a contract violation.
"""
from dataclasses import dataclass


@dataclass
class OutsidePayload:
    blob: bytes = b""
