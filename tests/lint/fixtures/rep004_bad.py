"""REP004 fixture: unit-suffix algebra violations."""


def total_latency(queue_ms, service_s):
    return queue_ms + service_s  # line 5: ms + s


def energy_budget_left(budget_j, spent_mj):
    return budget_j - spent_mj  # line 9: J - mJ


def deadline_ok(latency_ms, deadline_s):
    return latency_ms < deadline_s  # line 13: ms vs s comparison


def nonsense(duration_s, energy_j):
    return duration_s + energy_j  # line 17: seconds + joules


def footprint(used_bytes, quota_kb):
    return used_bytes > quota_kb  # line 21: bytes vs kb


def runtime(plan):  # line 24: suffixless name, docstring declares seconds
    """Predicted execution time in seconds."""
    return plan.total
