"""REP009 fixture: hook subscribers and tick paths that write the
ledger.

``on_compile`` relays a cache-neutral kind (sanctioned); the other
two subscribers and the tick-reachable helper record kinds the report
fingerprint keeps -- exactly the writes the rule must catch.
"""


def attach_probes(engine, events):
    def on_compile(key, plan):
        events.record("compile", key=key)  # neutral relay: sanctioned

    def on_execute(key, report):
        events.record("execute", batch=key)  # line 15: ledger write

    def on_cache_hit(kind, key):
        events.record(kind, key=key)  # line 18: dynamic kind

    engine.hooks.subscribe("on_compile", on_compile)
    engine.hooks.subscribe("on_execute", on_execute)
    engine.hooks.subscribe("on_cache_hit", on_cache_hit)


class ControlPlane:
    def __init__(self, events):
        self._events = events

    def tick(self, now, states):
        return self._apply(now, states)

    def _apply(self, now, states):
        self._events.record("control_override", at=now)  # line 33
        return states
