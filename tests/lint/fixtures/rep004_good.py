"""REP004 fixture: unit algebra the rule must accept."""


def total_latency_s(queue_s, service_s):
    return queue_s + service_s  # same unit


def total_latency_ms(queue_ms, service_s):
    return queue_ms + service_s * 1e3  # explicit conversion breaks the pair


def energy_j(power_w, duration_s):
    return power_w * duration_s  # multiplication changes dimension


def rate_hz(n_requests, window_s):
    return n_requests / window_s  # division changes dimension


def runtime_s(plan):
    """Predicted execution time in seconds."""
    return plan.total  # unit declared and carried in the name


def compare_like(latency_s, deadline_s):
    return latency_s < deadline_s
