"""REP002 fixture: float equality in modeling-style code."""


def latency_matches(latency_s, deadline_s):
    return latency_s == deadline_s * 1.0  # line 5: float literal operand


def is_idle(utilization):
    return utilization == 0.0  # line 9: == against a float literal


def rates_differ(a, b, total):
    return a / total != b / total  # line 13: != on division results


def cast_check(x):
    return float(x) == x  # line 17: == on a float(...) cast
