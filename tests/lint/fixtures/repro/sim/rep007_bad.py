"""REP007 fixture: nondeterminism reached through helper call chains.

No line here matches REP001 -- the banned reads live in
``repro.gpu.clock_helpers`` -- yet same-seed replay is voided all the
same.  REP007 walks the call graph and anchors its report at the
first hop out of the simulation function.
"""
from repro.gpu.clock_helpers import fresh_tag, middle


def step_window(scale):
    return middle(scale)  # line 12: two hops to time.time


def label_run(run):
    return "%s-%s" % (run, fresh_tag())  # line 16: one hop to uuid4
