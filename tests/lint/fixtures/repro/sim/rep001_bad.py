"""REP001 fixture: every banned nondeterminism source, one per line."""
import os
import random
import time
import uuid
from time import perf_counter

import numpy as np


def stamp():
    return time.time()  # line 12: wall clock


def stamp_fast():
    return perf_counter()  # line 16: aliased wall clock


def entropy():
    return os.urandom(8)  # line 20: ambient entropy


def request_id():
    return uuid.uuid4()  # line 24: ambient entropy


def jitter():
    random.seed(0)  # line 28: global reseed
    return random.random()  # line 29: module-level RNG draw


def noise():
    return np.random.rand(4)  # line 33: module-level numpy RNG draw
