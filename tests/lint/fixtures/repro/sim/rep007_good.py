"""REP007 fixture: the clean patterns stay clean.

Time flows in as a parameter, pure helpers taint nobody, and a
``# lint: ignore[REP007]`` on the banned read itself (the reviewed
containment claim) stops the seed before it reaches this module.
"""
from repro.gpu.clock_helpers import contained_clock, scaled


def step_window(now, scale):
    return scaled(now, scale)  # pure helper: no taint


def watchdog_deadline(grace):
    return contained_clock() + grace  # contained upstream: no taint
