"""REP001 fixture: the sanctioned seeded-randomness patterns."""
import random

import numpy as np


def make_rng(seed):
    return np.random.default_rng(seed)


def make_stdlib_rng(seed):
    return random.Random(seed)


def jitter(rng):
    return rng.random()  # draws through an explicit Generator


def sequence(seed):
    return np.random.SeedSequence(seed)


def elapsed(now_s, start_s):
    return now_s - start_s  # time flows in as a parameter
