"""REP008 fixture: spawn payloads that cannot pickle by reference.

``ShardSpec`` is a spawn root by name; the rule walks its declared
type graph and flags every way it breaks the pickle-by-reference
contract: a lambda field default, a closure-captured local class,
and a type defined outside any importable package.
"""
from dataclasses import dataclass, field
from typing import Callable, Optional

from spawn_helpers import OutsidePayload


def make_payload():
    @dataclass
    class LocalPayload:  # closure-captured: no importable path
        value: int = 0

    return LocalPayload


@dataclass
class FaultKnobs:
    jitter: Callable = field(default_factory=lambda: 0.0)  # line 24


@dataclass
class ShardSpec:
    shard_id: int = 0
    knobs: Optional[FaultKnobs] = None
    payload: Optional["LocalPayload"] = None  # line 31: local class
    outside: Optional[OutsidePayload] = None  # -> spawn_helpers.py
