"""Fixture mini-package: shard specs that cross the spawn boundary."""
