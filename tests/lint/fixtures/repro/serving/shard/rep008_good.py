"""REP008 fixture: a spawn payload that pickles by reference.

Top-level dataclasses inside a package, defaults that are constants
or module-level functions -- the contract the shard workers rely on.
"""
from dataclasses import dataclass, field
from typing import Optional, Tuple


def default_stages():
    return ()


@dataclass
class ShardPlanEntry:
    stage: str = ""
    weight: int = 1


@dataclass
class FleetSpec:
    fleet_id: int = 0
    stages: Tuple[str, ...] = field(default_factory=default_stages)
    head: Optional[ShardPlanEntry] = None
