"""Fixture mini-package: the spawn-boundary (REP008) corpus."""
