"""Fixture mini-package: non-simulation helpers (clocks allowed here,
but REP007 still traces them into simulation callers)."""
