"""REP007 fixture helpers: nondeterminism buried below the sim API.

Nothing here matches REP001 (repro.gpu is not a simulation package),
which is exactly the hole REP007 closes: these reads taint whatever
calls them from ``repro.sim``.
"""
import time
import uuid


def deep_clock():
    return time.time()  # line 12: the buried wall-clock read


def middle(scale):
    return deep_clock() * scale  # hop between sim and the clock


def fresh_tag():
    return str(uuid.uuid4())  # line 20: buried ambient entropy


def contained_clock():
    return time.time()  # lint: ignore[REP007]


def scaled(value, scale):
    return value * scale  # pure: taints nobody
