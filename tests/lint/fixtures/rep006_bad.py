"""REP006 fixture: mutable default arguments."""


def collect(item, bucket=[]):  # line 4: list literal default
    bucket.append(item)
    return bucket


def index(key, table={}):  # line 9: dict literal default
    return table.setdefault(key, len(table))


def tags(extra=set()):  # line 13: set call default
    return extra


def keyword_only(*, seen=list()):  # line 17: list call kw-only default
    return seen
