"""Stale-suppression fixture: markers that earn their keep no longer.

The first marker names a real rule that no longer fires on its line
(the code under it got fixed); the second names a rule id the
registry has never heard of.  Both must surface under --show-stale.
"""


def fixed_now(flag):
    return bool(flag)  # lint: ignore[REP002]


def typo_rule(value):
    return value  # lint: ignore[REP999]
