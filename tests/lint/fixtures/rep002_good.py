"""REP002 fixture: comparisons the float-equality rule must not flag."""
import math


def latency_matches(latency_s, deadline_s):
    return math.isclose(latency_s, deadline_s)


def is_idle(n_busy):
    return n_busy == 0  # int equality is exact


def below(latency_s, deadline_s):
    return latency_s <= deadline_s  # ordering comparisons are fine


def sentinel(rate):
    # Exact assigned sentinel, suppressed with a rationale.
    return rate == 0.0  # lint: ignore[REP002]
