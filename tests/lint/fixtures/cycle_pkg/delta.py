"""REP005 fixture: imported by gamma; no imports of its own."""

VALUE = 1
