"""REP005 fixture: the other half of the cycle."""
from typing import TYPE_CHECKING

import cycle_pkg.alpha  # line 4: closes the cycle with alpha

if TYPE_CHECKING:
    from cycle_pkg import gamma  # type-only: never a cycle edge


def pong():
    return cycle_pkg.alpha.ping()
