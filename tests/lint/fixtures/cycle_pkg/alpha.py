"""REP005 fixture: one half of a two-module import cycle."""
from cycle_pkg import beta  # line 2: closes the cycle with beta


def ping():
    return beta.pong()


def lazy():
    import json  # line 10: function-local import, no marker
    return json.dumps([], sort_keys=True)
