"""REP005 fixture: acyclic module with a sanctioned local import."""


def late_bind():
    # Deliberate deferral, documented as a cycle break.
    from cycle_pkg import delta  # cycle-breaker
    return delta


def marker_above():
    # cycle-breaker: the marker may sit in the comment block above.
    import math
    return math.tau
