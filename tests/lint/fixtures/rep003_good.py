"""REP003 fixture: the sanctioned stable-order export patterns."""
import json


def to_dict(counts):
    return {
        "counts": [counts[kind] for kind in sorted(counts)],
        "kinds": sorted(counts.keys()),
    }


def fingerprint(payload, seen):
    rows = []
    for key, value in sorted(payload.items()):
        rows.append((key, value))
    for kind in sorted(set(seen)):
        rows.append(kind)
    return json.dumps(rows, sort_keys=True)


def summarize(counts):
    # Not an export-path function: view iteration is fine here.
    return sum(value for value in counts.values())


def to_dicts(records):
    # Dict comprehensions are exempt: the result is keyed and the
    # sorted dump downstream normalizes it.
    return [{key: value for key, value in record.items()}
            for record in records]
