"""Cross-module property-based tests (hypothesis).

These pin the global invariants that individual unit tests exercise
pointwise: occupancy bounds, time-model monotonicity, SoC bounds, and
compiled-plan consistency hold for *arbitrary* shapes and parameters,
not just the paper's.
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.offline import OfflineCompiler, opt_sm
from repro.core.offline.kernel_tuning import PCNN_BACKEND, tune_layer_kernel
from repro.core.satisfaction import TimeRequirement, soc, soc_accuracy, soc_time
from repro.gpu import GTX_970M, JETSON_TX1, K20C, TITAN_X, occupancy
from repro.gpu.kernels import GemmShape, make_kernel
from repro.sim.engine import analytic_kernel_time_s

ARCHS = (K20C, TITAN_X, GTX_970M, JETSON_TX1)

gemm_shapes = st.builds(
    GemmShape,
    m_rows=st.integers(1, 1024),
    n_cols=st.integers(1, 8192),
    k_depth=st.integers(1, 4096),
)

tiles = st.sampled_from([(32, 32), (64, 64), (64, 128), (128, 64), (128, 128)])


class TestOccupancyProperties:
    @given(shape=gemm_shapes, tile=tiles, arch=st.sampled_from(ARCHS))
    @settings(max_examples=80, deadline=None)
    def test_util_bounded(self, shape, tile, arch):
        kernel = make_kernel(*tile)
        assume(kernel.shared_mem_bytes <= arch.shared_mem_per_sm)
        util = occupancy.utilization(arch, kernel, shape)
        assert 0.0 < util <= 1.0 + 1e-12

    @given(shape=gemm_shapes, tile=tiles, arch=st.sampled_from(ARCHS))
    @settings(max_examples=80, deadline=None)
    def test_grid_covers_and_rec_accounts_for_it(self, shape, tile, arch):
        kernel = make_kernel(*tile)
        grid = kernel.grid_size(shape)
        rec = occupancy.effective_computation_ratio(shape, *tile)
        covered = grid * tile[0] * tile[1]
        assert covered * rec == pytest.approx(shape.m_rows * shape.n_cols)

    @given(
        grid=st.integers(1, 100000),
        tlp=st.integers(1, 32),
        arch=st.sampled_from(ARCHS),
    )
    @settings(max_examples=80, deadline=None)
    def test_opt_sm_is_minimal_and_wave_preserving(self, grid, tlp, arch):
        sms = opt_sm(arch, grid, tlp)
        full_waves = math.ceil(grid / (tlp * arch.n_sms))
        assert math.ceil(grid / (tlp * sms)) == full_waves
        assert 1 <= sms <= arch.n_sms


class TestTimeModelProperties:
    @given(
        n1=st.integers(1, 4000),
        n2=st.integers(1, 4000),
        tile=tiles,
        arch=st.sampled_from(ARCHS),
        tlp=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_columns(self, n1, n2, tile, arch, tlp):
        kernel = make_kernel(*tile)
        assume(kernel.shared_mem_bytes * tlp <= arch.shared_mem_per_sm)
        lo, hi = sorted((n1, n2))
        t_lo = analytic_kernel_time_s(
            arch, kernel, GemmShape(64, lo, 512), tlp=tlp
        )
        t_hi = analytic_kernel_time_s(
            arch, kernel, GemmShape(64, hi, 512), tlp=tlp
        )
        assert t_lo <= t_hi + 1e-15

    @given(
        shape=gemm_shapes,
        tile=tiles,
        arch=st.sampled_from(ARCHS),
    )
    @settings(max_examples=60, deadline=None)
    def test_time_positive_and_finite(self, shape, tile, arch):
        kernel = make_kernel(*tile)
        assume(kernel.shared_mem_bytes <= arch.shared_mem_per_sm)
        seconds = analytic_kernel_time_s(arch, kernel, shape, tlp=1)
        assert 0.0 < seconds < 1e4

    @given(shape=gemm_shapes, arch=st.sampled_from(ARCHS))
    @settings(max_examples=30, deadline=None)
    def test_tuned_kernel_never_loses_to_any_candidate(self, shape, arch):
        from repro.core.offline.kernel_tuning import candidate_kernels
        from repro.gpu.spilling import stair_points

        tuned = tune_layer_kernel(arch, shape)
        for kernel in candidate_kernels(arch):
            tlp, _regs = stair_points(arch, kernel)[0]
            other = analytic_kernel_time_s(
                arch, kernel, shape, library=PCNN_BACKEND, tlp=tlp
            )
            assert tuned.score <= other + 1e-15


class TestSatisfactionProperties:
    @given(
        runtime=st.floats(0.0, 100.0),
        ti=st.floats(0.001, 10.0),
        span=st.floats(0.0, 10.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_soc_time_bounded_and_monotone(self, runtime, ti, span):
        requirement = TimeRequirement(ti, ti + span)
        value = soc_time(runtime, requirement)
        assert 0.0 <= value <= 1.0
        assert soc_time(runtime + 0.5, requirement) <= value + 1e-12

    @given(
        entropy=st.floats(0.0, 50.0),
        threshold=st.floats(0.01, 10.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_soc_accuracy_bounded(self, entropy, threshold):
        value = soc_accuracy(entropy, threshold)
        assert 0.0 < value <= 1.0

    @given(
        runtime=st.floats(0.001, 5.0),
        entropy=st.floats(0.0, 5.0),
        energy=st.floats(0.001, 100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_soc_scales_inversely_with_energy(self, runtime, entropy, energy):
        requirement = TimeRequirement.interactive()
        one = soc(runtime, requirement, entropy, 1.0, energy)
        double = soc(runtime, requirement, entropy, 1.0, energy * 2)
        assert double.value == pytest.approx(one.value / 2)


class TestCompilerProperties:
    @given(batch=st.integers(1, 16))
    @settings(max_examples=8, deadline=None)
    def test_plan_times_scale_sanely_with_batch(self, batch):
        from repro.nn import pcnn_net

        compiler = OfflineCompiler(JETSON_TX1)
        net = pcnn_net("small")
        plan = compiler.compile_with_batch(net, batch)
        one = compiler.compile_with_batch(net, 1)
        assert plan.total_time_s >= one.total_time_s - 1e-12
        assert plan.total_time_s <= batch * one.total_time_s * 1.01
        assert plan.throughput_ips >= one.throughput_ips * 0.99


class TestMemoryModelProperties:
    @given(
        batch=st.integers(1, 256),
        lib_name=st.sampled_from(["cublas", "cudnn", "nervana"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_footprint_monotone_in_batch(self, batch, lib_name):
        from repro.gpu.libraries import get_library
        from repro.gpu.memory import estimate_footprint
        from repro.nn import alexnet

        profile = alexnet().memory_profile()
        library = get_library(lib_name)
        smaller = estimate_footprint(profile, library, batch)
        larger = estimate_footprint(profile, library, batch + 1)
        assert larger.total >= smaller.total

    @given(batch=st.integers(1, 64))
    @settings(max_examples=20, deadline=None)
    def test_fits_is_monotone(self, batch):
        """If a batch fits, every smaller batch fits too."""
        from repro.gpu.libraries import CUDNN
        from repro.gpu.memory import fits_in_memory
        from repro.nn import vgg16

        profile = vgg16().memory_profile()
        if fits_in_memory(JETSON_TX1, profile, CUDNN, batch + 1):
            assert fits_in_memory(JETSON_TX1, profile, CUDNN, batch)


class TestPerforationTimeConsistency:
    @given(rate=st.floats(0.0, 0.7))
    @settings(max_examples=15, deadline=None)
    def test_column_fraction_matches_executed_grid(self, rate):
        """The time model's column reduction and the executor's sampled
        grid agree exactly (the realized, quantized fraction)."""
        from repro.nn.perforation import PerforationPlan

        plan = PerforationPlan({"conv1": rate} if rate > 0 else {})
        fraction = plan.column_fraction("conv1", 27, 27)
        grid = plan.grid_for("conv1", 27, 27)
        if grid is None:
            assert fraction == 1.0
        else:
            assert fraction == pytest.approx(grid.kept / grid.total)
            assert len(grid.positions()) == grid.kept


class TestSimulatorAnalyticAgreement:
    @given(
        m=st.integers(128, 256),
        n=st.integers(8192, 24576),
        k=st.integers(64, 1024),
        arch=st.sampled_from(ARCHS),
    )
    @settings(max_examples=12, deadline=None)
    def test_event_sim_matches_closed_form_on_big_grids(self, m, n, k, arch):
        """In the wave regime (grid >> chip capacity) the event
        simulator and the steady-state formula agree within 20%."""
        from repro.sim.engine import simulate_kernel

        kernel = make_kernel(64, 64, block_size=256)
        shape = GemmShape(m, n, k)
        tlp = occupancy.ctas_per_sm(arch, kernel)
        analytic = analytic_kernel_time_s(arch, kernel, shape, tlp=tlp)
        simulated = simulate_kernel(arch, kernel, shape).seconds
        assert analytic == pytest.approx(simulated, rel=0.20)

    @given(
        opt_sm=st.integers(1, 13),
        opt_tlp=st.integers(1, 4),
    )
    @settings(max_examples=20, deadline=None)
    def test_psm_never_uses_more_than_opt_sm(self, opt_sm, opt_tlp):
        from repro.sim import PrioritySMScheduler
        from repro.sim.engine import simulate_kernel

        kernel = make_kernel(64, 64, block_size=256)
        shape = GemmShape(128, 729, 256)
        result = simulate_kernel(
            K20C,
            kernel,
            shape,
            scheduler=PrioritySMScheduler(opt_tlp=opt_tlp, opt_sm=opt_sm),
            max_ctas_per_sm=max(opt_tlp, 1),
        )
        assert result.sms_used <= opt_sm
        assert result.powered_sms <= max(opt_sm, result.sms_used)
