"""Tests for repro.nn.masks: checkerboard / scanline perforation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.masks import (
    make_checkerboard_perforation,
    make_scanline_perforation,
)
from repro.nn.perforation import make_grid_perforation


class TestCheckerboard:
    def test_exactly_half(self):
        mask = make_checkerboard_perforation(8, 8)
        assert mask.kept == 32
        assert mask.rate == pytest.approx(0.5)

    def test_phases_are_complementary(self):
        a = make_checkerboard_perforation(6, 6, phase=0)
        b = make_checkerboard_perforation(6, 6, phase=1)
        assert not np.any(a.keep_mask & b.keep_mask)
        assert np.all(a.keep_mask | b.keep_mask)

    def test_every_skipped_pixel_has_adjacent_sample(self):
        mask = make_checkerboard_perforation(7, 9)
        keep = mask.keep_mask
        for i in range(7):
            for j in range(9):
                if keep[i, j]:
                    continue
                neighbours = [
                    keep[x, y]
                    for x, y in (
                        (i - 1, j), (i + 1, j), (i, j - 1), (i, j + 1),
                    )
                    if 0 <= x < 7 and 0 <= y < 9
                ]
                assert any(neighbours)

    def test_interpolation_exact_on_samples(self):
        mask = make_checkerboard_perforation(5, 5)
        values = np.arange(mask.kept, dtype=float)
        dense = mask.interpolate(values)
        flat = dense.ravel()
        np.testing.assert_array_equal(flat[mask.positions()], values)

    def test_one_by_one(self):
        mask = make_checkerboard_perforation(1, 1, phase=1)
        assert mask.kept == 1


class TestScanline:
    def test_rate_realized(self):
        mask = make_scanline_perforation(10, 10, 0.6)
        assert mask.rate == pytest.approx(0.6, abs=0.05)

    def test_zero_rate_identity(self):
        mask = make_scanline_perforation(4, 4, 0.0)
        assert mask.kept == 16

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            make_scanline_perforation(4, 4, 1.0)

    @given(
        h=st.integers(2, 20), w=st.integers(2, 20),
        rate=st.floats(0.0, 0.9),
    )
    @settings(max_examples=50, deadline=None)
    def test_invariants(self, h, w, rate):
        mask = make_scanline_perforation(h, w, rate)
        assert 1 <= mask.kept <= h * w
        positions = mask.positions()
        assert len(positions) == mask.kept
        assert len(np.unique(positions)) == mask.kept


class TestExecutorCompatibility:
    def test_forward_with_checkerboard(self, trained_small_net):
        """The executor consumes mask perforations through the same
        duck-typed interface as grids."""
        from repro.nn.inference import _conv_forward_perforated

        net, params, test = trained_small_net
        layer = net.conv_layers[0]
        mask = make_checkerboard_perforation(
            layer.output_shape.height, layer.output_shape.width
        )
        out = _conv_forward_perforated(
            layer, params[layer.name], test.images[:4], mask
        )
        assert out.shape == (4,) + layer.output_shape.as_tuple()
        assert np.isfinite(out).all()

    def test_checkerboard_beats_grid_at_half_rate(self, trained_small_net):
        """PerforatedCNNs' observation: at the same 50% reduction, the
        checkerboard's adjacent-neighbour interpolation preserves
        accuracy at least as well as the coarser separable grid."""
        from repro.nn.inference import forward

        net, params, test = trained_small_net
        layer = net.conv_layers[0]
        h, w = layer.output_shape.height, layer.output_shape.width

        class _FixedPlan:
            def __init__(self, perforation):
                self.perforation = perforation

            def grid_for(self, name, out_h, out_w):
                if name == layer.name:
                    return self.perforation
                return None

            def rate(self, name):
                return 0.5 if name == layer.name else 0.0

        checker = _FixedPlan(make_checkerboard_perforation(h, w))
        grid = _FixedPlan(make_grid_perforation(h, w, 0.5))

        def accuracy(plan):
            probs = forward(net, params, test.images, plan)
            return float((probs.argmax(axis=1) == test.labels).mean())

        assert accuracy(checker) >= accuracy(grid) - 0.03
