"""Tests for repro.nn.entropy: Eq. 2 and its use as an accuracy proxy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.entropy import entropy, max_entropy, mean_entropy, normalized_entropy


class TestEntropy:
    def test_one_hot_is_zero(self):
        assert entropy(np.array([1.0, 0.0, 0.0])) == pytest.approx(0.0)

    def test_uniform_is_log_k(self):
        k = 8
        probs = np.full(k, 1.0 / k)
        assert entropy(probs) == pytest.approx(np.log(k))

    def test_paper_example_ordering(self):
        """Section II.B: H(0.4, 0.4, 0.2) > H(0.7, 0.2, 0.1)."""
        confused = entropy(np.array([0.4, 0.4, 0.2]))
        confident = entropy(np.array([0.7, 0.2, 0.1]))
        assert confused > confident

    def test_batched(self):
        batch = np.array([[1.0, 0.0], [0.5, 0.5]])
        values = entropy(batch)
        assert values.shape == (2,)
        assert values[0] == pytest.approx(0.0)
        assert values[1] == pytest.approx(np.log(2))

    def test_rejects_negative_probabilities(self):
        with pytest.raises(ValueError):
            entropy(np.array([1.2, -0.2]))

    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError, match="sum"):
            entropy(np.array([0.5, 0.2]))

    def test_rejects_scalar(self):
        with pytest.raises(ValueError):
            entropy(np.float64(1.0))

    @given(
        logits=st.lists(st.floats(-8, 8), min_size=2, max_size=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, logits):
        z = np.array(logits)
        p = np.exp(z - z.max())
        p /= p.sum()
        h = entropy(p)
        assert -1e-9 <= h <= np.log(len(logits)) + 1e-9


class TestAggregates:
    def test_mean_entropy(self):
        batch = np.array([[1.0, 0.0], [0.5, 0.5]])
        assert mean_entropy(batch) == pytest.approx(np.log(2) / 2)

    def test_max_entropy(self):
        assert max_entropy(8) == pytest.approx(np.log(8))
        with pytest.raises(ValueError):
            max_entropy(0)

    def test_normalized_entropy(self):
        uniform = np.full(5, 0.2)
        assert normalized_entropy(uniform) == pytest.approx(1.0)
        one_hot = np.array([1.0, 0, 0, 0, 0])
        assert normalized_entropy(one_hot) == pytest.approx(0.0)

    def test_normalized_single_class(self):
        assert normalized_entropy(np.array([[1.0]]))[0] == 0.0
