"""Tests for repro.nn.models: the paper networks are shape-exact."""

import pytest

from repro.nn.layers import TensorShape
from repro.nn.models import (
    PCNN_NET_SIZES,
    NetworkDescriptor,
    alexnet,
    get_network,
    googlenet,
    pcnn_net,
    vgg16,
)


class TestAlexNet:
    @pytest.fixture(scope="class")
    def net(self):
        return alexnet()

    def test_published_parameter_count(self, net):
        """AlexNet has ~61M parameters."""
        assert net.total_weights() == pytest.approx(61e6, rel=0.02)

    def test_published_flops(self, net):
        """~1.45 GFLOPs per image (2 per MAC)."""
        assert net.total_flops() == pytest.approx(1.45e9, rel=0.05)

    def test_five_convs(self, net):
        assert [layer.name for layer in net.conv_layers] == [
            "conv1",
            "conv2",
            "conv3",
            "conv4",
            "conv5",
        ]

    def test_conv_output_sizes(self, net):
        assert net.layer("conv1").output_shape.as_tuple() == (96, 55, 55)
        assert net.layer("conv2").output_shape.as_tuple() == (256, 27, 27)
        assert net.layer("conv5").output_shape.as_tuple() == (256, 13, 13)

    def test_table_iv_gemm_shapes(self, net):
        conv2 = net.gemm_shape(net.layer("conv2"), batch=1)
        assert (conv2.m_rows, conv2.n_cols) == (128, 729)
        conv5 = net.gemm_shape(net.layer("conv5"), batch=1)
        assert (conv5.m_rows, conv5.n_cols) == (128, 169)

    def test_grouped_layers_launch_two_gemms(self, net):
        assert net.gemm_count(net.layer("conv2")) == 2
        assert net.gemm_count(net.layer("conv1")) == 1

    def test_batch_folds_into_columns(self, net):
        conv2 = net.gemm_shape(net.layer("conv2"), batch=4)
        assert conv2.n_cols == 729 * 4

    def test_classifier_width(self, net):
        assert net.n_classes == 1000


class TestVGG16:
    @pytest.fixture(scope="class")
    def net(self):
        return vgg16()

    def test_published_parameter_count(self, net):
        assert net.total_weights() == pytest.approx(138e6, rel=0.02)

    def test_section_i_headline_flops(self, net):
        """The paper's 1.5e10 multiplications = 3.1e10 FLOPs."""
        assert net.total_flops() == pytest.approx(3.1e10, rel=0.05)

    def test_thirteen_convs(self, net):
        assert len(net.conv_layers) == 13

    def test_block_output_sizes(self, net):
        assert net.layer("conv1_2").output_shape.as_tuple() == (64, 224, 224)
        assert net.layer("conv5_3").output_shape.as_tuple() == (512, 14, 14)


class TestGoogLeNet:
    @pytest.fixture(scope="class")
    def net(self):
        return googlenet()

    def test_fifty_seven_convs(self, net):
        assert len(net.conv_layers) == 57

    def test_published_parameter_count(self, net):
        """GoogLeNet is famously small: ~7M parameters."""
        assert net.total_weights() == pytest.approx(7e6, rel=0.1)

    def test_published_flops(self, net):
        """~3.2 GFLOPs per image."""
        assert net.total_flops() == pytest.approx(3.2e9, rel=0.1)

    def test_inception_concat_channels(self, net):
        """inception_3a output = 64 + 128 + 32 + 32 = 256 channels,
        feeding 3b's 1x1 branch."""
        branch = net.layer("inception_3b/1x1")
        assert branch.input_shape.channels == 256

    def test_final_pool_is_global_average(self, net):
        pool = net.layer("pool5/7x7_s1")
        assert pool.output_shape.as_tuple() == (1024, 1, 1)

    def test_classifier(self, net):
        assert net.layer("loss3/classifier").output_shape.channels == 1000


class TestPcnnNets:
    def test_capacity_ordering(self):
        weights = [pcnn_net(s).total_weights() for s in PCNN_NET_SIZES]
        assert weights == sorted(weights)

    def test_all_linear_chains_trainable_shapes(self):
        for size in PCNN_NET_SIZES:
            net = pcnn_net(size)
            assert net.n_classes == 8
            for layer in net.conv_layers:
                assert layer.spec.groups == 1

    def test_rejects_unknown_size(self):
        with pytest.raises(ValueError):
            pcnn_net("xl")


class TestDescriptorAPI:
    def test_layer_lookup_error(self):
        with pytest.raises(KeyError, match="conv99"):
            alexnet().layer("conv99")

    def test_gemm_shape_rejects_non_conv(self):
        net = alexnet()
        with pytest.raises(ValueError):
            net.gemm_shape(net.layer("pool1"))

    def test_describe_lists_layers(self):
        text = alexnet().describe()
        assert "conv5" in text and "fc8" in text

    def test_get_network(self):
        assert get_network("AlexNet").name == "AlexNet"
        assert get_network("vgg").name == "VGGNet"
        assert get_network("pcnn-small").name == "PcnnNet-small"
        with pytest.raises(KeyError):
            get_network("lenet")

    def test_chain_resolution(self):
        net = NetworkDescriptor(
            "tiny",
            TensorShape(1, 8, 8),
            [],
        )
        assert net.output_shape == net.input_shape
