"""Tests for the ResNet-18 descriptor (post-paper generality)."""

import pytest

from repro.core.offline import OfflineCompiler
from repro.gpu import JETSON_TX1
from repro.nn.models import get_network, resnet18


@pytest.fixture(scope="module")
def net():
    return resnet18()


class TestResNet18Shapes:
    def test_published_parameter_count(self, net):
        """ResNet-18 has 11.7M parameters."""
        assert net.total_weights() == pytest.approx(11.7e6, rel=0.02)

    def test_published_flops(self, net):
        """~3.6 GFLOPs per 224x224 image."""
        assert net.total_flops() == pytest.approx(3.6e9, rel=0.05)

    def test_twenty_convs(self, net):
        """16 block convs + conv1 + 3 projection shortcuts."""
        assert len(net.conv_layers) == 20
        downsamples = [layer for layer in net.conv_layers if "downsample" in layer.name]
        assert len(downsamples) == 3

    def test_stage_spatial_halving(self, net):
        assert net.layer("layer1.1.conv2").output_shape.as_tuple() == (
            64, 56, 56,
        )
        assert net.layer("layer2.1.conv1").output_shape.as_tuple() == (
            128, 28, 28,
        )
        assert net.layer("layer4.2.conv2").output_shape.as_tuple() == (
            512, 7, 7,
        )

    def test_downsample_reads_block_input(self, net):
        down = net.layer("layer2.1.downsample")
        assert down.input_shape.as_tuple() == (64, 56, 56)
        assert down.output_shape.as_tuple() == (128, 28, 28)

    def test_classifier(self, net):
        assert net.n_classes == 1000

    def test_registry_aliases(self):
        assert get_network("resnet18").name == "ResNet18"
        assert get_network("ResNet-18").name == "ResNet18"


class TestResNet18Compilation:
    def test_compiles_on_mobile(self, net):
        plan = OfflineCompiler(JETSON_TX1).compile_with_batch(net, 1)
        assert len(plan.schedules) == 21  # 20 convs + fc
        assert plan.total_time_s > 0

    def test_memory_profile(self, net):
        profile = net.memory_profile()
        assert profile.n_conv_layers == 20
        assert profile.weights_bytes == pytest.approx(4 * 11.7e6, rel=0.02)
