"""Tests for repro.nn.layers: shape arithmetic and Eq. 1."""

import pytest

from repro.nn.layers import (
    ConvSpec,
    DenseSpec,
    PoolSpec,
    SoftmaxSpec,
    TensorShape,
    conv_output_hw,
)


class TestTensorShape:
    def test_elements_and_spatial(self):
        shape = TensorShape(3, 4, 5)
        assert shape.elements == 60
        assert shape.spatial == 20
        assert shape.as_tuple() == (3, 4, 5)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TensorShape(0, 1, 1)


class TestConvOutputHW:
    def test_alexnet_conv1(self):
        # 227x227, 11x11 stride 4 -> 55x55.
        assert conv_output_hw(227, 227, 11, 4, 0) == (55, 55)

    def test_same_padding(self):
        assert conv_output_hw(24, 24, 3, 1, 1) == (24, 24)

    def test_rejects_oversized_window(self):
        with pytest.raises(ValueError):
            conv_output_hw(4, 4, 7, 1, 0)


class TestConvSpec:
    def test_alexnet_conv2_shapes(self):
        """AlexNet conv2: 27x27 input, 5x5 pad 2, 256 filters in 2
        groups -> 27x27x256 output; per-group GEMM is 128 x 1200 x 729."""
        spec = ConvSpec("conv2", 256, 5, padding=2, groups=2)
        in_shape = TensorShape(96, 27, 27)
        out = spec.output_shape(in_shape)
        assert out.as_tuple() == (256, 27, 27)
        m, k, n = spec.gemm_dims_per_group(in_shape)
        assert (m, k, n) == (128, 25 * 48, 729)

    def test_eq1_flops(self):
        spec = ConvSpec("c", out_channels=8, kernel_size=3, padding=1)
        in_shape = TensorShape(4, 10, 10)
        # 2 * 8 * 9 * 4 * 100
        assert spec.flops(in_shape) == 2 * 8 * 9 * 4 * 100

    def test_grouped_flops_halve(self):
        dense = ConvSpec("d", 8, 3, padding=1)
        grouped = ConvSpec("g", 8, 3, padding=1, groups=2)
        in_shape = TensorShape(4, 10, 10)
        assert grouped.flops(in_shape) == dense.flops(in_shape) / 2

    def test_weight_count(self):
        spec = ConvSpec("c", 8, 3)
        assert spec.weight_count(TensorShape(4, 10, 10)) == 8 * 9 * 4 + 8

    def test_im2col_bytes(self):
        spec = ConvSpec("c", 8, 3, padding=1)
        assert spec.im2col_bytes(TensorShape(4, 10, 10)) == 4 * 9 * 4 * 100

    def test_rejects_group_mismatch(self):
        with pytest.raises(ValueError):
            ConvSpec("c", 9, 3, groups=2)
        spec = ConvSpec("c", 8, 3, groups=2)
        with pytest.raises(ValueError, match="groups"):
            spec.output_shape(TensorShape(3, 10, 10))

    def test_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            ConvSpec("c", 8, 3, activation="gelu")


class TestPoolSpec:
    def test_alexnet_pool(self):
        # 55x55 pooled 3/2 -> 27x27, channels preserved.
        spec = PoolSpec("p", kernel_size=3, stride=2)
        out = spec.output_shape(TensorShape(96, 55, 55))
        assert out.as_tuple() == (96, 27, 27)

    def test_no_weights(self):
        assert PoolSpec("p", 2, 2).weight_count(TensorShape(1, 4, 4)) == 0

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            PoolSpec("p", 2, 2, mode="median")

    def test_flops_minor(self):
        conv = ConvSpec("c", 64, 3, padding=1)
        pool = PoolSpec("p", 2, 2)
        shape = TensorShape(64, 24, 24)
        assert pool.flops(shape) < 0.02 * conv.flops(shape)


class TestDenseSpec:
    def test_shapes_and_weights(self):
        spec = DenseSpec("fc", units=10)
        in_shape = TensorShape(4, 3, 3)
        assert spec.output_shape(in_shape).as_tuple() == (10, 1, 1)
        assert spec.weight_count(in_shape) == 36 * 10 + 10

    def test_flops(self):
        spec = DenseSpec("fc", units=10)
        assert spec.flops(TensorShape(4, 3, 3)) == 2 * 36 * 10

    def test_rejects_zero_units(self):
        with pytest.raises(ValueError):
            DenseSpec("fc", units=0)


class TestSoftmaxSpec:
    def test_passthrough(self):
        spec = SoftmaxSpec()
        shape = TensorShape(10, 1, 1)
        assert spec.output_shape(shape) == shape
        assert spec.weight_count(shape) == 0
        assert spec.flops(shape) > 0
