"""Tests for repro.nn.perforation: sampled grids and interpolation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.perforation import (
    RATE_LADDER,
    PerforationPlan,
    make_grid_perforation,
)


class TestGridConstruction:
    def test_zero_rate_keeps_everything(self):
        grid = make_grid_perforation(10, 12, 0.0)
        assert grid.kept == grid.total == 120
        assert grid.rate == 0.0

    def test_realized_rate_near_nominal(self):
        for rate in (0.1, 0.3, 0.5, 0.7):
            grid = make_grid_perforation(27, 27, rate)
            assert grid.rate == pytest.approx(rate, abs=0.12)

    def test_rows_cols_sorted_unique(self):
        grid = make_grid_perforation(20, 20, 0.6)
        assert np.all(np.diff(grid.rows) > 0)
        assert np.all(np.diff(grid.cols) > 0)

    def test_positions_are_row_major_grid(self):
        grid = make_grid_perforation(6, 6, 0.5)
        positions = grid.positions()
        assert len(positions) == grid.kept
        assert positions.max() < 36
        assert len(np.unique(positions)) == len(positions)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            make_grid_perforation(10, 10, 1.0)
        with pytest.raises(ValueError):
            make_grid_perforation(10, 10, -0.1)

    @given(
        h=st.integers(2, 40), w=st.integers(2, 40),
        rate=st.floats(0.0, 0.85),
    )
    @settings(max_examples=80, deadline=None)
    def test_invariants(self, h, w, rate):
        grid = make_grid_perforation(h, w, rate)
        assert 1 <= grid.kept <= grid.total
        assert 0.0 <= grid.rate < 1.0
        assert grid.rows.max() < h and grid.cols.max() < w
        # fill maps index into the sampled arrays
        assert grid.row_map.max() < len(grid.rows)
        assert grid.col_map.max() < len(grid.cols)


class TestInterpolation:
    def test_sampled_positions_exact(self):
        """Fig. 11: sampled outputs are preserved verbatim."""
        grid = make_grid_perforation(9, 9, 0.5)
        rng = np.random.default_rng(0)
        sampled = rng.normal(size=(2, 4, grid.kept))
        dense = grid.interpolate(sampled)
        assert dense.shape == (2, 4, 9, 9)
        block = sampled.reshape(2, 4, len(grid.rows), len(grid.cols))
        for ri, r in enumerate(grid.rows):
            for ci, c in enumerate(grid.cols):
                np.testing.assert_allclose(dense[..., r, c], block[..., ri, ci])

    def test_fills_from_nearest_neighbour(self):
        grid = make_grid_perforation(5, 5, 0.6)
        # mark each sampled point with a unique value
        sampled = np.arange(grid.kept, dtype=float).reshape(1, -1)
        dense = grid.interpolate(sampled)
        # every dense value must be one of the sampled values
        assert set(np.unique(dense)) <= set(range(grid.kept))

    def test_zero_rate_identity(self):
        grid = make_grid_perforation(4, 4, 0.0)
        values = np.arange(16, dtype=float).reshape(1, 16)
        np.testing.assert_array_equal(
            grid.interpolate(values).reshape(16), np.arange(16)
        )

    @given(h=st.integers(3, 20), rate=st.floats(0.0, 0.8))
    @settings(max_examples=40, deadline=None)
    def test_interpolation_preserves_range(self, h, rate):
        grid = make_grid_perforation(h, h, rate)
        rng = np.random.default_rng(42)
        sampled = rng.normal(size=(grid.kept,))
        dense = grid.interpolate(sampled)
        assert dense.min() >= sampled.min() - 1e-12
        assert dense.max() <= sampled.max() + 1e-12


class TestPerforationPlan:
    def test_dense_plan(self):
        plan = PerforationPlan.dense()
        assert plan.is_dense()
        assert plan.rate("anything") == 0.0
        assert plan.grid_for("x", 8, 8) is None
        assert plan.describe() == "dense"

    def test_with_rate_is_immutable(self):
        base = PerforationPlan.dense()
        derived = base.with_rate("conv1", 0.3)
        assert base.is_dense()
        assert derived.rate("conv1") == 0.3

    def test_with_rate_zero_removes(self):
        plan = PerforationPlan({"conv1": 0.3}).with_rate("conv1", 0.0)
        assert plan.is_dense()

    def test_column_fraction_uses_realized_grid(self):
        plan = PerforationPlan({"conv1": 0.5})
        fraction = plan.column_fraction("conv1", 27, 27)
        grid = make_grid_perforation(27, 27, 0.5)
        assert fraction == pytest.approx(grid.kept / grid.total)

    def test_column_fraction_dense(self):
        assert PerforationPlan.dense().column_fraction("c", 27, 27) == 1.0

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PerforationPlan({"conv1": 1.5})

    def test_describe_lists_rates(self):
        text = PerforationPlan({"conv2": 0.25, "conv1": 0.1}).describe()
        assert "conv1:0.10" in text and "conv2:0.25" in text

    def test_rate_ladder_properties(self):
        assert RATE_LADDER[0] == 0.0
        assert list(RATE_LADDER) == sorted(RATE_LADDER)
        assert all(0.0 <= r < 1.0 for r in RATE_LADDER)
