"""Tests for repro.nn.datasets: the synthetic spatially-redundant task."""

import numpy as np
import pytest

from repro.nn.datasets import Dataset, make_dataset, train_test_split


class TestMakeDataset:
    def test_deterministic(self):
        a = make_dataset(50, seed=7)
        b = make_dataset(50, seed=7)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_seed_changes_data(self):
        a = make_dataset(50, seed=7)
        b = make_dataset(50, seed=8)
        assert not np.array_equal(a.images, b.images)

    def test_shapes_and_range(self):
        data = make_dataset(24, n_classes=6, image_size=16, channels=3)
        assert data.images.shape == (24, 3, 16, 16)
        assert data.images.dtype == np.float32
        assert data.images.min() >= 0.0 and data.images.max() <= 1.0
        assert data.n_classes == 6

    def test_balanced_classes(self):
        data = make_dataset(80, n_classes=8)
        counts = np.bincount(data.labels)
        assert np.all(counts == 10)

    def test_spatial_redundancy(self):
        """The premise of perforation: neighbouring pixels correlate."""
        data = make_dataset(32, noise=0.1, seed=3)
        x = data.images
        horizontal = np.mean(
            [np.corrcoef(img[0, :, :-1].ravel(), img[0, :, 1:].ravel())[0, 1]
             for img in x]
        )
        assert horizontal > 0.5

    def test_classes_distinguishable(self):
        """Class means must differ (else nothing is learnable)."""
        data = make_dataset(160, noise=0.3, seed=1)
        means = np.stack(
            [data.images[data.labels == c].mean(axis=0) for c in range(8)]
        )
        deltas = means - means.mean(axis=0)
        spread = np.sqrt((deltas**2).sum(axis=(1, 2, 3)))
        assert np.all(spread > 0.3)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            make_dataset(0)
        with pytest.raises(ValueError):
            make_dataset(10, n_classes=1)


class TestDataset:
    def test_subset(self):
        data = make_dataset(20)
        sub = data.subset(np.array([0, 3, 5]))
        assert sub.n_samples == 3
        np.testing.assert_array_equal(sub.labels, data.labels[[0, 3, 5]])

    def test_validation(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 3, 4)), np.zeros(2, dtype=np.int64))
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 3, 4, 4)), np.zeros(3, dtype=np.int64))


class TestSplit:
    def test_partition(self):
        data = make_dataset(40)
        train, test = train_test_split(data, 0.25, seed=0)
        assert train.n_samples + test.n_samples == 40
        assert test.n_samples == 10

    def test_deterministic(self):
        data = make_dataset(40)
        t1 = train_test_split(data, 0.25, seed=5)[1]
        t2 = train_test_split(data, 0.25, seed=5)[1]
        np.testing.assert_array_equal(t1.images, t2.images)

    def test_disjoint(self):
        data = make_dataset(30)
        # tag images with unique values through labels check
        train, test = train_test_split(data, 0.3, seed=1)
        train_set = {img.tobytes() for img in train.images}
        test_set = {img.tobytes() for img in test.images}
        assert not train_set & test_set

    def test_rejects_bad_fraction(self):
        data = make_dataset(10)
        with pytest.raises(ValueError):
            train_test_split(data, 0.0)
