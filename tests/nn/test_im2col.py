"""Tests for repro.nn.im2col: the Fig. 2 lowering and its adjoint."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.im2col import col2im, gather_indices, im2col, sampled_im2col


def naive_conv2d(x, weights, kernel_size, stride, padding):
    """Direct (slow) convolution reference: x (N,C,H,W),
    weights (F, C*k*k)."""
    n, c, h, w = x.shape
    padded = np.pad(
        x, ((0, 0), (0, 0), (padding, padding), (padding, padding))
    )
    out_h = (h + 2 * padding - kernel_size) // stride + 1
    out_w = (w + 2 * padding - kernel_size) // stride + 1
    f = weights.shape[0]
    out = np.zeros((n, f, out_h, out_w))
    for i in range(out_h):
        for j in range(out_w):
            patch = padded[
                :,
                :,
                i * stride : i * stride + kernel_size,
                j * stride : j * stride + kernel_size,
            ].reshape(n, -1)
            out[:, :, i, j] = patch @ weights.T
    return out


class TestIm2col:
    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        weights = rng.normal(size=(5, 3 * 9)).astype(np.float32)
        cols, (oh, ow) = im2col(x, kernel_size=3, stride=1, padding=1)
        gemm = np.einsum("fk,nkp->nfp", weights, cols).reshape(2, 5, oh, ow)
        reference = naive_conv2d(x, weights, 3, 1, 1)
        np.testing.assert_allclose(gemm, reference, rtol=1e-5, atol=1e-5)

    def test_strided(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 2, 9, 9)).astype(np.float32)
        weights = rng.normal(size=(4, 2 * 9)).astype(np.float32)
        cols, (oh, ow) = im2col(x, 3, stride=2, padding=0)
        assert (oh, ow) == (4, 4)
        gemm = np.einsum("fk,nkp->nfp", weights, cols).reshape(1, 4, oh, ow)
        np.testing.assert_allclose(
            gemm, naive_conv2d(x, weights, 3, 2, 0), rtol=1e-5, atol=1e-5
        )

    def test_column_matrix_dimensions(self):
        """D_m is (S_f^2 N_c) x (W_o H_o) per image (Fig. 2)."""
        x = np.zeros((3, 4, 10, 10), dtype=np.float32)
        cols, (oh, ow) = im2col(x, 5, 1, 2)
        assert cols.shape == (3, 4 * 25, 100)
        assert (oh, ow) == (10, 10)


class TestSampledIm2col:
    def test_subset_of_full(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 3, 7, 7)).astype(np.float32)
        full, (oh, ow) = im2col(x, 3, 1, 1)
        positions = np.array([0, 5, 17, 30, 48])
        sampled, _ = sampled_im2col(x, 3, 1, 1, positions)
        np.testing.assert_array_equal(sampled, full[:, :, positions])

    def test_rejects_out_of_range(self):
        x = np.zeros((1, 1, 5, 5), dtype=np.float32)
        with pytest.raises(ValueError, match="range"):
            sampled_im2col(x, 3, 1, 0, np.array([100]))

    def test_rejects_2d_positions(self):
        x = np.zeros((1, 1, 5, 5), dtype=np.float32)
        with pytest.raises(ValueError):
            sampled_im2col(x, 3, 1, 0, np.array([[0, 1]]))


class TestCol2im:
    def test_adjoint_property(self):
        """col2im is the transpose of im2col:
        <im2col(x), y> == <x, col2im(y)> for all x, y."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 3, 6, 6))
        cols, _ = im2col(x, 3, 2, 1)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * col2im(y, x.shape, 3, 2, 1)))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_overlap_accumulates(self):
        """Overlapping 3x3 stride-1 windows: interior pixels belong to
        9 windows, so scattering ones yields 9 there."""
        x_shape = (1, 1, 5, 5)
        cols = np.ones((1, 9, 9))  # 3x3 output grid, no padding
        back = col2im(cols, x_shape, 3, 1, 0)
        assert back[0, 0, 2, 2] == 9
        assert back[0, 0, 0, 0] == 1

    @given(
        h=st.integers(5, 10),
        k=st.sampled_from([2, 3]),
        stride=st.sampled_from([1, 2]),
        padding=st.sampled_from([0, 1]),
    )
    @settings(max_examples=25, deadline=None)
    def test_adjoint_property_random_geometry(self, h, k, stride, padding):
        rng = np.random.default_rng(h * 31 + k)
        x = rng.normal(size=(1, 2, h, h))
        cols, _ = im2col(x, k, stride, padding)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * col2im(y, x.shape, k, stride, padding)))
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)


class TestGatherIndices:
    def test_index_shapes(self):
        c_idx, i_idx, j_idx, out_hw = gather_indices(3, 8, 8, 3, 1, 1)
        assert out_hw == (8, 8)
        assert c_idx.shape == i_idx.shape == j_idx.shape == (27, 64)

    def test_indices_within_padded_bounds(self):
        _c, i_idx, j_idx, _ = gather_indices(2, 6, 6, 3, 2, 1)
        assert i_idx.min() >= 0 and i_idx.max() < 6 + 2
        assert j_idx.min() >= 0 and j_idx.max() < 6 + 2
