"""Tests for repro.nn.training: gradients, convergence, evaluation."""

import numpy as np
import pytest

from repro.nn.inference import init_parameters
from repro.nn.layers import ConvSpec, DenseSpec, PoolSpec, SoftmaxSpec, TensorShape
from repro.nn.models import NetworkDescriptor, pcnn_net
from repro.nn.perforation import PerforationPlan
from repro.nn.training import (
    _backward,
    _forward_with_cache,
    cross_entropy_loss,
    evaluate,
    train,
)


class TestLoss:
    def test_perfect_prediction_zero_loss(self):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]])
        labels = np.array([0, 1])
        assert cross_entropy_loss(probs, labels) == pytest.approx(0.0, abs=1e-9)

    def test_uniform_loss_is_log_k(self):
        probs = np.full((3, 4), 0.25)
        labels = np.array([0, 1, 2])
        assert cross_entropy_loss(probs, labels) == pytest.approx(np.log(4))


class TestGradients:
    """Numeric gradient check on a tiny network (the definitive
    correctness test for the whole backward pass)."""

    def _tiny_net(self):
        return NetworkDescriptor(
            "tiny",
            TensorShape(2, 6, 6),
            [
                ConvSpec("conv1", 3, 3, padding=1, activation="leaky"),
                PoolSpec("pool1", 2, 2),
                DenseSpec("fc", 4, activation="none"),
                SoftmaxSpec(),
            ],
        )

    def test_numeric_gradient_check(self):
        net = self._tiny_net()
        rng = np.random.default_rng(0)
        params = init_parameters(net, rng)
        x = rng.random((3, 2, 6, 6)).astype(np.float64)
        y = np.array([0, 1, 2])

        probs, caches = _forward_with_cache(net, params, x)
        grads = _backward(net, params, caches, probs, y)

        eps = 1e-3
        for layer_name in ("conv1", "fc"):
            weights = params[layer_name]["W"]
            analytic = grads[layer_name]["W"]
            rng_idx = np.random.default_rng(1)
            flat_indices = rng_idx.choice(weights.size, size=6, replace=False)
            for flat in flat_indices:
                idx = np.unravel_index(flat, weights.shape)
                original = weights[idx]
                weights[idx] = original + eps
                loss_plus = cross_entropy_loss(
                    _forward_with_cache(net, params, x)[0], y
                )
                weights[idx] = original - eps
                loss_minus = cross_entropy_loss(
                    _forward_with_cache(net, params, x)[0], y
                )
                weights[idx] = original
                numeric = (loss_plus - loss_minus) / (2 * eps)
                assert analytic[idx] == pytest.approx(numeric, rel=5e-2, abs=5e-4)

    def test_bias_gradient_check(self):
        net = self._tiny_net()
        rng = np.random.default_rng(2)
        params = init_parameters(net, rng)
        x = rng.random((2, 2, 6, 6)).astype(np.float64)
        y = np.array([1, 3])
        probs, caches = _forward_with_cache(net, params, x)
        grads = _backward(net, params, caches, probs, y)
        eps = 1e-3
        bias = params["fc"]["b"]
        original = bias[2]
        bias[2] = original + eps
        plus = cross_entropy_loss(_forward_with_cache(net, params, x)[0], y)
        bias[2] = original - eps
        minus = cross_entropy_loss(_forward_with_cache(net, params, x)[0], y)
        bias[2] = original
        assert grads["fc"]["b"][2] == pytest.approx(
            (plus - minus) / (2 * eps), rel=5e-2, abs=5e-4
        )

    def test_grouped_conv_rejected(self):
        net = NetworkDescriptor(
            "g",
            TensorShape(2, 4, 4),
            [ConvSpec("c", 4, 3, padding=1, groups=2), SoftmaxSpec()],
        )
        params = init_parameters(net, np.random.default_rng(0))
        with pytest.raises(NotImplementedError):
            _forward_with_cache(net, params, np.zeros((1, 2, 4, 4), np.float32))


class TestTrainingLoop:
    def test_loss_decreases(self, split_dataset):
        train_set, _ = split_dataset
        net = pcnn_net("small")
        result = train(net, train_set, epochs=4, seed=0)
        assert result.loss_history[-1] < result.loss_history[0]

    def test_beats_chance(self, trained_small_net):
        net, params, test_set = trained_small_net
        result = evaluate(net, params, test_set)
        assert result.accuracy > 2.5 / 8  # well above 1/8 chance

    def test_deterministic(self, split_dataset):
        train_set, _ = split_dataset
        net = pcnn_net("small")
        a = train(net, train_set, epochs=2, seed=9)
        b = train(net, train_set, epochs=2, seed=9)
        np.testing.assert_array_equal(
            a.params["conv1"]["W"], b.params["conv1"]["W"]
        )

    def test_rejects_zero_epochs(self, split_dataset):
        with pytest.raises(ValueError):
            train(pcnn_net("small"), split_dataset[0], epochs=0)


class TestEvaluate:
    def test_counts_samples(self, trained_small_net):
        net, params, test_set = trained_small_net
        result = evaluate(net, params, test_set)
        assert result.n_samples == test_set.n_samples

    def test_heavy_perforation_hurts(self, trained_small_net):
        """The accuracy-tuning premise: perforation trades accuracy
        (down) for entropy (up), smoothly."""
        net, params, test_set = trained_small_net
        dense = evaluate(net, params, test_set)
        heavy = evaluate(
            net,
            params,
            test_set,
            PerforationPlan({layer.name: 0.7 for layer in net.conv_layers}),
        )
        assert heavy.accuracy <= dense.accuracy + 0.02
        assert heavy.mean_entropy >= dense.mean_entropy - 0.05

    def test_entropy_monotone_along_ladder(self, trained_small_net):
        net, params, test_set = trained_small_net
        entropies = []
        for rate in (0.0, 0.4, 0.7):
            plan = PerforationPlan(
                {layer.name: rate for layer in net.conv_layers} if rate else {}
            )
            entropies.append(evaluate(net, params, test_set, plan).mean_entropy)
        assert entropies[0] <= entropies[-1] + 0.05
