"""Tests for repro.nn.inference: the numpy forward executor."""

import numpy as np
import pytest

from repro.nn.inference import (
    NetworkParameters,
    forward,
    init_parameters,
    predict,
    softmax,
)
from repro.nn.layers import ConvSpec, DenseSpec, PoolSpec, SoftmaxSpec, TensorShape
from repro.nn.models import NetworkDescriptor, pcnn_net
from repro.nn.perforation import PerforationPlan


@pytest.fixture
def tiny_net():
    return pcnn_net("small")


@pytest.fixture
def tiny_params(tiny_net):
    return init_parameters(tiny_net, np.random.default_rng(0))


@pytest.fixture
def batch(tiny_net):
    rng = np.random.default_rng(1)
    return rng.random((4,) + tiny_net.input_shape.as_tuple()).astype(np.float32)


class TestSoftmax:
    def test_sums_to_one(self):
        logits = np.random.default_rng(0).normal(size=(5, 8))
        probs = softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-6)

    def test_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)


class TestForward:
    def test_output_is_distribution(self, tiny_net, tiny_params, batch):
        probs = forward(tiny_net, tiny_params, batch)
        assert probs.shape == (4, 8)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-5)
        assert (probs >= 0).all()

    def test_rejects_wrong_input_shape(self, tiny_net, tiny_params):
        with pytest.raises(ValueError, match="input shape"):
            forward(tiny_net, tiny_params, np.zeros((1, 3, 10, 10), np.float32))

    def test_rejects_non_batched(self, tiny_net, tiny_params):
        with pytest.raises(ValueError, match="NCHW"):
            forward(tiny_net, tiny_params, np.zeros((3, 24, 24), np.float32))

    def test_deterministic(self, tiny_net, tiny_params, batch):
        a = forward(tiny_net, tiny_params, batch)
        b = forward(tiny_net, tiny_params, batch)
        np.testing.assert_array_equal(a, b)

    def test_predict_argmax(self, tiny_net, tiny_params, batch):
        probs = forward(tiny_net, tiny_params, batch)
        np.testing.assert_array_equal(
            predict(tiny_net, tiny_params, batch), probs.argmax(axis=1)
        )

    def test_missing_parameters_raise(self, tiny_net, batch):
        with pytest.raises(KeyError, match="conv1"):
            forward(tiny_net, NetworkParameters(), batch)


class TestPerforatedForward:
    def test_mild_perforation_close_to_dense(self, tiny_net, tiny_params, batch):
        """Spatially smooth inputs: low-rate perforation barely moves
        the output distribution."""
        smooth = np.ones_like(batch) * np.linspace(0, 1, batch.shape[-1])
        dense = forward(tiny_net, tiny_params, smooth)
        plan = PerforationPlan({"conv1": 0.2})
        perforated = forward(tiny_net, tiny_params, smooth, plan)
        assert np.abs(dense - perforated).max() < 0.2

    def test_perforation_changes_output(self, tiny_net, tiny_params, batch):
        dense = forward(tiny_net, tiny_params, batch)
        plan = PerforationPlan({"conv1": 0.6})
        perforated = forward(tiny_net, tiny_params, batch, plan)
        assert not np.allclose(dense, perforated)

    def test_unknown_layer_in_plan_ignored(self, tiny_net, tiny_params, batch):
        plan = PerforationPlan({"conv99": 0.5})
        dense = forward(tiny_net, tiny_params, batch)
        same = forward(tiny_net, tiny_params, batch, plan)
        np.testing.assert_allclose(dense, same, rtol=1e-6)

    def test_perforated_still_distribution(self, tiny_net, tiny_params, batch):
        plan = PerforationPlan({"conv1": 0.5})
        probs = forward(tiny_net, tiny_params, batch, plan)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-5)


class TestGroupedConv:
    def test_grouped_matches_manual_split(self):
        """A 2-group conv equals two half-channel convs concatenated."""
        spec_g = ConvSpec("conv", 8, 3, padding=1, groups=2, activation="none")
        net = NetworkDescriptor(
            "g", TensorShape(4, 6, 6), [spec_g, SoftmaxSpec()]
        )
        rng = np.random.default_rng(0)
        params = init_parameters(net, rng)
        x = rng.random((2, 4, 6, 6)).astype(np.float32)
        probs = forward(net, params, x)
        assert probs.shape == (2, 8 * 36)

        # manual: group 0 sees channels 0-1 with filters 0-3
        from repro.nn.im2col import im2col

        cols, _ = im2col(x[:, :2], 3, 1, 1)
        w = params["conv"]["W"][:4]
        manual_g0 = np.einsum("fk,nkp->nfp", w, cols) + params["conv"]["b"][
            :4
        ].reshape(1, -1, 1)
        # recompute the network's pre-softmax activations
        from repro.nn.inference import _conv_forward_dense

        full = _conv_forward_dense(net.layers[0], params["conv"], x)
        np.testing.assert_allclose(
            full[:, :4].reshape(2, 4, -1), manual_g0, rtol=1e-5, atol=1e-6
        )


class TestParameters:
    def test_init_covers_all_parameterized_layers(self, tiny_net, tiny_params):
        assert set(tiny_params.layer_names()) == {"conv1", "fc"}

    def test_parameter_count_matches_descriptor(self, tiny_net, tiny_params):
        assert tiny_params.parameter_count() == tiny_net.total_weights()

    def test_copy_is_deep(self, tiny_params):
        clone = tiny_params.copy()
        clone["conv1"]["W"][:] = 0
        assert tiny_params["conv1"]["W"].any()

    def test_avg_pool_forward(self):
        net = NetworkDescriptor(
            "p",
            TensorShape(1, 4, 4),
            [PoolSpec("pool", 2, 2, mode="avg"), DenseSpec("fc", 2, activation="none"), SoftmaxSpec()],
        )
        params = init_parameters(net, np.random.default_rng(0))
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        probs = forward(net, params, x)
        assert probs.shape == (1, 2)
