"""Tests for repro.nn.persistence: parameter archives."""

import os

import numpy as np
import pytest

from repro.nn import load_parameters, pcnn_net, save_parameters
from repro.nn.inference import init_parameters


@pytest.fixture
def net_and_params():
    network = pcnn_net("small")
    params = init_parameters(network, np.random.default_rng(7))
    return network, params


class TestRoundTrip:
    def test_arrays_preserved(self, net_and_params, tmp_path):
        network, params = net_and_params
        path = str(tmp_path / "params.npz")
        save_parameters(params, path, network)
        restored = load_parameters(path, network)
        for name in params.layer_names():
            for key in params[name]:
                np.testing.assert_array_equal(
                    params[name][key], restored[name][key]
                )

    def test_roundtrip_without_descriptor(self, net_and_params, tmp_path):
        _network, params = net_and_params
        path = str(tmp_path / "anon.npz")
        save_parameters(params, path)
        restored = load_parameters(path)
        assert set(restored.layer_names()) == set(params.layer_names())

    def test_restored_params_drive_inference(self, net_and_params, tmp_path):
        from repro.nn.inference import forward

        network, params = net_and_params
        path = str(tmp_path / "params.npz")
        save_parameters(params, path, network)
        restored = load_parameters(path, network)
        x = np.random.default_rng(0).random(
            (2,) + network.input_shape.as_tuple()
        ).astype(np.float32)
        np.testing.assert_allclose(
            forward(network, params, x), forward(network, restored, x)
        )


class TestValidation:
    def test_wrong_network_name_rejected(self, net_and_params, tmp_path):
        network, params = net_and_params
        path = str(tmp_path / "params.npz")
        save_parameters(params, path, network)
        other = pcnn_net("medium")
        with pytest.raises(ValueError, match="PcnnNet-small"):
            load_parameters(path, other)

    def test_wrong_parameter_count_rejected(self, net_and_params, tmp_path):
        network, params = net_and_params
        path = str(tmp_path / "anon.npz")
        save_parameters(params, path)  # no name stored
        other = pcnn_net("large")
        with pytest.raises(ValueError, match="parameters"):
            load_parameters(path, other)

    def test_file_is_compressed_npz(self, net_and_params, tmp_path):
        network, params = net_and_params
        path = str(tmp_path / "params.npz")
        save_parameters(params, path, network)
        assert os.path.getsize(path) > 0
        with np.load(path) as archive:
            assert "__network__" in archive.files
