"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("platforms", "networks"):
            args = parser.parse_args([command])
            assert args.command == command


class TestInformational:
    def test_platforms_lists_table_ii(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        for name in ("K20c", "TitanX", "GTX970m", "TX1"):
            assert name in out

    def test_networks_lists_all(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        for name in ("alexnet", "googlenet", "vggnet", "resnet18", "pcnn-small"):
            assert name in out

    def test_describe(self, capsys):
        assert main(["describe", "--network", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "conv5" in out and "fc8" in out


class TestCompile:
    def test_compile_prints_schedule(self, capsys):
        code = main(
            ["compile", "--network", "alexnet", "--gpu", "tx1", "--batch", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "optSM" in out and "conv1" in out

    def test_compile_with_requirement(self, capsys):
        code = main(
            ["compile", "--network", "alexnet", "--gpu", "k20c",
             "--task", "interactive", "--rate", "50"]
        )
        assert code == 0
        assert "batch" in capsys.readouterr().out

    def test_compile_saves_artifact(self, tmp_path, capsys):
        path = str(tmp_path / "artifact.json")
        code = main(
            ["compile", "--network", "alexnet", "--gpu", "tx1",
             "--batch", "1", "--save", path]
        )
        assert code == 0
        with open(path) as handle:
            data = json.load(handle)
        assert data["network"] == "AlexNet"

    def test_unknown_gpu_is_a_clean_error(self, capsys):
        code = main(["compile", "--network", "alexnet", "--gpu", "voodoo"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_network_is_a_clean_error(self, capsys):
        code = main(["compile", "--network", "lenet", "--gpu", "tx1"])
        assert code == 2


class TestTune:
    def test_tune_prints_path(self, capsys):
        code = main(
            ["tune", "--network", "alexnet", "--gpu", "tx1",
             "--slack", "0.3", "--iterations", "6"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "dense" in out


class TestRoofline:
    def test_roofline_classifies_layers(self, capsys):
        code = main(
            ["roofline", "--network", "alexnet", "--gpu", "tx1",
             "--batch", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ridge" in out
        # batch-1 classifiers stream weights: memory-bound
        assert "memory" in out


class TestEvaluate:
    def test_single_gpu_matrix(self, capsys):
        code = main(["evaluate", "--gpus", "k20c"])
        assert code == 0
        out = capsys.readouterr().out
        for task in ("age-detection", "video-surveillance", "image-tagging"):
            assert task in out
        assert "p-cnn" in out and "ideal" in out


class TestCompare:
    def test_compare_runs_all_schedulers(self, capsys):
        code = main(
            ["compare", "--network", "alexnet", "--gpu", "tx1",
             "--task", "background", "--rate", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("performance-preferred", "qpe+", "p-cnn", "ideal"):
            assert name in out


class TestObservabilityExports:
    def _serve(self, tmp_path, extra):
        trace_path = tmp_path / "trace.json"
        chrome_path = tmp_path / "trace.chrome.json"
        metrics_path = tmp_path / "metrics.json"
        code = main(
            ["serve-fleet", "--gpus", "tx1", "--requests", "60",
             "--trace", str(trace_path),
             "--chrome-trace", str(chrome_path),
             "--metrics-out", str(metrics_path)] + extra
        )
        assert code == 0
        return trace_path, chrome_path, metrics_path

    def test_serve_fleet_writes_all_exports(self, tmp_path, capsys):
        trace_path, chrome_path, metrics_path = self._serve(tmp_path, [])
        spans = json.loads(trace_path.read_text())
        assert spans and any(s["name"] == "run" for s in spans)
        chrome = json.loads(chrome_path.read_text())
        assert chrome["traceEvents"]
        metrics = json.loads(metrics_path.read_text())
        assert any(k.startswith("requests_") for k in metrics)

    def test_serve_fleet_json_stdout_stays_parseable(self, tmp_path, capsys):
        self._serve(tmp_path, ["--json"])
        payload = json.loads(capsys.readouterr().out)
        assert "obs" in payload
        assert payload["obs"]["n_spans"] > 0

    def test_serve_fleet_exports_are_deterministic(self, tmp_path, capsys):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        first = self._serve(tmp_path / "a", [])
        second = self._serve(tmp_path / "b", [])
        for a, b in zip(first, second):
            assert a.read_text() == b.read_text()

    def test_trace_subcommand(self, tmp_path, capsys):
        prom_path = tmp_path / "metrics.prom"
        code = main(
            ["trace", "age-detection", "--gpus", "tx1", "--requests", "60",
             "--prometheus-out", str(prom_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "execute_batch" in out
        assert "trace fingerprint" in out
        text = prom_path.read_text()
        assert "# TYPE" in text and text.endswith("\n")

    def test_trace_with_chaos(self, capsys):
        code = main(
            ["trace", "video-surveillance", "--gpus", "tx1",
             "--requests", "60", "--chaos"]
        )
        assert code == 0
        assert "fault_episode" in capsys.readouterr().out

class TestServeFleetSharded:
    def test_sharded_json_payload(self, capsys):
        code = main(
            ["serve-fleet", "--gpus", "tx1", "--requests", "30",
             "--shards", "2", "--shard-inline", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        sharding = payload["sharding"]
        assert sharding["n_shards"] == 2
        assert len(sharding["seeds"]) == 2
        assert sharding["rehomed"] == 0
        assert sharding["dead_shards"] == []
        # Each shard gets its own interactive tenant at the full
        # request count (plus a background tenant's traffic).
        assert payload["summary"]["offered"] >= 2 * 30
        summary = payload["summary"]
        assert summary["completed"] + summary["rejected"] == summary["offered"]

    def test_sharded_human_output_lists_shards(self, capsys):
        code = main(
            ["serve-fleet", "--gpus", "tx1", "--requests", "30",
             "--shards", "2", "--shard-inline"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "s0" in out and "s1" in out


class TestServeFleetSupervised:
    _BASE = ["serve-fleet", "--gpus", "tx1", "--requests", "30",
             "--shard-inline", "--seed", "9"]

    def test_proc_chaos_json_reports_failures_and_statuses(self, capsys):
        code = main(
            self._BASE + ["--shards", "2", "--proc-chaos", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        sharding = payload["sharding"]
        assert sharding["statuses"] == ["retried", "retried"]
        assert sharding["escalated"] == []
        kinds = {failure["kind"] for failure in sharding["failures"]}
        assert kinds <= {"crashed", "timeout", "error", "integrity",
                         "witness"}
        assert kinds, "proc chaos at seed 11 must inject something"
        counters = sharding["supervision"]["counters"]
        assert counters["retries"] == len(sharding["failures"])
        assert counters["failed"] == 0
        summary = payload["summary"]
        assert summary["completed"] + summary["rejected"] == summary["offered"]

    def test_proc_chaos_fingerprint_matches_clean_run(self, capsys):
        assert main(self._BASE + ["--shards", "2", "--json"]) == 0
        clean = json.loads(capsys.readouterr().out)
        assert main(
            self._BASE + ["--shards", "2", "--proc-chaos", "--json"]
        ) == 0
        chaos = json.loads(capsys.readouterr().out)
        assert chaos["fingerprint"] == clean["fingerprint"]

    def test_status_column_in_table(self, capsys):
        code = main(self._BASE + ["--shards", "2", "--proc-chaos"])
        assert code == 0
        out = capsys.readouterr().out
        assert "status" in out
        assert "retried" in out

    def test_supervision_flags_route_single_shard_through_coordinator(
        self, capsys
    ):
        code = main(self._BASE + ["--shard-timeout-s", "120", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sharding"]["n_shards"] == 1
        assert payload["sharding"]["statuses"] == ["ok"]

    def test_resume_dir_round_trip(self, tmp_path, capsys):
        resume = str(tmp_path / "ckpt")
        args = self._BASE + ["--shards", "2", "--resume-dir", resume,
                             "--json"]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["sharding"]["statuses"] == ["ok", "ok"]
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["sharding"]["statuses"] == ["resumed", "resumed"]
        assert second["fingerprint"] == first["fingerprint"]


class TestServeFleetBackend:
    _BASE = ["serve-fleet", "--gpus", "tx1", "--requests", "40",
             "--seed", "3", "--json"]

    def test_backend_choices_registered(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve-fleet", "--backend", "vectorized"]
        )
        assert args.backend == "vectorized"
        assert parser.parse_args(["serve-fleet"]).backend == "reference"
        with pytest.raises(SystemExit):
            parser.parse_args(["serve-fleet", "--backend", "simd"])

    def test_backends_serve_identical_payloads(self, capsys):
        payloads = {}
        for backend in ("reference", "vectorized"):
            code = main(self._BASE + ["--backend", backend])
            assert code == 0
            payloads[backend] = json.loads(capsys.readouterr().out)
        ref = payloads["reference"]
        vec = payloads["vectorized"]
        assert vec["summary"] == ref["summary"]
        assert vec["platforms"] == ref["platforms"]

    def test_vectorized_refuses_controller(self, capsys):
        code = main(
            self._BASE
            + ["--backend", "vectorized", "--controller", "ewma"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "--backend reference" in err
