"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("platforms", "networks"):
            args = parser.parse_args([command])
            assert args.command == command


class TestInformational:
    def test_platforms_lists_table_ii(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        for name in ("K20c", "TitanX", "GTX970m", "TX1"):
            assert name in out

    def test_networks_lists_all(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        for name in ("alexnet", "googlenet", "vggnet", "resnet18", "pcnn-small"):
            assert name in out

    def test_describe(self, capsys):
        assert main(["describe", "--network", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "conv5" in out and "fc8" in out


class TestCompile:
    def test_compile_prints_schedule(self, capsys):
        code = main(
            ["compile", "--network", "alexnet", "--gpu", "tx1", "--batch", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "optSM" in out and "conv1" in out

    def test_compile_with_requirement(self, capsys):
        code = main(
            ["compile", "--network", "alexnet", "--gpu", "k20c",
             "--task", "interactive", "--rate", "50"]
        )
        assert code == 0
        assert "batch" in capsys.readouterr().out

    def test_compile_saves_artifact(self, tmp_path, capsys):
        path = str(tmp_path / "artifact.json")
        code = main(
            ["compile", "--network", "alexnet", "--gpu", "tx1",
             "--batch", "1", "--save", path]
        )
        assert code == 0
        with open(path) as handle:
            data = json.load(handle)
        assert data["network"] == "AlexNet"

    def test_unknown_gpu_is_a_clean_error(self, capsys):
        code = main(["compile", "--network", "alexnet", "--gpu", "voodoo"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_network_is_a_clean_error(self, capsys):
        code = main(["compile", "--network", "lenet", "--gpu", "tx1"])
        assert code == 2


class TestTune:
    def test_tune_prints_path(self, capsys):
        code = main(
            ["tune", "--network", "alexnet", "--gpu", "tx1",
             "--slack", "0.3", "--iterations", "6"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "dense" in out


class TestRoofline:
    def test_roofline_classifies_layers(self, capsys):
        code = main(
            ["roofline", "--network", "alexnet", "--gpu", "tx1",
             "--batch", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ridge" in out
        # batch-1 classifiers stream weights: memory-bound
        assert "memory" in out


class TestEvaluate:
    def test_single_gpu_matrix(self, capsys):
        code = main(["evaluate", "--gpus", "k20c"])
        assert code == 0
        out = capsys.readouterr().out
        for task in ("age-detection", "video-surveillance", "image-tagging"):
            assert task in out
        assert "p-cnn" in out and "ideal" in out


class TestCompare:
    def test_compare_runs_all_schedulers(self, capsys):
        code = main(
            ["compare", "--network", "alexnet", "--gpu", "tx1",
             "--task", "background", "--rate", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("performance-preferred", "qpe+", "p-cnn", "ideal"):
            assert name in out
