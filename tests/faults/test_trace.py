"""Fault events, traces, and seeded trace generation."""

import pytest

from repro.faults import (
    EPISODE_KINDS,
    FAULT_KINDS,
    FaultEvent,
    FaultTrace,
    FaultTraceConfig,
    generate_fault_trace,
)

PLATFORMS = ["K20c", "GTX970m", "TX1"]

FULL_CONFIG = FaultTraceConfig(
    outages=2,
    sm_failures=2,
    throttles=2,
    bandwidth_degradations=1,
    transients=3,
)


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(time_s=0.0, kind="meteor", platform="K20c")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time_s"):
            FaultEvent(time_s=-1.0, kind="outage", platform="K20c")

    def test_empty_platform_rejected(self):
        with pytest.raises(ValueError, match="platform"):
            FaultEvent(time_s=0.0, kind="outage", platform="")

    def test_severity_bounds(self):
        with pytest.raises(ValueError, match="sm_fail_fraction"):
            FaultEvent(
                time_s=0.0, kind="sm_fail", platform="K20c",
                sm_fail_fraction=1.0,
            )
        with pytest.raises(ValueError, match="relative_frequency"):
            FaultEvent(
                time_s=0.0, kind="throttle", platform="K20c",
                relative_frequency=0.0,
            )
        with pytest.raises(ValueError, match="bandwidth_scale"):
            FaultEvent(
                time_s=0.0, kind="bw_degrade", platform="K20c",
                bandwidth_scale=1.5,
            )

    def test_every_episode_kind_has_distinct_closer(self):
        closers = set(EPISODE_KINDS.values())
        assert len(closers) == len(EPISODE_KINDS)
        assert not closers & set(EPISODE_KINDS)
        assert "transient" in FAULT_KINDS


class TestFaultTrace:
    def test_events_sorted_regardless_of_construction_order(self):
        late = FaultEvent(time_s=2.0, kind="restore", platform="K20c")
        early = FaultEvent(time_s=1.0, kind="outage", platform="K20c")
        trace = FaultTrace([late, early])
        assert [e.time_s for e in trace] == [1.0, 2.0]

    def test_platforms_and_horizon(self):
        trace = FaultTrace([
            FaultEvent(time_s=3.0, kind="transient", platform="TX1"),
            FaultEvent(time_s=1.0, kind="outage", platform="K20c"),
        ])
        assert trace.platforms == ["K20c", "TX1"]
        assert trace.horizon_s == 3.0
        assert FaultTrace().horizon_s == 0.0

    def test_of_kind_filters_and_validates(self):
        trace = FaultTrace([
            FaultEvent(time_s=1.0, kind="outage", platform="K20c"),
            FaultEvent(time_s=2.0, kind="transient", platform="K20c"),
        ])
        assert [e.kind for e in trace.of_kind("transient")] == ["transient"]
        with pytest.raises(ValueError, match="unknown fault kind"):
            trace.of_kind("meteor")

    def test_merged_with_resorts(self):
        a = FaultTrace([FaultEvent(time_s=2.0, kind="transient", platform="a")])
        b = FaultTrace([FaultEvent(time_s=1.0, kind="transient", platform="b")])
        merged = a.merged_with(b)
        assert [e.platform for e in merged] == ["b", "a"]
        assert len(a) == 1  # immutability: originals untouched

    def test_fingerprint_distinguishes_traces(self):
        a = FaultTrace([FaultEvent(time_s=1.0, kind="outage", platform="a")])
        b = FaultTrace([FaultEvent(time_s=1.0, kind="outage", platform="b")])
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == FaultTrace(list(a)).fingerprint()


class TestFaultTraceConfig:
    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="outages"):
            FaultTraceConfig(outages=-1)

    def test_bad_duration_rejected(self):
        with pytest.raises(ValueError, match="outage_duration_s"):
            FaultTraceConfig(outage_duration_s=0.0)

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError, match="sm_fail_fraction"):
            FaultTraceConfig(sm_fail_fraction=0.0)
        with pytest.raises(ValueError, match="throttle_frequency"):
            FaultTraceConfig(throttle_frequency=1.0)
        with pytest.raises(ValueError, match="start_window"):
            FaultTraceConfig(start_window=0.0)

    def test_n_events_counts_episodes_twice(self):
        assert FULL_CONFIG.n_events == 2 * 7 + 3


class TestGenerateFaultTrace:
    def test_validates_inputs(self):
        with pytest.raises(ValueError, match="platform"):
            generate_fault_trace([], 10.0, FULL_CONFIG)
        with pytest.raises(ValueError, match="horizon_s"):
            generate_fault_trace(PLATFORMS, 0.0, FULL_CONFIG)

    def test_emits_configured_event_count(self):
        trace = generate_fault_trace(PLATFORMS, 10.0, FULL_CONFIG, seed=3)
        assert len(trace) == FULL_CONFIG.n_events

    def test_episodes_pair_up(self):
        trace = generate_fault_trace(PLATFORMS, 10.0, FULL_CONFIG, seed=3)
        for opener, closer in EPISODE_KINDS.items():
            opens = trace.of_kind(opener)
            closes = {e.episode: e for e in trace.of_kind(closer)}
            for event in opens:
                partner = closes[event.episode]
                assert partner.platform == event.platform
                assert partner.time_s > event.time_s

    def test_starts_respect_window(self):
        config = FaultTraceConfig(outages=4, transients=4, start_window=0.25)
        trace = generate_fault_trace(PLATFORMS, 100.0, config, seed=1)
        for event in trace:
            if event.kind in ("outage", "transient"):
                assert 0.0 <= event.time_s <= 25.0

    def test_platforms_drawn_from_given_set(self):
        trace = generate_fault_trace(PLATFORMS, 10.0, FULL_CONFIG, seed=5)
        assert set(trace.platforms) <= set(PLATFORMS)

    def test_same_seed_bit_identical(self):
        a = generate_fault_trace(PLATFORMS, 10.0, FULL_CONFIG, seed=11)
        b = generate_fault_trace(PLATFORMS, 10.0, FULL_CONFIG, seed=11)
        assert a.to_dicts() == b.to_dicts()
        assert a.fingerprint() == b.fingerprint()

    def test_platform_iteration_order_is_irrelevant(self):
        a = generate_fault_trace(PLATFORMS, 10.0, FULL_CONFIG, seed=11)
        b = generate_fault_trace(
            list(reversed(PLATFORMS)), 10.0, FULL_CONFIG, seed=11
        )
        assert a.fingerprint() == b.fingerprint()

    def test_different_seeds_distinct(self):
        a = generate_fault_trace(PLATFORMS, 10.0, FULL_CONFIG, seed=11)
        b = generate_fault_trace(PLATFORMS, 10.0, FULL_CONFIG, seed=12)
        assert a.fingerprint() != b.fingerprint()
