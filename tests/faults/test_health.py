"""Degraded architectures and live platform health."""

import pytest

from repro.faults import DegradedArchitecture, FaultEvent, PlatformHealth
from repro.gpu import K20C
from repro.gpu.dvfs import FrequencyState
from repro.serving.degradation import DegradationRung


class TestDegradedArchitecture:
    def test_validation(self):
        with pytest.raises(ValueError, match="failed_sms"):
            DegradedArchitecture(K20C, failed_sms=K20C.n_sms)
        with pytest.raises(ValueError, match="failed_sms"):
            DegradedArchitecture(K20C, failed_sms=-1)
        with pytest.raises(ValueError, match="bandwidth_scale"):
            DegradedArchitecture(K20C, bandwidth_scale=0.0)
        with pytest.raises(ValueError, match="bandwidth_scale"):
            DegradedArchitecture(K20C, bandwidth_scale=1.1)

    def test_identity_at_full_health(self):
        degraded = DegradedArchitecture(K20C)
        assert not degraded.degraded
        # The base object itself, so cache keys are unperturbed.
        assert degraded.arch is K20C

    def test_health_keyed_target(self):
        degraded = DegradedArchitecture(K20C, failed_sms=3, bandwidth_scale=0.5)
        arch = degraded.arch
        assert arch.name == "%s@sm%d,bw0.5" % (K20C.name, K20C.n_sms - 3)
        assert arch.n_sms == K20C.n_sms - 3
        assert arch.mem_bandwidth_gbps == pytest.approx(
            0.5 * K20C.mem_bandwidth_gbps
        )
        # Two distinct health states never share a name (= cache key).
        other = DegradedArchitecture(K20C, failed_sms=2, bandwidth_scale=0.5)
        assert other.arch.name != arch.name


class TestPlatformHealth:
    def test_failed_sms_clamped_to_at_least_one(self):
        health = PlatformHealth(K20C, sm_fail_fraction=1e-6)
        assert health.failed_sms == 1

    def test_failed_sms_leaves_one_survivor(self):
        health = PlatformHealth(K20C, sm_fail_fraction=0.999)
        assert health.failed_sms == K20C.n_sms - 1

    def test_zero_fraction_fails_nothing(self):
        assert PlatformHealth(K20C).failed_sms == 0

    def test_apply_consequences(self):
        health = PlatformHealth(K20C)
        assert health.apply(
            FaultEvent(time_s=0.0, kind="outage", platform="K20c")
        ) == "down"
        assert not health.up
        assert health.apply(
            FaultEvent(time_s=1.0, kind="restore", platform="K20c")
        ) == "up"
        assert health.up
        assert health.apply(
            FaultEvent(
                time_s=2.0, kind="sm_fail", platform="K20c",
                sm_fail_fraction=0.25,
            )
        ) == "recompile"
        assert health.degraded
        assert health.apply(
            FaultEvent(
                time_s=3.0, kind="throttle", platform="K20c",
                relative_frequency=0.6,
            )
        ) == "rescale"
        assert health.throttled
        assert health.apply(
            FaultEvent(time_s=4.0, kind="transient", platform="K20c")
        ) == "transient"
        assert health.apply(
            FaultEvent(time_s=5.0, kind="sm_recover", platform="K20c")
        ) == "recompile"
        assert health.apply(
            FaultEvent(time_s=6.0, kind="throttle_end", platform="K20c")
        ) == "rescale"
        assert not health.degraded and not health.throttled

    def test_architecture_tracks_health(self):
        health = PlatformHealth(K20C)
        assert health.architecture() is K20C
        health.apply(
            FaultEvent(
                time_s=0.0, kind="sm_fail", platform="K20c",
                sm_fail_fraction=0.25,
            )
        )
        arch = health.architecture()
        assert arch.n_sms == K20C.n_sms - health.failed_sms
        assert "@sm" in arch.name
        health.apply(
            FaultEvent(time_s=1.0, kind="sm_recover", platform="K20c")
        )
        assert health.architecture() is K20C


class TestScaleRung:
    def _rung(self):
        return DegradationRung(
            level=0, batch=4, perforation=None, plan=None,
            exec_time_s=0.01, energy_j=2.0, entropy=0.5,
        )

    def test_identity_at_nominal_frequency(self):
        health = PlatformHealth(K20C)
        rung = self._rung()
        assert health.scale_rung(rung) is rung

    def test_throttle_stretches_runtime_and_scales_energy(self):
        health = PlatformHealth(K20C, relative_frequency=0.5)
        rung = self._rung()
        scaled = health.scale_rung(rung)
        assert scaled.exec_time_s == pytest.approx(rung.exec_time_s / 0.5)
        voltage = FrequencyState(0.5).voltage
        assert scaled.energy_j == pytest.approx(rung.energy_j * voltage**2)
        # Capacity halves with frequency.
        assert scaled.throughput_rps == pytest.approx(
            0.5 * rung.throughput_rps
        )
