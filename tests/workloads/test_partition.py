"""Tests for repro.workloads.partition: stable hashing and trace
partitioning with the merge round-trip guarantee."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    bursty_trace,
    empty_trace,
    merge_traces,
    pareto_trace,
    partition_trace,
    stable_shard,
)


class TestStableShard:
    def test_deterministic(self):
        assert stable_shard("tenant-a", 4) == stable_shard("tenant-a", 4)

    def test_in_range(self):
        for key in ("a", "b", 17, ("x", 3)):
            assert 0 <= stable_shard(key, 5) < 5

    def test_single_shard_always_zero(self):
        assert stable_shard("anything", 1) == 0

    def test_spreads_keys(self):
        # 64 tenants over 4 shards: SHA-1 should not collapse them
        # onto one shard.
        shards = {stable_shard("tenant-%d" % i, 4) for i in range(64)}
        assert shards == {0, 1, 2, 3}

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            stable_shard("a", 0)

    def test_differs_from_builtin_hash_semantics(self):
        # The assignment is a pure function of str(key): equal string
        # renderings share a shard regardless of type.
        assert stable_shard(42, 8) == stable_shard("42", 8)


class TestPartitionTrace:
    def test_single_shard_identity(self):
        trace = bursty_trace(50, 40.0, seed=1)
        (part,) = partition_trace(trace, 1)
        assert part is trace

    def test_partition_covers_and_is_disjoint(self):
        trace = bursty_trace(120, 40.0, seed=2)
        parts = partition_trace(trace, 4)
        assert len(parts) == 4
        assert sum(p.n_requests for p in parts) == trace.n_requests

    def test_preserves_arrival_order_within_shard(self):
        trace = bursty_trace(100, 50.0, seed=3)
        for part in partition_trace(trace, 3):
            assert np.all(np.diff(part.arrivals_s) >= 0)

    def test_empty_trace(self):
        parts = partition_trace(empty_trace(), 3)
        assert [p.n_requests for p in parts] == [0, 0, 0]

    def test_key_override_groups_requests(self):
        trace = bursty_trace(60, 50.0, seed=4)
        # Everything keyed identically lands on one shard.
        parts = partition_trace(trace, 4, key=lambda position: "same")
        sizes = sorted(p.n_requests for p in parts)
        assert sizes == [0, 0, 0, 60]

    def test_deterministic(self):
        trace = pareto_trace(80, 30.0, seed=5)
        first = partition_trace(trace, 3)
        second = partition_trace(trace, 3)
        for a, b in zip(first, second):
            assert np.array_equal(a.arrivals_s, b.arrivals_s)
            assert np.array_equal(a.difficulty, b.difficulty)

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            partition_trace(bursty_trace(10, 10.0, seed=6), 0)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n_shards=st.integers(min_value=1, max_value=8),
        generator=st.sampled_from(["mmpp", "pareto"]),
    )
    def test_merge_round_trip(self, seed, n_shards, generator):
        """merge_traces(*partition_trace(t, n)) == t for seeded
        MMPP and Pareto traces (strictly increasing arrivals)."""
        if generator == "mmpp":
            trace = bursty_trace(64, 40.0, seed=seed)
        else:
            trace = pareto_trace(64, 40.0, seed=seed)
        merged = merge_traces(*partition_trace(trace, n_shards))
        assert np.array_equal(merged.arrivals_s, trace.arrivals_s)
        assert np.array_equal(merged.difficulty, trace.difficulty)
