"""Tests for repro.workloads: scenarios and request generators."""

import numpy as np
import pytest

from repro.core.satisfaction import TaskClass
from repro.workloads import (
    RequestTrace,
    age_detection,
    background_trace,
    bursty_trace,
    difficulty_shift,
    empty_trace,
    image_tagging,
    interactive_trace,
    merge_traces,
    paper_scenarios,
    pareto_trace,
    realtime_trace,
    scale_rate,
    video_surveillance,
)


class TestScenarios:
    def test_three_paper_scenarios(self):
        scenarios = paper_scenarios()
        assert [s.spec.task_class for s in scenarios] == [
            TaskClass.INTERACTIVE,
            TaskClass.REAL_TIME,
            TaskClass.BACKGROUND,
        ]

    def test_age_detection_interactive(self):
        scen = age_detection()
        assert scen.name == "age-detection"
        assert not scen.spec.accuracy_sensitive
        assert scen.network.name == "AlexNet"

    def test_surveillance_hard_deadline(self):
        scen = video_surveillance(fps=30)
        assert scen.spec.frame_rate_hz == 30
        assert scen.spec.accuracy_sensitive
        assert scen.network.name == "VGGNet"

    def test_tagging_background(self):
        scen = image_tagging()
        assert scen.spec.task_class == TaskClass.BACKGROUND

    def test_custom_network(self):
        from repro.nn.models import googlenet

        scen = video_surveillance(network=googlenet())
        assert scen.network.name == "GoogLeNet"


class TestTraces:
    def test_interactive_trace_monotone(self):
        trace = interactive_trace(n_requests=10, seed=0)
        assert trace.n_requests == 10
        assert np.all(np.diff(trace.arrivals_s) >= 0)

    def test_interactive_trace_deterministic(self):
        a = interactive_trace(seed=4)
        b = interactive_trace(seed=4)
        np.testing.assert_array_equal(a.arrivals_s, b.arrivals_s)

    def test_realtime_metronome(self):
        trace = realtime_trace(duration_s=1.0, fps=10)
        assert trace.n_requests == 10
        np.testing.assert_allclose(np.diff(trace.arrivals_s), 0.1)

    def test_background_dump(self):
        trace = background_trace(n_photos=16, dump_gap_s=0.01)
        assert trace.n_requests == 16
        assert trace.arrivals_s[-1] == pytest.approx(0.15)

    def test_difficulty_shift(self):
        trace = difficulty_shift(
            realtime_trace(duration_s=1.0, fps=10),
            onset_fraction=0.5,
            severity=1.5,
        )
        assert np.all(trace.difficulty[:5] == 1.0)
        assert np.all(trace.difficulty[5:] == 1.5)

    def test_shift_validation(self):
        with pytest.raises(ValueError):
            difficulty_shift(realtime_trace(), severity=0.5)
        with pytest.raises(ValueError):
            difficulty_shift(realtime_trace(), onset_fraction=2.0)

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            RequestTrace(
                arrivals_s=np.array([1.0, 0.5]),
                difficulty=np.array([1.0, 1.0]),
            )
        with pytest.raises(ValueError):
            RequestTrace(
                arrivals_s=np.array([0.0, 1.0]),
                difficulty=np.array([1.0]),
            )


class TestBurstyTraces:
    """Property tests for the heavy-tail / bursty arrival processes."""

    @pytest.mark.parametrize("seed", range(5))
    def test_mmpp_mean_rate_matches_request(self, seed):
        rate = 100.0
        trace = bursty_trace(n_requests=3000, rate_hz=rate, seed=seed)
        observed = trace.n_requests / trace.arrivals_s[-1]
        assert observed == pytest.approx(rate, rel=0.15)

    @pytest.mark.parametrize("seed", range(5))
    def test_pareto_mean_rate_matches_request(self, seed):
        rate = 100.0
        trace = pareto_trace(n_requests=3000, rate_hz=rate, seed=seed)
        observed = trace.n_requests / trace.arrivals_s[-1]
        assert observed == pytest.approx(rate, rel=0.15)

    def test_mmpp_is_actually_bursty(self):
        # Burstiness shows as gap dispersion well beyond Poisson's
        # (coefficient of variation 1 for exponential gaps).
        trace = bursty_trace(n_requests=4000, rate_hz=100.0, seed=0)
        gaps = np.diff(np.concatenate([[0.0], trace.arrivals_s]))
        cv = gaps.std() / gaps.mean()
        assert cv > 1.2

    def test_pareto_tail_heavier_than_exponential(self):
        trace = pareto_trace(n_requests=4000, rate_hz=100.0, alpha=1.5, seed=0)
        gaps = np.diff(np.concatenate([[0.0], trace.arrivals_s]))
        # A heavy tail drags the max far beyond the mean.
        assert gaps.max() > 20 * gaps.mean()

    def test_deterministic_per_seed(self):
        a = bursty_trace(n_requests=100, seed=7)
        b = bursty_trace(n_requests=100, seed=7)
        np.testing.assert_array_equal(a.arrivals_s, b.arrivals_s)
        c = pareto_trace(n_requests=100, seed=7)
        d = pareto_trace(n_requests=100, seed=7)
        np.testing.assert_array_equal(c.arrivals_s, d.arrivals_s)

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            bursty_trace(rate_hz=0.0)
        with pytest.raises(ValueError):
            bursty_trace(burst_factor=1.0)
        with pytest.raises(ValueError):
            bursty_trace(burst_fraction=1.0)
        with pytest.raises(ValueError):
            pareto_trace(alpha=1.0)
        with pytest.raises(ValueError):
            pareto_trace(rate_hz=-1.0)


class TestTraceCombinators:
    def test_merge_interleaves_in_time_order(self):
        merged = merge_traces(
            bursty_trace(n_requests=40, seed=1),
            pareto_trace(n_requests=40, seed=2),
        )
        assert merged.n_requests == 80
        assert np.all(np.diff(merged.arrivals_s) >= 0)

    def test_merge_keeps_difficulty_paired(self):
        hard = difficulty_shift(
            realtime_trace(duration_s=1.0, fps=10), onset_fraction=0.0,
            severity=2.0,
        )
        easy = realtime_trace(duration_s=1.0, fps=10)
        merged = merge_traces(hard, easy)
        assert sorted(merged.difficulty) == [1.0] * 10 + [2.0] * 10

    def test_merge_of_nothing_is_the_empty_trace(self):
        merged = merge_traces()
        assert merged.n_requests == 0
        assert merged.arrivals_s.shape == (0,)

    def test_merge_drops_empty_members(self):
        base = realtime_trace(duration_s=1.0, fps=10)
        merged = merge_traces(empty_trace(), base, empty_trace())
        np.testing.assert_allclose(merged.arrivals_s, base.arrivals_s)
        assert merge_traces(empty_trace(), empty_trace()).n_requests == 0

    def test_scale_rate_compresses_time(self):
        base = pareto_trace(n_requests=200, rate_hz=50.0, seed=3)
        doubled = scale_rate(base, 2.0)
        np.testing.assert_allclose(
            doubled.arrivals_s, base.arrivals_s / 2.0
        )
        with pytest.raises(ValueError, match="positive rate multiplier"):
            scale_rate(base, 0.0)
        with pytest.raises(ValueError, match="positive rate multiplier"):
            scale_rate(base, -1.0)

    def test_scale_rate_of_empty_trace(self):
        scaled = scale_rate(empty_trace(), 2.0)
        assert scaled.n_requests == 0
