"""Tests for repro.workloads: scenarios and request generators."""

import numpy as np
import pytest

from repro.core.satisfaction import TaskClass
from repro.workloads import (
    RequestTrace,
    age_detection,
    background_trace,
    difficulty_shift,
    image_tagging,
    interactive_trace,
    paper_scenarios,
    realtime_trace,
    video_surveillance,
)


class TestScenarios:
    def test_three_paper_scenarios(self):
        scenarios = paper_scenarios()
        assert [s.spec.task_class for s in scenarios] == [
            TaskClass.INTERACTIVE,
            TaskClass.REAL_TIME,
            TaskClass.BACKGROUND,
        ]

    def test_age_detection_interactive(self):
        scen = age_detection()
        assert scen.name == "age-detection"
        assert not scen.spec.accuracy_sensitive
        assert scen.network.name == "AlexNet"

    def test_surveillance_hard_deadline(self):
        scen = video_surveillance(fps=30)
        assert scen.spec.frame_rate_hz == 30
        assert scen.spec.accuracy_sensitive
        assert scen.network.name == "VGGNet"

    def test_tagging_background(self):
        scen = image_tagging()
        assert scen.spec.task_class == TaskClass.BACKGROUND

    def test_custom_network(self):
        from repro.nn.models import googlenet

        scen = video_surveillance(network=googlenet())
        assert scen.network.name == "GoogLeNet"


class TestTraces:
    def test_interactive_trace_monotone(self):
        trace = interactive_trace(n_requests=10, seed=0)
        assert trace.n_requests == 10
        assert np.all(np.diff(trace.arrivals_s) >= 0)

    def test_interactive_trace_deterministic(self):
        a = interactive_trace(seed=4)
        b = interactive_trace(seed=4)
        np.testing.assert_array_equal(a.arrivals_s, b.arrivals_s)

    def test_realtime_metronome(self):
        trace = realtime_trace(duration_s=1.0, fps=10)
        assert trace.n_requests == 10
        np.testing.assert_allclose(np.diff(trace.arrivals_s), 0.1)

    def test_background_dump(self):
        trace = background_trace(n_photos=16, dump_gap_s=0.01)
        assert trace.n_requests == 16
        assert trace.arrivals_s[-1] == pytest.approx(0.15)

    def test_difficulty_shift(self):
        trace = difficulty_shift(
            realtime_trace(duration_s=1.0, fps=10),
            onset_fraction=0.5,
            severity=1.5,
        )
        assert np.all(trace.difficulty[:5] == 1.0)
        assert np.all(trace.difficulty[5:] == 1.5)

    def test_shift_validation(self):
        with pytest.raises(ValueError):
            difficulty_shift(realtime_trace(), severity=0.5)
        with pytest.raises(ValueError):
            difficulty_shift(realtime_trace(), onset_fraction=2.0)

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            RequestTrace(
                arrivals_s=np.array([1.0, 0.5]),
                difficulty=np.array([1.0, 1.0]),
            )
        with pytest.raises(ValueError):
            RequestTrace(
                arrivals_s=np.array([0.0, 1.0]),
                difficulty=np.array([1.0]),
            )
