"""Smoke tests: the fast example scripts run end-to-end.

The examples double as integration surfaces; the fast ones run inside
the suite (the training-heavy ones are exercised manually / by the
benchmark session instead).
"""

import importlib.util
import os

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

FAST_EXAMPLES = [
    "multi_tenant",
    "cross_platform_deploy",
    "learned_requirements",
]


def _run_example(name, capsys):
    path = os.path.join(EXAMPLES_DIR, "%s.py" % name)
    spec = importlib.util.spec_from_file_location("example_%s" % name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    out = _run_example(name, capsys)
    assert len(out) > 200  # produced a real report


def test_multi_tenant_shows_partition_advantage(capsys):
    out = _run_example("multi_tenant", capsys)
    assert "MPS" in out
    assert "partitioned" in out


def test_learned_requirements_relaxes_budget(capsys):
    out = _run_example("learned_requirements", capsys)
    assert "learned" in out.lower()
