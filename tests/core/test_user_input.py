"""Tests for repro.core.user_input: requirement inference."""

import math

import pytest

from repro.core.satisfaction import TaskClass
from repro.core.user_input import ApplicationSpec, infer_requirement


class TestApplicationSpec:
    def test_valid_interactive(self):
        spec = ApplicationSpec("app", TaskClass.INTERACTIVE)
        assert spec.data_rate_hz == 1.0

    def test_real_time_needs_frame_rate(self):
        with pytest.raises(ValueError, match="frame_rate"):
            ApplicationSpec("cam", TaskClass.REAL_TIME)

    def test_rejects_unknown_class(self):
        with pytest.raises(ValueError):
            ApplicationSpec("x", "batchy")

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            ApplicationSpec("x", TaskClass.INTERACTIVE, data_rate_hz=0)

    def test_rejects_negative_slack(self):
        with pytest.raises(ValueError):
            ApplicationSpec("x", TaskClass.INTERACTIVE, entropy_slack=-0.1)


class TestInference:
    def test_interactive_lookup(self):
        req = infer_requirement(ApplicationSpec("a", TaskClass.INTERACTIVE))
        assert req.time.imperceptible_s == pytest.approx(0.1)
        assert req.time.unusable_s == pytest.approx(3.0)

    def test_real_time_deadline_from_frame_rate(self):
        spec = ApplicationSpec(
            "cam", TaskClass.REAL_TIME, data_rate_hz=30, frame_rate_hz=30
        )
        req = infer_requirement(spec)
        assert req.time.imperceptible_s == pytest.approx(1 / 30)
        assert req.time.unusable_s == pytest.approx(1 / 30)

    def test_background_unbounded(self):
        req = infer_requirement(ApplicationSpec("tag", TaskClass.BACKGROUND))
        assert math.isinf(req.time.imperceptible_s)

    def test_accuracy_sensitive_zero_slack(self):
        spec = ApplicationSpec(
            "cam",
            TaskClass.REAL_TIME,
            data_rate_hz=30,
            frame_rate_hz=30,
            accuracy_sensitive=True,
        )
        req = infer_requirement(spec)
        assert req.entropy_slack == 0.0

    def test_entropy_threshold_scales_baseline(self):
        spec = ApplicationSpec("a", TaskClass.INTERACTIVE, entropy_slack=0.3)
        req = infer_requirement(spec)
        assert req.entropy_threshold(1.0) == pytest.approx(1.3)
        assert req.entropy_threshold(0.5) == pytest.approx(0.65)

    def test_threshold_rejects_bad_baseline(self):
        req = infer_requirement(ApplicationSpec("a", TaskClass.INTERACTIVE))
        with pytest.raises(ValueError):
            req.entropy_threshold(0.0)
