"""Tests for repro.core.runtime.server: the serving loop."""

import numpy as np
import pytest

from repro.core import ApplicationSpec, PervasiveCNN, TaskClass
from repro.core.runtime import InferenceServer
from repro.gpu import JETSON_TX1
from repro.nn import alexnet
from repro.workloads import (
    RequestTrace,
    background_trace,
    difficulty_shift,
    interactive_trace,
    realtime_trace,
)


@pytest.fixture(scope="module")
def deployment():
    pcnn = PervasiveCNN(JETSON_TX1)
    spec = ApplicationSpec(
        "age-detection", TaskClass.INTERACTIVE, data_rate_hz=50.0
    )
    return pcnn.deploy(alexnet(), spec, max_tuning_iterations=8)


def _fresh_deployment():
    pcnn = PervasiveCNN(JETSON_TX1)
    spec = ApplicationSpec(
        "age-detection", TaskClass.INTERACTIVE, data_rate_hz=50.0
    )
    return pcnn.deploy(alexnet(), spec, max_tuning_iterations=8)


class TestServing:
    def test_every_request_served_once(self, deployment):
        server = InferenceServer(deployment)
        trace = interactive_trace(n_requests=17, think_time_s=0.05, seed=1)
        report = server.serve(trace)
        assert report.n_requests == 17
        assert [r.index for r in report.requests] == list(range(17))

    def test_latency_accounting_consistent(self, deployment):
        server = InferenceServer(deployment)
        trace = realtime_trace(duration_s=1.0, fps=20)
        report = server.serve(trace)
        for request in report.requests:
            assert request.finish_s >= request.start_s >= request.arrival_s
            assert request.latency_s == pytest.approx(
                request.queueing_s + (request.finish_s - request.start_s)
            )

    def test_gpu_never_double_booked(self, deployment):
        server = InferenceServer(deployment)
        trace = realtime_trace(duration_s=0.5, fps=40)
        report = server.serve(trace)
        spans = sorted(
            {(r.start_s, r.finish_s) for r in report.requests}
        )
        for (s1, f1), (s2, _f2) in zip(spans, spans[1:]):
            assert s2 >= f1 - 1e-12

    def test_flush_timeout_bounds_queueing(self, deployment):
        server = InferenceServer(deployment, flush_timeout_s=0.02)
        # sparse arrivals: batches never fill, timeout must flush
        trace = interactive_trace(n_requests=6, think_time_s=1.0, seed=2)
        report = server.serve(trace)
        for request in report.requests:
            assert request.queueing_s <= 0.02 + 0.05  # timeout + compute wait

    def test_burst_forms_batches(self, deployment):
        server = InferenceServer(deployment)
        trace = background_trace(n_photos=20, dump_gap_s=0.001)
        report = server.serve(trace)
        assert report.batches < 20  # batching actually happened
        assert max(r.batch for r in report.requests) > 1

    def test_energy_accumulates(self, deployment):
        server = InferenceServer(deployment)
        report = server.serve(interactive_trace(n_requests=8, seed=3))
        assert report.total_energy_j > 0
        assert report.energy_per_request_j == pytest.approx(
            report.total_energy_j / 8
        )

    def test_percentiles(self, deployment):
        server = InferenceServer(deployment)
        report = server.serve(interactive_trace(n_requests=12, seed=4))
        assert report.p99_latency_s >= report.mean_latency_s * 0.5

    def test_rejects_bad_timeout(self, deployment):
        with pytest.raises(ValueError):
            InferenceServer(deployment, flush_timeout_s=0.0)


class TestServingEdgeCases:
    def test_empty_trace_yields_empty_report(self, deployment):
        server = InferenceServer(deployment)
        report = server.serve(
            RequestTrace(arrivals_s=np.array([]), difficulty=np.array([]))
        )
        assert report.n_requests == 0
        assert report.batches == 0
        assert report.total_energy_j == 0.0
        assert report.mean_latency_s == 0.0
        assert report.p99_latency_s == 0.0
        assert report.energy_per_request_j == 0.0
        assert report.to_dict()["n_requests"] == 0

    def test_single_request_below_batch_capacity(self, deployment):
        capacity = deployment.current_entry.compiled.batch
        server = InferenceServer(deployment, flush_timeout_s=0.5)
        trace = RequestTrace(
            arrivals_s=np.array([0.1]), difficulty=np.array([1.0])
        )
        report = server.serve(trace)
        assert report.n_requests == 1
        assert report.batches == 1
        served = report.requests[0]
        assert served.batch == 1
        assert served.batch <= capacity
        # A drained stream flushes immediately: the lone request must
        # not sit out the whole 0.5 s assembly timeout.
        assert served.start_s == pytest.approx(0.1)

    def test_arrival_exactly_at_flush_boundary_joins_batch(self, deployment):
        capacity = deployment.current_entry.compiled.batch
        if capacity < 2:
            pytest.skip("tuned batch too small to share")
        timeout = 0.05
        server = InferenceServer(deployment, flush_timeout_s=timeout)
        # Second request lands exactly when the first one's timeout
        # expires: the boundary is inclusive, so they share a batch.
        trace = RequestTrace(
            arrivals_s=np.array([0.0, timeout]),
            difficulty=np.array([1.0, 1.0]),
        )
        report = server.serve(trace)
        assert report.batches == 1
        assert [r.batch for r in report.requests] == [2, 2]

    def test_flush_policy_boundary_semantics(self):
        from repro.core.runtime.server import FlushPolicy

        policy = FlushPolicy(capacity=4, timeout_s=0.1)
        assert policy.flush_at(1.0) == pytest.approx(1.1)
        assert policy.admits(1, 1.1, head_arrival_s=1.0)  # inclusive
        assert not policy.admits(1, 1.1 + 1e-9, head_arrival_s=1.0)
        assert not policy.admits(4, 1.0, head_arrival_s=1.0)  # full
        assert policy.should_flush(4, 1.0, head_arrival_s=1.0)
        assert policy.should_flush(1, 1.1, head_arrival_s=1.0)
        assert not policy.should_flush(1, 1.05, head_arrival_s=1.0)
        with pytest.raises(ValueError):
            FlushPolicy(capacity=0, timeout_s=0.1)
        with pytest.raises(ValueError):
            FlushPolicy(capacity=1, timeout_s=0.0)

    def test_report_to_dict_round_trips_through_json(self, deployment):
        import json

        server = InferenceServer(deployment)
        report = server.serve(interactive_trace(n_requests=5, seed=9))
        payload = json.loads(
            json.dumps(report.to_dict(include_requests=True))
        )
        assert payload["n_requests"] == 5
        assert len(payload["requests"]) == 5
        assert payload["requests"][0]["latency_s"] >= 0.0


class TestServingWithCalibration:
    def test_hard_stretch_triggers_backtracking(self):
        deployment = _fresh_deployment()
        if len(deployment.tuning_table) < 2:
            pytest.skip("tuning path too short")
        server = InferenceServer(deployment)
        trace = difficulty_shift(
            realtime_trace(duration_s=3.0, fps=10),
            onset_fraction=0.3,
            severity=4.0,
        )
        start_index = deployment.calibrator.index
        server.serve(trace)
        assert deployment.calibrator.index < start_index

    def test_easy_traffic_holds_position(self):
        deployment = _fresh_deployment()
        server = InferenceServer(deployment)
        start_index = deployment.calibrator.index
        server.serve(realtime_trace(duration_s=1.0, fps=10))
        assert deployment.calibrator.index >= start_index
