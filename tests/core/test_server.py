"""Tests for repro.core.runtime.server: the serving loop."""

import numpy as np
import pytest

from repro.core import ApplicationSpec, PervasiveCNN, TaskClass
from repro.core.runtime import InferenceServer
from repro.gpu import JETSON_TX1
from repro.nn import alexnet
from repro.workloads import (
    RequestTrace,
    background_trace,
    difficulty_shift,
    interactive_trace,
    realtime_trace,
)


@pytest.fixture(scope="module")
def deployment():
    pcnn = PervasiveCNN(JETSON_TX1)
    spec = ApplicationSpec(
        "age-detection", TaskClass.INTERACTIVE, data_rate_hz=50.0
    )
    return pcnn.deploy(alexnet(), spec, max_tuning_iterations=8)


def _fresh_deployment():
    pcnn = PervasiveCNN(JETSON_TX1)
    spec = ApplicationSpec(
        "age-detection", TaskClass.INTERACTIVE, data_rate_hz=50.0
    )
    return pcnn.deploy(alexnet(), spec, max_tuning_iterations=8)


class TestServing:
    def test_every_request_served_once(self, deployment):
        server = InferenceServer(deployment)
        trace = interactive_trace(n_requests=17, think_time_s=0.05, seed=1)
        report = server.serve(trace)
        assert report.n_requests == 17
        assert [r.index for r in report.requests] == list(range(17))

    def test_latency_accounting_consistent(self, deployment):
        server = InferenceServer(deployment)
        trace = realtime_trace(duration_s=1.0, fps=20)
        report = server.serve(trace)
        for request in report.requests:
            assert request.finish_s >= request.start_s >= request.arrival_s
            assert request.latency_s == pytest.approx(
                request.queueing_s + (request.finish_s - request.start_s)
            )

    def test_gpu_never_double_booked(self, deployment):
        server = InferenceServer(deployment)
        trace = realtime_trace(duration_s=0.5, fps=40)
        report = server.serve(trace)
        spans = sorted(
            {(r.start_s, r.finish_s) for r in report.requests}
        )
        for (s1, f1), (s2, _f2) in zip(spans, spans[1:]):
            assert s2 >= f1 - 1e-12

    def test_flush_timeout_bounds_queueing(self, deployment):
        server = InferenceServer(deployment, flush_timeout_s=0.02)
        # sparse arrivals: batches never fill, timeout must flush
        trace = interactive_trace(n_requests=6, think_time_s=1.0, seed=2)
        report = server.serve(trace)
        for request in report.requests:
            assert request.queueing_s <= 0.02 + 0.05  # timeout + compute wait

    def test_burst_forms_batches(self, deployment):
        server = InferenceServer(deployment)
        trace = background_trace(n_photos=20, dump_gap_s=0.001)
        report = server.serve(trace)
        assert report.batches < 20  # batching actually happened
        assert max(r.batch for r in report.requests) > 1

    def test_energy_accumulates(self, deployment):
        server = InferenceServer(deployment)
        report = server.serve(interactive_trace(n_requests=8, seed=3))
        assert report.total_energy_j > 0
        assert report.energy_per_request_j == pytest.approx(
            report.total_energy_j / 8
        )

    def test_percentiles(self, deployment):
        server = InferenceServer(deployment)
        report = server.serve(interactive_trace(n_requests=12, seed=4))
        assert report.p99_latency_s >= report.mean_latency_s * 0.5

    def test_rejects_bad_timeout(self, deployment):
        with pytest.raises(ValueError):
            InferenceServer(deployment, flush_timeout_s=0.0)


class TestServingWithCalibration:
    def test_hard_stretch_triggers_backtracking(self):
        deployment = _fresh_deployment()
        if len(deployment.tuning_table) < 2:
            pytest.skip("tuning path too short")
        server = InferenceServer(deployment)
        trace = difficulty_shift(
            realtime_trace(duration_s=3.0, fps=10),
            onset_fraction=0.3,
            severity=4.0,
        )
        start_index = deployment.calibrator.index
        server.serve(trace)
        assert deployment.calibrator.index < start_index

    def test_easy_traffic_holds_position(self):
        deployment = _fresh_deployment()
        server = InferenceServer(deployment)
        start_index = deployment.calibrator.index
        server.serve(realtime_trace(duration_s=1.0, fps=10))
        assert deployment.calibrator.index >= start_index
