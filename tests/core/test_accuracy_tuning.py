"""Tests for repro.core.runtime.accuracy_tuning: the greedy tuner."""

import pytest

from repro.core.offline import OfflineCompiler
from repro.core.runtime.accuracy_tuning import (
    AccuracyTuner,
    AnalyticEntropyModel,
    EmpiricalEntropyEvaluator,
)
from repro.gpu import JETSON_TX1
from repro.nn.models import alexnet
from repro.nn.perforation import PerforationPlan


@pytest.fixture(scope="module")
def compiler():
    return OfflineCompiler(JETSON_TX1)


@pytest.fixture(scope="module")
def net():
    return alexnet()


@pytest.fixture(scope="module")
def tuner(compiler, net):
    return AccuracyTuner(compiler, net, AnalyticEntropyModel(net))


@pytest.fixture(scope="module")
def table(tuner):
    return tuner.tune(batch=1, entropy_threshold=1.5, max_iterations=40)


class TestAnalyticEntropyModel:
    def test_dense_is_baseline(self, net):
        model = AnalyticEntropyModel(net, base_entropy=1.1)
        assert model.evaluate(PerforationPlan.dense()).entropy == pytest.approx(1.1)

    def test_entropy_monotone_in_rate(self, net):
        model = AnalyticEntropyModel(net)
        entropies = [
            model.evaluate(PerforationPlan({"conv3": r})).entropy
            for r in (0.0, 0.2, 0.4, 0.6)
        ]
        assert entropies == sorted(entropies)
        assert entropies[0] < entropies[-1]

    def test_later_layers_more_sensitive(self, net):
        model = AnalyticEntropyModel(net)
        early = model.evaluate(PerforationPlan({"conv1": 0.5})).entropy
        late = model.evaluate(PerforationPlan({"conv5": 0.5})).entropy
        assert late > early

    def test_rejects_bad_baseline(self, net):
        with pytest.raises(ValueError):
            AnalyticEntropyModel(net, base_entropy=0.0)


class TestGreedyTuner:
    def test_entry_zero_is_dense(self, table):
        assert table.dense.plan.is_dense()
        assert table.dense.speedup == 1.0

    def test_speedup_monotone_along_path(self, table):
        """Fig. 16: speedup increases monotonically with iterations."""
        speedups = [e.speedup for e in table.entries]
        assert speedups == sorted(speedups)
        assert table.fastest.speedup > 1.0

    def test_entropy_monotone_along_path(self, table):
        entropies = [e.entropy for e in table.entries]
        assert entropies == sorted(entropies)

    def test_threshold_respected(self, table):
        for entry in table.entries:
            assert entry.entropy <= 1.5 + 1e-9

    def test_one_layer_changes_per_iteration(self, table):
        """Fig. 12: each greedy step advances exactly one layer by one
        rung."""
        for prev, cur in zip(table.entries, table.entries[1:]):
            diffs = [
                name
                for name in set(prev.plan.rates) | set(cur.plan.rates)
                if abs(prev.plan.rate(name) - cur.plan.rate(name)) > 1e-12
            ]
            assert len(diffs) == 1

    def test_te_scores_positive(self, table):
        for entry in table.entries[1:]:
            assert entry.te_score > 0

    def test_entry_within_budget(self, table):
        strict = table.entry_within(table.dense.entropy + 1e-9)
        assert strict.iteration == 0
        loose = table.entry_within(10.0)
        assert loose is table.fastest

    def test_scheduling_tables_attached(self, table):
        entry = table.fastest
        assert "conv5" in entry.scheduling_table

    def test_tighter_threshold_shorter_path(self, tuner, table):
        tight = tuner.tune(batch=1, entropy_threshold=1.05, max_iterations=40)
        assert len(tight) <= len(table)
        assert tight.fastest.entropy <= 1.05

    def test_rejects_bad_threshold(self, tuner):
        with pytest.raises(ValueError):
            tuner.tune(batch=1, entropy_threshold=0.0)

    def test_rejects_bad_ladder(self, compiler, net):
        with pytest.raises(ValueError):
            AccuracyTuner(
                compiler, net, AnalyticEntropyModel(net), rate_ladder=(0.1, 0.0)
            )
        with pytest.raises(ValueError):
            AccuracyTuner(
                compiler, net, AnalyticEntropyModel(net), rate_ladder=(0.1, 0.2)
            )


class TestEmpiricalEvaluator:
    def test_measures_trained_network(self, trained_small_net):
        net, params, test_set = trained_small_net
        evaluator = EmpiricalEntropyEvaluator(net, params, test_set)
        dense = evaluator.evaluate(PerforationPlan.dense())
        heavy = evaluator.evaluate(
            PerforationPlan({layer.name: 0.7 for layer in net.conv_layers})
        )
        assert dense.accuracy is not None
        assert heavy.entropy >= dense.entropy - 0.05
        assert heavy.accuracy <= dense.accuracy + 0.02

    def test_empirical_tuner_on_proxy(self, trained_small_net):
        """End-to-end: the tuner works against real measurements too."""
        net, params, test_set = trained_small_net
        compiler = OfflineCompiler(JETSON_TX1)
        evaluator = EmpiricalEntropyEvaluator(net, params, test_set)
        baseline = evaluator.evaluate(PerforationPlan.dense()).entropy
        tuner = AccuracyTuner(compiler, net, evaluator)
        table = tuner.tune(
            batch=8, entropy_threshold=baseline * 1.5 + 0.2, max_iterations=8
        )
        assert len(table) >= 1
        assert all(e.accuracy is not None for e in table.entries)
