"""Tests for repro.core.offline.artifact: plan serialization."""

import json

import pytest

from repro.core.offline import OfflineCompiler, load_plan, plan_from_dict, plan_to_dict, save_plan
from repro.core.runtime import RuntimeKernelManager
from repro.gpu import JETSON_TX1
from repro.nn import alexnet
from repro.nn.perforation import PerforationPlan


@pytest.fixture(scope="module")
def plan():
    compiler = OfflineCompiler(JETSON_TX1)
    perforation = PerforationPlan({"conv2": 0.3, "conv4": 0.1})
    return compiler.compile_with_batch(alexnet(), 2, perforation)


class TestRoundTrip:
    def test_dict_roundtrip_preserves_schedule(self, plan):
        restored = plan_from_dict(plan_to_dict(plan))
        assert restored.batch == plan.batch
        assert restored.arch.name == plan.arch.name
        assert restored.network.name == plan.network.name
        assert restored.total_time_s == pytest.approx(plan.total_time_s)
        for a, b in zip(plan.schedules, restored.schedules):
            assert a.name == b.name
            assert a.tuned.kernel == b.tuned.kernel
            assert (a.opt_tlp, a.opt_sm, a.gemm_count) == (
                b.opt_tlp,
                b.opt_sm,
                b.gemm_count,
            )
            assert a.shape == b.shape

    def test_perforation_preserved(self, plan):
        restored = plan_from_dict(plan_to_dict(plan))
        assert restored.perforation.rate("conv2") == pytest.approx(0.3)
        assert restored.perforation.rate("conv4") == pytest.approx(0.1)

    def test_file_roundtrip(self, plan, tmp_path):
        path = str(tmp_path / "plan.json")
        save_plan(plan, path)
        restored = load_plan(path)
        assert restored.batch == plan.batch
        # and it is valid JSON on disk
        with open(path) as handle:
            data = json.load(handle)
        assert data["version"] == 1

    def test_restored_plan_executes(self, plan):
        """A reloaded artifact drives the runtime manager unchanged."""
        restored = plan_from_dict(plan_to_dict(plan))
        report = RuntimeKernelManager(JETSON_TX1).execute(restored)
        assert report.total_time_s > 0
        assert len(report.layers) == len(plan.schedules)


class TestValidation:
    def test_rejects_unknown_version(self, plan):
        data = plan_to_dict(plan)
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            plan_from_dict(data)

    def test_rejects_layer_drift(self, plan):
        data = plan_to_dict(plan)
        data["schedules"][0]["layer"] = "conv_renamed"
        with pytest.raises(ValueError, match="drift"):
            plan_from_dict(data)

    def test_rejects_unknown_network(self, plan):
        data = plan_to_dict(plan)
        data["network"] = "LeNet-1998"
        with pytest.raises(KeyError):
            plan_from_dict(data)

    def test_artifact_is_flat_json(self, plan):
        text = json.dumps(plan_to_dict(plan))
        assert "conv2" in text


class TestTuningTableArtifact:
    @pytest.fixture(scope="class")
    def table(self):
        from repro.core.runtime import AccuracyTuner, AnalyticEntropyModel
        from repro.nn import alexnet

        net = alexnet()
        compiler = OfflineCompiler(JETSON_TX1)
        tuner = AccuracyTuner(compiler, net, AnalyticEntropyModel(net))
        return tuner.tune(batch=1, entropy_threshold=1.3, max_iterations=6)

    def test_roundtrip_preserves_path(self, table, tmp_path):
        from repro.core.offline import load_tuning_table, save_tuning_table

        path = str(tmp_path / "table.json")
        save_tuning_table(table, path)
        loaded = load_tuning_table(path)
        assert len(loaded) == len(table)
        assert loaded.entropy_threshold == pytest.approx(
            table.entropy_threshold
        )
        for a, b in zip(table.entries, loaded.entries):
            assert a.iteration == b.iteration
            assert a.entropy == pytest.approx(b.entropy)
            assert a.speedup == pytest.approx(b.speedup)
            assert a.plan.rates == b.plan.rates

    def test_loaded_table_drives_calibration(self, table, tmp_path):
        from repro.core.offline import load_tuning_table, save_tuning_table
        from repro.core.runtime import Calibrator

        path = str(tmp_path / "table.json")
        save_tuning_table(table, path)
        loaded = load_tuning_table(path)
        calibrator = Calibrator(loaded, threshold=1.3, window=1)
        start = calibrator.index
        calibrator.observe(9.0)
        assert calibrator.index <= start

    def test_loaded_table_executes(self, table, tmp_path):
        from repro.core.offline import load_tuning_table, save_tuning_table
        from repro.core.runtime import RuntimeKernelManager

        path = str(tmp_path / "table.json")
        save_tuning_table(table, path)
        loaded = load_tuning_table(path)
        report = RuntimeKernelManager(JETSON_TX1).execute(
            loaded.fastest.compiled
        )
        assert report.total_time_s > 0

    def test_empty_table_rejected(self):
        from repro.core.offline.artifact import tuning_table_from_dict

        with pytest.raises(ValueError, match="no entries"):
            tuning_table_from_dict(
                {"version": 1, "entropy_threshold": 1.0, "entries": []}
            )
