"""Tests for repro.core.framework: the PervasiveCNN facade."""

import pytest

from repro.core import ApplicationSpec, PervasiveCNN, TaskClass
from repro.gpu import JETSON_TX1, K20C
from repro.nn.models import alexnet


@pytest.fixture(scope="module")
def deployment():
    pcnn = PervasiveCNN(JETSON_TX1)
    spec = ApplicationSpec(
        "age-detection", TaskClass.INTERACTIVE, data_rate_hz=50.0
    )
    return pcnn.deploy(alexnet(), spec, max_tuning_iterations=16)


class TestDeploy:
    def test_tuning_table_built(self, deployment):
        assert len(deployment.tuning_table) >= 1
        assert deployment.tuning_table.dense.plan.is_dense()

    def test_threshold_from_inferred_slack(self, deployment):
        baseline = deployment.tuning_table.dense.entropy
        assert deployment.entropy_threshold == pytest.approx(baseline * 1.3)

    def test_compiled_meets_budget(self, deployment):
        assert (
            deployment.current_entry.compiled.total_time_s
            <= deployment.requirement.time.budget_s
        )

    def test_starts_at_fastest_entry(self, deployment):
        assert deployment.calibrator.index == len(deployment.tuning_table) - 1


class TestProcessRequest:
    def test_outcome_fields(self, deployment):
        outcome = deployment.process_request()
        assert outcome.latency_s > 0
        assert outcome.energy_per_item_j > 0
        assert outcome.soc.value > 0
        assert outcome.entropy == deployment.tuning_table[
            outcome.entry_index
        ].entropy

    def test_outcomes_accumulate(self, deployment):
        before = len(deployment.outcomes)
        deployment.process_request()
        assert len(deployment.outcomes) == before + 1

    def test_hard_inputs_trigger_calibration(self):
        pcnn = PervasiveCNN(JETSON_TX1)
        spec = ApplicationSpec(
            "age-detection", TaskClass.INTERACTIVE, data_rate_hz=50.0
        )
        dep = pcnn.deploy(alexnet(), spec, max_tuning_iterations=16)
        if len(dep.tuning_table) < 2:
            pytest.skip("tuning path too short to backtrack")
        start = dep.calibrator.index
        for _ in range(3):
            dep.process_request(observed_entropy=dep.entropy_threshold * 3)
        assert dep.calibrator.index < start

    def test_background_deployment_batches(self):
        pcnn = PervasiveCNN(K20C)
        spec = ApplicationSpec("tagging", TaskClass.BACKGROUND, data_rate_hz=2.0)
        dep = pcnn.deploy(alexnet(), spec, max_tuning_iterations=4)
        assert dep.current_entry.compiled.batch > 1
