"""Tests for repro.core.user_model: learned requirement inference."""

import pytest

from repro.core.user_model import (
    FeedbackEvent,
    LearnedRequirementModel,
    simulate_user_feedback,
)


class TestFeedbackEvent:
    def test_rejects_bad_latency(self):
        with pytest.raises(ValueError):
            FeedbackEvent(latency_s=0.0, friction=True)


class TestLearnedModel:
    def test_prior_is_initial_estimate(self):
        model = LearnedRequirementModel(prior_ti_s=0.1)
        assert model.estimate_s == pytest.approx(0.1)

    def test_friction_lowers_estimate(self):
        model = LearnedRequirementModel(prior_ti_s=0.1)
        model.observe(FeedbackEvent(latency_s=0.08, friction=True))
        assert model.estimate_s < 0.1
        assert model.bracket[1] <= 0.08

    def test_engagement_raises_estimate(self):
        model = LearnedRequirementModel(prior_ti_s=0.1)
        model.observe(FeedbackEvent(latency_s=0.5, friction=False))
        assert model.estimate_s > 0.1
        assert model.bracket[0] >= 0.5

    def test_converges_to_true_threshold(self):
        """Alternating probes converge the bracket onto the simulated
        user's true T_i."""
        true_ti = 0.28
        model = LearnedRequirementModel(prior_ti_s=0.1)
        probes = [0.05, 0.8, 0.2, 0.5, 0.25, 0.4, 0.3, 0.35, 0.27, 0.33]
        for i, latency in enumerate(probes):
            event = simulate_user_feedback(latency, true_ti, phase=float(i))
            model.observe(event)
        assert model.estimate_s == pytest.approx(true_ti, rel=0.35)

    def test_contradictory_feedback_collapses_conservatively(self):
        model = LearnedRequirementModel(prior_ti_s=0.1)
        model.observe(FeedbackEvent(latency_s=0.05, friction=True))  # hi=0.05
        model.observe(FeedbackEvent(latency_s=0.5, friction=False))  # lo clamps
        lo, hi = model.bracket
        assert lo <= hi

    def test_requirement_applies_safety_margin(self):
        model = LearnedRequirementModel(prior_ti_s=0.2, safety_margin=0.8)
        requirement = model.requirement()
        assert requirement.imperceptible_s < model.estimate_s
        assert requirement.unusable_s >= requirement.imperceptible_s

    def test_damping_limits_single_event_swing(self):
        aggressive = LearnedRequirementModel(prior_ti_s=0.1, damping=1.0)
        cautious = LearnedRequirementModel(prior_ti_s=0.1, damping=0.2)
        event = FeedbackEvent(latency_s=1.5, friction=False)
        aggressive.observe(event)
        cautious.observe(event)
        assert abs(cautious.estimate_s - 0.1) < abs(aggressive.estimate_s - 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            LearnedRequirementModel(prior_ti_s=0.1, lo_s=0.2)
        with pytest.raises(ValueError):
            LearnedRequirementModel(damping=0.0)
        with pytest.raises(ValueError):
            LearnedRequirementModel(safety_margin=1.5)


class TestSimulatedUser:
    def test_clear_regions(self):
        assert not simulate_user_feedback(0.05, true_ti_s=0.3).friction
        assert simulate_user_feedback(0.9, true_ti_s=0.3).friction

    def test_boundary_is_ambiguous(self):
        reactions = {
            simulate_user_feedback(0.3, true_ti_s=0.3, phase=float(p)).friction
            for p in range(4)
        }
        assert reactions == {True, False}

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            simulate_user_feedback(0.1, true_ti_s=0.0)


class TestEndToEndLearning:
    def test_learned_requirement_drives_compilation(self):
        """The learned T_i plugs into the standard compiler path."""
        from repro.core.offline import OfflineCompiler
        from repro.gpu import K20C
        from repro.nn import alexnet

        model = LearnedRequirementModel(prior_ti_s=0.1)
        # A patient user: every latency up to 400 ms felt fine.
        for latency in (0.15, 0.25, 0.4):
            model.observe(FeedbackEvent(latency_s=latency, friction=False))
        requirement = model.requirement()
        assert requirement.imperceptible_s > 0.1  # learned to relax
        plan = OfflineCompiler(K20C).compile(
            alexnet(), requirement, data_rate_hz=50.0
        )
        # A looser budget admits a bigger batch than the 100 ms prior.
        strict = OfflineCompiler(K20C).compile(
            alexnet(), LearnedRequirementModel().requirement(), data_rate_hz=50.0
        )
        assert plan.batch >= strict.batch
