"""Tests for repro.core.fleet: the pervasive deployment manager."""

import pytest

from repro.core import ApplicationSpec, TaskClass
from repro.core.fleet import FleetManager
from repro.gpu import GTX_970M, JETSON_TX1, K20C, TITAN_X
from repro.nn import alexnet


@pytest.fixture(scope="module")
def fleet():
    spec = ApplicationSpec(
        "age-detection", TaskClass.INTERACTIVE, data_rate_hz=50.0
    )
    manager = FleetManager(
        alexnet(),
        spec,
        architectures=[K20C, JETSON_TX1],
        max_tuning_iterations=8,
    )
    manager.deploy_all()
    return manager


class TestFleetDeployment:
    def test_one_deployment_per_platform(self, fleet):
        deployments = fleet.deploy_all()
        assert set(deployments) == {"K20c", "TX1"}

    def test_deploy_all_is_idempotent(self, fleet):
        first = fleet.deploy_all()
        second = fleet.deploy_all()
        assert first["K20c"] is second["K20c"]

    def test_deployment_lookup(self, fleet):
        assert fleet.deployment("TX1").arch.name == "TX1"
        with pytest.raises(KeyError, match="fleet"):
            fleet.deployment("GTX1080")

    def test_platform_specific_configurations(self, fleet):
        k20 = fleet.deployment("K20c").current_entry.compiled
        tx1 = fleet.deployment("TX1").current_entry.compiled
        # Same network, different tuned configurations.
        pairs = [
            (a.tuned.tile, a.opt_sm) != (b.tuned.tile, b.opt_sm)
            for a, b in zip(k20.schedules, tx1.schedules)
        ]
        assert any(pairs)


class TestFleetReport:
    def test_report_covers_fleet(self, fleet):
        report = fleet.report()
        assert {p.gpu for p in report.platforms} == {"K20c", "TX1"}
        for platform in report.platforms:
            assert platform.latency_s > 0
            assert platform.energy_per_item_j > 0
            assert platform.tuning_speedup >= 1.0

    def test_interactive_met_everywhere(self, fleet):
        report = fleet.report()
        assert report.all_meet_requirement

    def test_best_platform_has_max_soc(self, fleet):
        report = fleet.report()
        best = report.best_platform
        assert best.soc == max(p.soc for p in report.platforms)

    def test_by_gpu_lookup(self, fleet):
        report = fleet.report()
        assert report.by_gpu("K20c").platform == "server"
        with pytest.raises(KeyError):
            report.by_gpu("TPUv1")

    def test_by_gpu_error_names_known_platforms(self, fleet):
        report = fleet.report()
        with pytest.raises(KeyError, match="K20c, TX1"):
            report.by_gpu("TPUv1")

    def test_deployment_error_names_known_platforms(self, fleet):
        with pytest.raises(KeyError, match="K20c, TX1"):
            fleet.deployment("GTX1080")


class TestValidation:
    def test_rejects_empty_fleet(self):
        spec = ApplicationSpec(
            "age", TaskClass.INTERACTIVE, data_rate_hz=50.0
        )
        with pytest.raises(ValueError):
            FleetManager(alexnet(), spec, architectures=[])
