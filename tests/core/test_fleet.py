"""Tests for repro.core.fleet: the pervasive deployment manager."""

import pytest

from repro.core import ApplicationSpec, TaskClass
from repro.core.fleet import FleetManager
from repro.gpu import JETSON_TX1, K20C
from repro.nn import alexnet


@pytest.fixture(scope="module")
def fleet():
    spec = ApplicationSpec(
        "age-detection", TaskClass.INTERACTIVE, data_rate_hz=50.0
    )
    manager = FleetManager(
        alexnet(),
        spec,
        architectures=[K20C, JETSON_TX1],
        max_tuning_iterations=8,
    )
    manager.deploy_all()
    return manager


class TestFleetDeployment:
    def test_one_deployment_per_platform(self, fleet):
        deployments = fleet.deploy_all()
        assert set(deployments) == {"K20c", "TX1"}

    def test_deploy_all_is_idempotent(self, fleet):
        first = fleet.deploy_all()
        second = fleet.deploy_all()
        assert first["K20c"] is second["K20c"]

    def test_deployment_lookup(self, fleet):
        assert fleet.deployment("TX1").arch.name == "TX1"
        with pytest.raises(KeyError, match="fleet"):
            fleet.deployment("GTX1080")

    def test_platform_specific_configurations(self, fleet):
        k20 = fleet.deployment("K20c").current_entry.compiled
        tx1 = fleet.deployment("TX1").current_entry.compiled
        # Same network, different tuned configurations.
        pairs = [
            (a.tuned.tile, a.opt_sm) != (b.tuned.tile, b.opt_sm)
            for a, b in zip(k20.schedules, tx1.schedules)
        ]
        assert any(pairs)


class TestFleetReport:
    def test_report_covers_fleet(self, fleet):
        report = fleet.report()
        assert {p.gpu for p in report.platforms} == {"K20c", "TX1"}
        for platform in report.platforms:
            assert platform.latency_s > 0
            assert platform.energy_per_item_j > 0
            assert platform.tuning_speedup >= 1.0

    def test_interactive_met_everywhere(self, fleet):
        report = fleet.report()
        assert report.all_meet_requirement

    def test_best_platform_has_max_soc(self, fleet):
        report = fleet.report()
        best = report.best_platform
        assert best.soc == max(p.soc for p in report.platforms)

    def test_by_gpu_lookup(self, fleet):
        report = fleet.report()
        assert report.by_gpu("K20c").platform == "server"
        with pytest.raises(KeyError):
            report.by_gpu("TPUv1")

    def test_by_gpu_error_names_known_platforms(self, fleet):
        report = fleet.report()
        with pytest.raises(KeyError, match="K20c, TX1"):
            report.by_gpu("TPUv1")

    def test_deployment_error_names_known_platforms(self, fleet):
        with pytest.raises(KeyError, match="K20c, TX1"):
            fleet.deployment("GTX1080")


class TestValidation:
    def test_rejects_empty_fleet(self):
        spec = ApplicationSpec(
            "age", TaskClass.INTERACTIVE, data_rate_hz=50.0
        )
        with pytest.raises(ValueError):
            FleetManager(alexnet(), spec, architectures=[])


class TestFleetDeployError:
    def _manager(self):
        spec = ApplicationSpec(
            "age", TaskClass.INTERACTIVE, data_rate_hz=50.0
        )
        return FleetManager(
            alexnet(),
            spec,
            architectures=[K20C, JETSON_TX1],
            max_tuning_iterations=8,
        )

    def test_failures_collected_not_first_aborted(self, monkeypatch):
        """One broken platform must not hide the rest of the fleet:
        every platform is attempted, failures are gathered into one
        error naming each broken GPU and why, and the survivors stay
        deployed."""
        import repro.core.fleet as fleet_mod

        real_deploy = fleet_mod.PervasiveCNN.deploy

        def flaky_deploy(self, network, spec, **kwargs):
            if self.arch.name == K20C.name:
                raise RuntimeError("tuning diverged")
            return real_deploy(self, network, spec, **kwargs)

        monkeypatch.setattr(fleet_mod.PervasiveCNN, "deploy", flaky_deploy)
        manager = self._manager()
        with pytest.raises(fleet_mod.FleetDeployError) as excinfo:
            manager.deploy_all()
        error = excinfo.value
        assert set(error.failures) == {K20C.name}
        assert "K20c" in str(error)
        assert "tuning diverged" in str(error)
        assert "1 platform(s)" in str(error)
        # The healthy platform deployed despite the failure, and once
        # the broken one is fixed only the missing platform is
        # (re)deployed -- the survivor was cached all along.
        assert JETSON_TX1.name in manager._deployments
        monkeypatch.undo()
        deployments = manager.deploy_all()
        assert set(deployments) == {K20C.name, JETSON_TX1.name}
        assert manager.deployment(JETSON_TX1.name).arch is JETSON_TX1

    def test_all_platforms_reported(self, monkeypatch):
        import repro.core.fleet as fleet_mod

        def doomed_deploy(self, network, spec, **kwargs):
            raise ValueError("%s is on fire" % self.arch.name)

        monkeypatch.setattr(fleet_mod.PervasiveCNN, "deploy", doomed_deploy)
        manager = self._manager()
        with pytest.raises(fleet_mod.FleetDeployError) as excinfo:
            manager.deploy_all()
        failures = excinfo.value.failures
        assert set(failures) == {K20C.name, JETSON_TX1.name}
        assert "2 platform(s)" in str(excinfo.value)
