"""Tests for repro.core.offline: kernel tuning, resource/time models,
batch selection and the compiler."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.offline import (
    PCNN_BACKEND,
    OfflineCompiler,
    candidate_kernels,
    eq12_layer_time,
    initial_batch,
    kernel_score,
    layer_time,
    max_batch_fitting_memory,
    opt_sm,
    s_kernel,
    shrink_batch,
    tune_layer_kernel,
)
from repro.core.satisfaction import TimeRequirement
from repro.gpu import GTX_970M, JETSON_TX1, K20C
from repro.gpu.kernels import GemmShape
from repro.gpu.spilling import plan_spill, stair_points
from repro.nn.models import alexnet, vgg16
from repro.nn.perforation import PerforationPlan


class TestResourceModel:
    def test_paper_example(self):
        """Eq. 11's worked example: G=40, optTLP=3, 10 SMs -> optSM=7."""
        ten_sm = GTX_970M  # 10 SMs
        assert ten_sm.n_sms == 10
        assert opt_sm(ten_sm, grid_size=40, opt_tlp=3) == 7

    def test_small_grid_releases_sms(self):
        assert opt_sm(K20C, grid_size=6, opt_tlp=1) == 6

    def test_never_exceeds_chip(self):
        assert opt_sm(K20C, grid_size=10**6, opt_tlp=1) == K20C.n_sms

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            opt_sm(K20C, 0, 1)
        with pytest.raises(ValueError):
            opt_sm(K20C, 1, 0)

    @given(grid=st.integers(1, 5000), tlp=st.integers(1, 16))
    @settings(max_examples=100, deadline=None)
    def test_eq11_invariant(self, grid, tlp):
        """The chosen optSM preserves the full-chip invocation count."""
        sms = opt_sm(K20C, grid, tlp)
        full = math.ceil(grid / (tlp * K20C.n_sms))
        assert math.ceil(grid / (tlp * sms)) == full
        # minimality: one fewer SM would add a wave (when legal)
        if sms > 1:
            assert math.ceil(grid / (tlp * (sms - 1))) > full or sms == K20C.n_sms


class TestKernelTuning:
    def test_candidates_fit_shared_memory(self, any_arch):
        for kernel in candidate_kernels(any_arch):
            assert kernel.shared_mem_bytes <= any_arch.shared_mem_per_sm

    def test_candidates_include_transposes(self):
        tiles = {k.tile for k in candidate_kernels(K20C)}
        assert (64, 128) in tiles and (128, 64) in tiles

    def test_tuned_kernel_is_a_stair_point(self):
        shape = GemmShape(128, 729, 1200)
        tuned = tune_layer_kernel(K20C, shape)
        base = tuned.kernel.with_spilling(
            tuned.kernel.regs_per_thread
            + tuned.spill.spilled_registers,
            0,
            0,
        )
        points = stair_points(K20C, base)
        assert (tuned.tlp, tuned.kernel.regs_per_thread) in points

    def test_tuned_beats_median_candidate(self):
        """Coordinated tuning should never be worse than an arbitrary
        untuned candidate."""
        shape = GemmShape(128, 729, 1200)
        tuned = tune_layer_kernel(K20C, shape)
        scores = []
        for kernel in candidate_kernels(K20C):
            tlp, _ = stair_points(K20C, kernel)[0]
            scores.append(kernel_score(K20C, kernel, shape, tlp))
        assert tuned.score <= min(scores) + 1e-12

    def test_s_kernel_literal_zero_cases(self):
        """Eq. 10 degenerates to zero for exact-fit unspilled kernels --
        documented behaviour that motivates the robust score."""
        shape = GemmShape(128, 128, 512)
        kernels = candidate_kernels(K20C)
        exact = next(k for k in kernels if k.tile == (64, 64))
        plan = plan_spill(K20C, exact, exact.regs_per_thread, 1)
        assert s_kernel(K20C, exact, shape, 1, plan) == 0.0

    def test_s_kernel_positive_with_waste_and_spill(self):
        shape = GemmShape(100, 700, 512)  # padding waste
        kernels = candidate_kernels(K20C)
        kernel = next(k for k in kernels if k.tile == (64, 64))
        points = stair_points(K20C, kernel)
        tlp, regs = points[-1]
        if regs < kernel.regs_per_thread:
            plan = plan_spill(K20C, kernel, regs, tlp)
            assert s_kernel(K20C, kernel, shape, tlp, plan) > 0.0

    def test_small_grids_prefer_smaller_tiles(self):
        """Section III.D's trade-off: tiny result matrices should tune
        to smaller tiles than huge ones."""
        tiny = tune_layer_kernel(JETSON_TX1, GemmShape(64, 169, 512))
        huge = tune_layer_kernel(JETSON_TX1, GemmShape(512, 50176, 4608))
        assert tiny.kernel.tile_elements <= huge.kernel.tile_elements


class TestTimeModel:
    def test_layer_time_scales_with_columns(self):
        shape1 = GemmShape(128, 729, 1200)
        shape4 = GemmShape(128, 729 * 4, 1200)
        tuned = tune_layer_kernel(K20C, shape4)
        t1 = layer_time(K20C, tuned, shape1, n_sms=13)
        t4 = layer_time(K20C, tuned, shape4, n_sms=13)
        assert t4 > t1

    def test_gemm_count_multiplies(self):
        shape = GemmShape(128, 729, 1200)
        tuned = tune_layer_kernel(K20C, shape)
        single = layer_time(K20C, tuned, shape, n_sms=13, gemm_count=1)
        double = layer_time(K20C, tuned, shape, n_sms=13, gemm_count=2)
        assert double == pytest.approx(2 * single)

    def test_eq12_correlates_with_wave_model(self):
        """The literal Eq. 12 and the wave model agree within a small
        constant factor on AlexNet's conv layers."""
        net = alexnet()
        ratios = []
        for layer in net.conv_layers:
            shape = net.gemm_shape(layer, batch=8)
            tuned = tune_layer_kernel(K20C, shape)
            wave = layer_time(K20C, tuned, shape, n_sms=13, tlp=tuned.tlp)
            literal = eq12_layer_time(K20C, tuned, shape, n_sms=13)
            ratios.append(wave / literal)
        assert max(ratios) / min(ratios) < 6.0

    def test_rejects_bad_gemm_count(self):
        shape = GemmShape(1, 1, 1)
        tuned = tune_layer_kernel(K20C, shape)
        with pytest.raises(ValueError):
            layer_time(K20C, tuned, shape, n_sms=1, gemm_count=0)


class TestBatchSelection:
    def test_initial_batch_floor(self):
        req = TimeRequirement.interactive()
        assert initial_batch(req, data_rate_hz=50.0) == 5
        assert initial_batch(req, data_rate_hz=1.0) == 1

    def test_initial_batch_rejects_background(self):
        with pytest.raises(ValueError):
            initial_batch(TimeRequirement.background(), 1.0)

    def test_shrink_batch_eq13(self):
        assert shrink_batch(10, t_user=0.1, t_predicted=0.2) == 5
        assert shrink_batch(10, t_user=0.09, t_predicted=0.2) == 4

    def test_shrink_always_decreases(self):
        assert shrink_batch(10, 0.5, 0.500001) == 9
        assert shrink_batch(1, 0.01, 1.0) == 1

    def test_memory_cap_binary_search(self):
        profile = vgg16().memory_profile()
        cap = max_batch_fitting_memory(JETSON_TX1, profile, PCNN_BACKEND)
        from repro.gpu.memory import fits_in_memory

        assert fits_in_memory(JETSON_TX1, profile, PCNN_BACKEND, cap)
        assert not fits_in_memory(JETSON_TX1, profile, PCNN_BACKEND, cap + 1)


class TestCompiler:
    @pytest.fixture(scope="class")
    def compiler(self):
        return OfflineCompiler(JETSON_TX1)

    @pytest.fixture(scope="class")
    def net(self):
        return alexnet()

    def test_plan_covers_all_gemm_layers(self, compiler, net):
        plan = compiler.compile_with_batch(net, 1)
        names = [s.name for s in plan.schedules]
        assert names == [
            "conv1", "conv2", "conv3", "conv4", "conv5", "fc6", "fc7", "fc8",
        ]

    def test_grouped_layers_counted(self, compiler, net):
        plan = compiler.compile_with_batch(net, 1)
        assert plan.schedule_for("conv2").gemm_count == 2
        assert plan.schedule_for("conv1").gemm_count == 1

    def test_scheduling_tlp_capped_by_spread(self, compiler, net):
        """The PSM packing fix: scheduling TLP never exceeds the grid's
        natural spread over the chip."""
        plan = compiler.compile_with_batch(net, 1)
        for schedule in plan.schedules:
            spread = math.ceil(schedule.grid_size / JETSON_TX1.n_sms)
            assert schedule.opt_tlp <= max(1, spread)

    def test_opt_sm_preserves_waves(self, compiler, net):
        plan = compiler.compile_with_batch(net, 1)
        for s in plan.schedules:
            full = math.ceil(s.grid_size / (s.opt_tlp * JETSON_TX1.n_sms))
            chosen = math.ceil(s.grid_size / (s.opt_tlp * s.opt_sm))
            assert chosen == full

    def test_perforation_reduces_conv_time(self, compiler, net):
        dense = compiler.compile_with_batch(net, 1)
        plan = PerforationPlan({layer.name: 0.6 for layer in net.conv_layers})
        fast = compiler.compile_with_batch(net, 1, plan)
        dense_conv = sum(
            s.time_s for s in dense.schedules if s.name.startswith("conv")
        )
        fast_conv = sum(
            s.time_s for s in fast.schedules if s.name.startswith("conv")
        )
        assert fast_conv < 0.8 * dense_conv

    def test_perforation_leaves_fc_untouched(self, compiler, net):
        dense = compiler.compile_with_batch(net, 1)
        plan = PerforationPlan({layer.name: 0.6 for layer in net.conv_layers})
        fast = compiler.compile_with_batch(net, 1, plan)
        assert fast.schedule_for("fc6").time_s == pytest.approx(
            dense.schedule_for("fc6").time_s
        )

    def test_global_decision_meets_budget_or_bottoms_out(self, compiler, net):
        req = TimeRequirement.interactive()
        plan = compiler.compile(net, req, data_rate_hz=50.0)
        assert plan.total_time_s <= req.budget_s or plan.batch == 1

    def test_background_batch_beats_batch_one_throughput(self, compiler, net):
        batch = compiler.background_batch(net)
        assert batch > 1
        big = compiler.compile_with_batch(net, batch)
        one = compiler.compile_with_batch(net, 1)
        assert big.throughput_ips > 1.5 * one.throughput_ips

    def test_scheduling_table_shape(self, compiler, net):
        plan = compiler.compile_with_batch(net, 1)
        table = plan.scheduling_table()
        assert set(table["conv5"]) == {"opt_sm", "opt_tlp"}

    def test_rejects_bad_batch(self, compiler, net):
        with pytest.raises(ValueError):
            compiler.compile_with_batch(net, 0)

    def test_latency_and_throughput_consistent(self, compiler, net):
        plan = compiler.compile_with_batch(net, 4)
        assert plan.throughput_ips == pytest.approx(4 / plan.latency_s)
