"""Tests for repro.core.satisfaction: SoC and its factors (Eq. 15)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.satisfaction import (
    TaskClass,
    TimeRequirement,
    soc,
    soc_accuracy,
    soc_time,
)


class TestTimeRequirement:
    def test_interactive_defaults(self):
        req = TimeRequirement.interactive()
        assert req.imperceptible_s == pytest.approx(0.1)
        assert req.unusable_s == pytest.approx(3.0)

    def test_real_time_has_no_tolerable_region(self):
        req = TimeRequirement.real_time(1 / 60)
        assert req.imperceptible_s == req.unusable_s

    def test_background_unbounded(self):
        req = TimeRequirement.background()
        assert req.is_unbounded
        assert math.isinf(req.budget_s)

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            TimeRequirement(1.0, 0.5)

    def test_rejects_zero_ti(self):
        with pytest.raises(ValueError):
            TimeRequirement(0.0, 1.0)


class TestSoCTime:
    def test_imperceptible_region(self):
        req = TimeRequirement.interactive()
        assert soc_time(0.05, req) == 1.0
        assert soc_time(0.1, req) == 1.0

    def test_unusable_region(self):
        req = TimeRequirement.interactive()
        assert soc_time(3.0, req) == 0.0
        assert soc_time(100.0, req) == 0.0

    def test_tolerable_linear_decay(self):
        """Fig. 3: satisfaction degrades linearly between T_i and T_t."""
        req = TimeRequirement.interactive()
        mid = (0.1 + 3.0) / 2
        assert soc_time(mid, req) == pytest.approx(0.5)
        assert soc_time(0.1 + 0.29, req) == pytest.approx(0.9)

    def test_real_time_cliff(self):
        req = TimeRequirement.real_time(1 / 30)
        assert soc_time(1 / 30, req) == 1.0
        assert soc_time(1 / 30 + 1e-6, req) == 0.0

    def test_background_always_satisfied(self):
        req = TimeRequirement.background()
        assert soc_time(1e6, req) == 1.0

    def test_rejects_negative_runtime(self):
        with pytest.raises(ValueError):
            soc_time(-1.0, TimeRequirement.interactive())

    @given(t=st.floats(0, 10))
    @settings(max_examples=50, deadline=None)
    def test_monotone_nonincreasing(self, t):
        req = TimeRequirement.interactive()
        assert soc_time(t, req) >= soc_time(t + 0.1, req)


class TestSoCAccuracy:
    def test_under_threshold_is_one(self):
        assert soc_accuracy(0.8, 1.0) == 1.0
        assert soc_accuracy(1.0, 1.0) == 1.0

    def test_over_threshold_ratio(self):
        assert soc_accuracy(2.0, 1.0) == pytest.approx(0.5)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            soc_accuracy(-0.1, 1.0)
        with pytest.raises(ValueError):
            soc_accuracy(1.0, 0.0)


class TestSoC:
    def test_eq15_composition(self):
        req = TimeRequirement.interactive()
        breakdown = soc(0.05, req, entropy=0.5, entropy_threshold=1.0,
                        energy_joules=2.0)
        assert breakdown.value == pytest.approx(1.0 * 1.0 / 2.0)
        assert breakdown.meets_satisfaction

    def test_unusable_zeroes_soc(self):
        req = TimeRequirement.real_time(0.01)
        breakdown = soc(0.02, req, 0.5, 1.0, 1.0)
        assert breakdown.value == 0.0
        assert not breakdown.meets_satisfaction

    def test_less_energy_more_satisfaction(self):
        req = TimeRequirement.background()
        low = soc(1.0, req, 0.5, 1.0, 0.5)
        high = soc(1.0, req, 0.5, 1.0, 2.0)
        assert low.value > high.value

    def test_rejects_zero_energy(self):
        with pytest.raises(ValueError):
            soc(1.0, TimeRequirement.background(), 0.5, 1.0, 0.0)

    def test_task_class_constants(self):
        assert set(TaskClass.ALL) == {
            "interactive",
            "real-time",
            "background",
        }
