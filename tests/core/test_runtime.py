"""Tests for the runtime kernel manager, monitor and calibrator."""

import pytest

from repro.core.offline import OfflineCompiler
from repro.core.runtime import (
    AccuracyTuner,
    AnalyticEntropyModel,
    Calibrator,
    RuntimeKernelManager,
    TuningTable,
    UncertaintyMonitor,
)
from repro.gpu import JETSON_TX1, K20C
from repro.nn.models import alexnet


@pytest.fixture(scope="module")
def compiled():
    return OfflineCompiler(K20C).compile_with_batch(alexnet(), 1)


@pytest.fixture(scope="module")
def table():
    net = alexnet()
    compiler = OfflineCompiler(JETSON_TX1)
    tuner = AccuracyTuner(compiler, net, AnalyticEntropyModel(net))
    return tuner.tune(batch=1, entropy_threshold=1.4, max_iterations=25)


class TestRuntimeKernelManager:
    def test_execute_covers_all_layers(self, compiled):
        report = RuntimeKernelManager(K20C).execute(compiled)
        assert [layer.name for layer in report.layers] == [
            s.name for s in compiled.schedules
        ]
        assert report.total_time_s > 0
        assert report.total_energy_joules > 0

    def test_psm_confines_to_opt_sm(self, compiled):
        report = RuntimeKernelManager(K20C, power_gating=True).execute(compiled)
        for layer, schedule in zip(report.layers, compiled.schedules):
            assert layer.sms_used <= schedule.opt_sm
            assert layer.powered_sms <= max(schedule.opt_sm, layer.sms_used)

    def test_gating_saves_energy(self, compiled):
        gated = RuntimeKernelManager(
            K20C, power_gating=True, use_priority_sm=True
        ).execute(compiled)
        ungated = RuntimeKernelManager(
            K20C, power_gating=False, use_priority_sm=False
        ).execute(compiled)
        assert gated.total_energy_joules < ungated.total_energy_joules

    def test_gating_costs_little_time(self, compiled):
        """The spread-capped PSM packing keeps the latency overhead of
        SM confinement small (<25%)."""
        gated = RuntimeKernelManager(
            K20C, power_gating=True, use_priority_sm=True
        ).execute(compiled)
        ungated = RuntimeKernelManager(
            K20C, power_gating=False, use_priority_sm=False
        ).execute(compiled)
        assert gated.total_time_s < 1.25 * ungated.total_time_s

    def test_time_model_prediction_quality(self, compiled):
        """The offline time model tracks the simulator within 40% per
        layer (it is a steady-state approximation)."""
        report = RuntimeKernelManager(K20C).execute(compiled)
        for layer in report.layers:
            assert layer.prediction_error < 0.4

    def test_analytic_fallback_for_huge_grids(self):
        plan = OfflineCompiler(K20C).compile_with_batch(alexnet(), 64)
        manager = RuntimeKernelManager(K20C, max_sim_ctas=64)
        report = manager.execute(plan)
        assert report.total_time_s > 0


class TestUncertaintyMonitor:
    def test_mean_over_window(self):
        monitor = UncertaintyMonitor(threshold=1.0, window=3)
        monitor.observe(0.5)
        monitor.observe(1.5)
        assert monitor.mean_entropy == pytest.approx(1.0)

    def test_violation_detection(self):
        monitor = UncertaintyMonitor(threshold=1.0, window=2)
        assert not monitor.observe(0.9)
        assert monitor.observe(1.5)  # mean 1.2 > 1.0

    def test_window_slides(self):
        monitor = UncertaintyMonitor(threshold=1.0, window=2)
        monitor.observe(5.0)
        monitor.observe(0.1)
        monitor.observe(0.1)
        assert not monitor.exceeded()

    def test_single_outlier_smoothed(self):
        monitor = UncertaintyMonitor(threshold=1.0, window=8)
        for _ in range(7):
            monitor.observe(0.5)
        assert not monitor.observe(3.0)

    def test_reset(self):
        monitor = UncertaintyMonitor(threshold=1.0)
        monitor.observe(5.0)
        monitor.reset()
        assert monitor.mean_entropy is None

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            UncertaintyMonitor(threshold=0.0)
        with pytest.raises(ValueError):
            UncertaintyMonitor(threshold=1.0, window=0)
        monitor = UncertaintyMonitor(threshold=1.0)
        with pytest.raises(ValueError):
            monitor.observe(-1.0)


class TestCalibrator:
    def test_starts_at_fastest(self, table):
        calibrator = Calibrator(table, threshold=1.4, window=2)
        assert calibrator.index == len(table) - 1

    def test_backtracks_on_sustained_violation(self, table):
        """Section IV.C.3: uncertainty above threshold walks the path
        back toward the dense network."""
        calibrator = Calibrator(table, threshold=1.4, window=2)
        start = calibrator.index
        for _ in range(2):
            calibrator.observe(2.5)
        assert calibrator.index < start

    def test_reaches_dense_under_relentless_violation(self, table):
        calibrator = Calibrator(table, threshold=1.4, window=1)
        for _ in range(len(table) + 3):
            calibrator.observe(5.0)
        assert calibrator.at_dense
        # stays pinned at dense
        calibrator.observe(5.0)
        assert calibrator.index == 0

    def test_holds_when_clean(self, table):
        calibrator = Calibrator(
            table, threshold=1.4, window=4, allow_advance=False
        )
        start = calibrator.index
        for _ in range(10):
            calibrator.observe(0.2)
        assert calibrator.index == start

    def test_advances_back_when_inputs_get_easy(self, table):
        if len(table) < 2:
            pytest.skip("tuning path too short")
        calibrator = Calibrator(table, threshold=1.4, window=2)
        # force one backtrack
        calibrator.observe(9.0)
        backed = calibrator.index
        # then a stream of easy inputs
        for _ in range(12):
            calibrator.observe(0.05)
        assert calibrator.index >= backed

    def test_history_records_actions(self, table):
        calibrator = Calibrator(table, threshold=1.4, window=1)
        calibrator.observe(9.0)
        assert calibrator.history[-1].action == "backtrack"

    def test_rejects_empty_table(self):
        with pytest.raises(ValueError):
            Calibrator(TuningTable(entries=[]), threshold=1.0)
