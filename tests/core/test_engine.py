"""Tests for repro.core.engine: the unified compile/execute seam.

Covers the satellite property requirements (fingerprints are stable,
hashable and collision-free across distinct configurations), the
cached-vs-uncached equivalence over a served trace, the hook bus, and
the fleet-sharing behaviour.
"""

import itertools

import pytest

from repro.core import ApplicationSpec, PervasiveCNN, TaskClass
from repro.core.engine import (
    EngineStats,
    ExecuteKey,
    ExecutionEngine,
    HookBus,
    network_fingerprint,
    perforation_fingerprint,
    plan_fingerprint,
)
from repro.core.runtime import InferenceServer
from repro.gpu import JETSON_TX1, K20C
from repro.nn import alexnet, pcnn_net
from repro.nn.perforation import RATE_LADDER, PerforationPlan
from repro.workloads import interactive_trace


def _deploy(engine=None, arch=JETSON_TX1):
    pcnn = PervasiveCNN(arch, engine=engine)
    spec = ApplicationSpec(
        "age-detection", TaskClass.INTERACTIVE, data_rate_hz=50.0
    )
    return pcnn.deploy(alexnet(), spec, max_tuning_iterations=4)


class TestPerforationFingerprint:
    def test_dense_plans_share_fingerprint(self):
        assert perforation_fingerprint(PerforationPlan.dense()) == "dense"
        assert perforation_fingerprint(PerforationPlan({})) == "dense"

    def test_zero_rate_equals_absent(self):
        explicit = PerforationPlan({"conv1": 0.0})
        assert perforation_fingerprint(explicit) == "dense"

    def test_insertion_order_irrelevant(self):
        a = PerforationPlan({"conv1": 0.1, "conv2": 0.3})
        b = PerforationPlan({"conv2": 0.3, "conv1": 0.1})
        assert perforation_fingerprint(a) == perforation_fingerprint(b)

    def test_stable_across_calls(self):
        plan = PerforationPlan({"conv1": 0.2, "conv3": 0.5})
        assert perforation_fingerprint(plan) == perforation_fingerprint(plan)

    def test_collision_free_across_ladder(self):
        """Every (layer, rate) combination over the tuner's ladder maps
        to a distinct fingerprint."""
        layers = ["conv1", "conv2", "conv3"]
        seen = {}
        for layer, rate in itertools.product(layers, RATE_LADDER[1:]):
            plan = PerforationPlan({layer: rate})
            fp = perforation_fingerprint(plan)
            assert fp not in seen, "collision with %r" % (seen.get(fp),)
            seen[fp] = (layer, rate)
        # multi-layer plans are distinct from every single-layer plan
        multi = PerforationPlan({"conv1": 0.1, "conv2": 0.1})
        assert perforation_fingerprint(multi) not in seen

    def test_rate_precision_preserved(self):
        a = PerforationPlan({"conv1": 0.1})
        b = PerforationPlan({"conv1": 0.1 + 1e-9})
        assert perforation_fingerprint(a) != perforation_fingerprint(b)


class TestNetworkFingerprint:
    def test_stable(self):
        assert network_fingerprint(alexnet()) == network_fingerprint(alexnet())

    def test_distinct_networks_distinct(self):
        fps = {
            network_fingerprint(net)
            for net in (alexnet(), pcnn_net("small"), pcnn_net("medium"))
        }
        assert len(fps) == 3

    def test_same_name_different_structure(self):
        """A renamed copy is not enough: structure feeds the digest."""
        small = pcnn_net("small")
        large = pcnn_net("large")
        large.name = small.name
        assert network_fingerprint(small) != network_fingerprint(large)


class TestCacheKeys:
    def test_keys_hashable_and_equal_by_value(self):
        engine = ExecutionEngine(JETSON_TX1)
        k1 = engine.compile_key(alexnet(), 4)
        k2 = engine.compile_key(alexnet(), 4)
        assert k1 == k2 and hash(k1) == hash(k2)
        assert len({k1, k2}) == 1

    def test_keys_distinct_across_configurations(self):
        engine = ExecutionEngine(JETSON_TX1)
        net = alexnet()
        perf = PerforationPlan({"conv2": 0.3})
        keys = {
            engine.compile_key(net, 1),
            engine.compile_key(net, 2),
            engine.compile_key(net, 1, perf),
            engine.compile_key(net, 1, arch=K20C),
            engine.compile_key(pcnn_net("small"), 1),
        }
        assert len(keys) == 5

    def test_plan_fingerprint_distinguishes_configurations(self):
        engine = ExecutionEngine(JETSON_TX1)
        net = alexnet()
        plans = [
            engine.compile_with_batch(net, 1),
            engine.compile_with_batch(net, 2),
            engine.compile_with_batch(net, 1, PerforationPlan({"conv2": 0.3})),
            engine.compile_with_batch(net, 1, arch=K20C),
        ]
        fps = {plan_fingerprint(p) for p in plans}
        assert len(fps) == len(plans)

    def test_plan_fingerprint_deterministic(self):
        engine = ExecutionEngine(JETSON_TX1)
        plan = engine.compile_with_batch(alexnet(), 2)
        assert plan_fingerprint(plan) == plan_fingerprint(plan)
        uncached = ExecutionEngine(JETSON_TX1, cache_plans=False)
        again = uncached.compile_with_batch(alexnet(), 2)
        assert plan_fingerprint(plan) == plan_fingerprint(again)

    def test_execute_key_carries_backend_and_modes(self):
        a = ExecuteKey("fp", True, True, "cublas")
        b = ExecuteKey("fp", True, True, "nervana")
        c = ExecuteKey("fp", False, True, "cublas")
        assert len({a, b, c}) == 3


class TestCompileCache:
    def test_hit_returns_same_plan(self):
        engine = ExecutionEngine(JETSON_TX1)
        first = engine.compile_with_batch(alexnet(), 2)
        second = engine.compile_with_batch(alexnet(), 2)
        assert first is second
        assert engine.stats.compile_calls == 2
        assert engine.stats.compile_misses == 1
        assert engine.stats.compile_hit_rate == pytest.approx(0.5)

    def test_requirement_compile_memoizes_batch_decision(self):
        engine = ExecutionEngine(JETSON_TX1)
        spec = ApplicationSpec("t", TaskClass.INTERACTIVE, data_rate_hz=50.0)
        from repro.core.user_input import infer_requirement

        req = infer_requirement(spec)
        first = engine.compile(alexnet(), req.time, data_rate_hz=50.0)
        misses = engine.stats.compile_misses
        second = engine.compile(alexnet(), req.time, data_rate_hz=50.0)
        assert first is second
        assert engine.stats.compile_misses == misses

    def test_disabled_cache_recompiles(self):
        engine = ExecutionEngine(JETSON_TX1, cache_plans=False)
        first = engine.compile_with_batch(alexnet(), 1)
        second = engine.compile_with_batch(alexnet(), 1)
        assert first is not second
        assert engine.stats.compile_misses == 2

    def test_invalidate_scoped_and_full(self):
        engine = ExecutionEngine(JETSON_TX1)
        engine.compile_with_batch(alexnet(), 1)
        engine.compile_with_batch(pcnn_net("small"), 1)
        assert engine.cached_plans == 2
        removed = engine.invalidate(network=alexnet())
        assert removed >= 1
        assert engine.cached_plans == 1
        engine.invalidate()
        assert engine.cached_plans == 0


class TestExecuteCache:
    def test_cached_and_uncached_reports_identical(self):
        cached = ExecutionEngine(JETSON_TX1)
        uncached = ExecutionEngine(JETSON_TX1, cache_reports=False)
        plan = cached.compile_with_batch(alexnet(), 2)
        warm = cached.execute(plan)
        hit = cached.execute(plan)
        assert hit is warm  # shared artifact, trivially bit-identical
        cold_a = uncached.execute(plan)
        cold_b = uncached.execute(plan)
        assert cold_a is not cold_b
        assert cold_a == cold_b  # dataclass equality: field-for-field
        assert warm == cold_a
        assert cached.stats.execute_hit_rate == pytest.approx(0.5)

    def test_modes_do_not_share_entries(self):
        engine = ExecutionEngine(JETSON_TX1)
        plan = engine.compile_with_batch(alexnet(), 1)
        gated = engine.execute(plan, power_gating=True)
        ungated = engine.execute(plan, power_gating=False)
        assert engine.cached_reports == 2
        assert ungated.total_energy_joules > gated.total_energy_joules

    def test_served_trace_equivalence(self):
        """A full served trace is bit-identical with and without the
        execution cache."""
        dep_cached = _deploy()
        dep_uncached = _deploy(
            engine=ExecutionEngine(
                JETSON_TX1, cache_plans=False, cache_reports=False
            )
        )
        trace = interactive_trace(n_requests=23, think_time_s=0.04, seed=7)
        report_cached = InferenceServer(dep_cached).serve(trace)
        report_uncached = InferenceServer(dep_uncached).serve(trace)
        assert report_cached.requests == report_uncached.requests
        assert report_cached.total_energy_j == report_uncached.total_energy_j
        assert report_cached.batches == report_uncached.batches
        stats = dep_cached.engine.stats
        assert stats.execute_hits > 0
        assert stats.calibrations == report_cached.batches

    def test_per_plan_call_counts_and_simulated_time(self):
        engine = ExecutionEngine(JETSON_TX1)
        plan = engine.compile_with_batch(alexnet(), 1)
        report = engine.execute(plan)
        engine.execute(plan)
        engine.execute(plan)
        fp = plan_fingerprint(plan)
        assert engine.stats.plan_use_counts[fp] == 3
        assert engine.stats.simulated_time_s == pytest.approx(
            3 * report.total_time_s, rel=1e-12
        )


class TestHookBus:
    def test_unknown_event_rejected(self):
        bus = HookBus()
        with pytest.raises(ValueError):
            bus.subscribe("on_teardown", lambda **kw: None)
        with pytest.raises(ValueError):
            bus.emit("on_teardown")

    def test_lifecycle_events_fire(self):
        engine = ExecutionEngine(JETSON_TX1)
        seen = []
        for event in HookBus.EVENTS:
            engine.hooks.subscribe(
                event, lambda _event=event, **kw: seen.append(_event)
            )
        plan = engine.compile_with_batch(alexnet(), 1)
        engine.compile_with_batch(alexnet(), 1)
        engine.execute(plan)
        engine.execute(plan)
        assert seen.count("on_compile") == 1
        assert seen.count("on_cache_hit") == 2  # one compile, one execute
        assert seen.count("on_execute") == 2
        dep = _deploy(engine=engine)
        dep.process_request()
        assert seen.count("on_calibrate") == 1

    def test_unsubscribe(self):
        engine = ExecutionEngine(JETSON_TX1)
        calls = []
        cb = engine.hooks.subscribe(
            "on_compile", lambda **kw: calls.append(1)
        )
        engine.compile_with_batch(alexnet(), 1)
        engine.hooks.unsubscribe("on_compile", cb)
        engine.compile_with_batch(alexnet(), 2)
        assert len(calls) == 1

    def test_stats_is_detachable_subscriber(self):
        bus = HookBus()
        stats = EngineStats().attach(bus)
        bus.emit("on_cache_hit", kind="compile", key=None)
        assert stats.compile_calls == 1


class TestFleetSharing:
    def test_one_engine_many_archs(self):
        engine = ExecutionEngine()
        tx1 = engine.compile_with_batch(alexnet(), 1, arch=JETSON_TX1)
        k20 = engine.compile_with_batch(alexnet(), 1, arch=K20C)
        assert tx1.arch is JETSON_TX1 and k20.arch is K20C
        assert engine.cached_plans == 2
        # per-arch reuse survives in the shared engine
        assert engine.compile_with_batch(alexnet(), 1, arch=JETSON_TX1) is tx1
        engine.execute(tx1)
        engine.execute(k20)
        assert engine.cached_reports == 2

    def test_no_default_arch_requires_explicit(self):
        engine = ExecutionEngine()
        with pytest.raises(ValueError):
            engine.compile_with_batch(alexnet(), 1)

    def test_donated_compiler_binds_platform(self):
        from repro.core.offline import OfflineCompiler

        compiler = OfflineCompiler(JETSON_TX1)
        engine = ExecutionEngine(compiler=compiler)
        assert engine.default_arch is JETSON_TX1
        assert engine.compiler_for() is compiler
        with pytest.raises(ValueError):
            ExecutionEngine(arch=K20C, compiler=compiler)
