"""CheckpointStore: digest keys, atomic round-trips, graceful misses."""

import dataclasses
import pickle
from dataclasses import dataclass
from typing import Optional

from repro.resilience import CheckpointStore, ProcFaultPlan


@dataclass(frozen=True)
class Spec:
    shard_id: int
    seed: int = 0
    proc_faults: Optional[object] = None
    attempt: int = 1
    payload: str = "work"


class TestDigest:
    def test_stable_for_equal_inputs(self):
        assert CheckpointStore.spec_digest(
            Spec(shard_id=1, seed=4)
        ) == CheckpointStore.spec_digest(Spec(shard_id=1, seed=4))

    def test_sensitive_to_inputs(self):
        a = CheckpointStore.spec_digest(Spec(shard_id=1, seed=4))
        b = CheckpointStore.spec_digest(Spec(shard_id=1, seed=5))
        c = CheckpointStore.spec_digest(Spec(shard_id=1, payload="other"))
        assert len({a, b, c}) == 3

    def test_attempt_and_faults_normalized_out(self):
        base = CheckpointStore.spec_digest(Spec(shard_id=0))
        retried = CheckpointStore.spec_digest(Spec(shard_id=0, attempt=3))
        chaotic = CheckpointStore.spec_digest(
            Spec(shard_id=0, proc_faults=ProcFaultPlan(crash_rate=0.5))
        )
        assert base == retried == chaotic


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        spec = Spec(shard_id=2, seed=9)
        store.save(spec, {"answer": 42})
        assert store.load(spec) == {"answer": 42}

    def test_path_embeds_shard_and_digest(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        spec = Spec(shard_id=3)
        path = store.save(spec, "result")
        assert "shard-03-" in path
        assert CheckpointStore.spec_digest(spec)[:12] in path

    def test_missing_file_is_a_miss(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        assert store.load(Spec(shard_id=0)) is None

    def test_changed_spec_is_a_miss(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save(Spec(shard_id=0, seed=1), "stale")
        assert store.load(Spec(shard_id=0, seed=2)) is None

    def test_corrupt_file_is_a_miss_not_an_error(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        spec = Spec(shard_id=0)
        path = store.save(spec, "good")
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert store.load(spec) is None

    def test_wrong_payload_shape_is_a_miss(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        spec = Spec(shard_id=0)
        with open(store.path_for(spec), "wb") as handle:
            pickle.dump(["not", "a", "dict"], handle)
        assert store.load(spec) is None

    def test_stale_digest_inside_payload_is_a_miss(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        spec = Spec(shard_id=0)
        with open(store.path_for(spec), "wb") as handle:
            pickle.dump(
                {"digest": "deadbeef", "shard_id": 0, "result": "old"},
                handle,
            )
        assert store.load(spec) is None

    def test_save_overwrites_atomically(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        spec = Spec(shard_id=1)
        store.save(spec, "first")
        store.save(spec, "second")
        assert store.load(spec) == "second"
        assert not list(tmp_path.glob("*.tmp"))

    def test_non_dataclass_spec_digests_too(self, tmp_path):
        # Duck-typing floor: anything picklable with a shard_id works.
        digest = CheckpointStore.spec_digest(("tuple", "spec"))
        assert len(digest) == 40


class TestManifest:
    def test_manifest_round_trips_as_json(self, tmp_path):
        import json

        store = CheckpointStore(str(tmp_path))
        path = store.write_manifest({"records": [], "counters": {}})
        with open(path) as handle:
            assert json.load(handle) == {"records": [], "counters": {}}
