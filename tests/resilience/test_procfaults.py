"""ProcFaultPlan: deterministic decisions, forced pins, tampering."""

import dataclasses

import pytest

from repro.resilience import FAULT_KINDS, ProcFaultPlan
from repro.resilience.procfaults import TAMPER_KINDS, _unit
from repro.serving.report import RouterReport
from repro.serving.shard import ShardResult


class TestDecide:
    def test_pure_in_seed_shard_attempt(self):
        plan = ProcFaultPlan(seed=5, crash_rate=0.4, corrupt_rate=0.3)
        decisions = [
            plan.decide(shard, attempt)
            for shard in range(8)
            for attempt in (1,)
        ]
        again = ProcFaultPlan(seed=5, crash_rate=0.4, corrupt_rate=0.3)
        assert decisions == [
            again.decide(shard, 1) for shard in range(8)
        ]

    def test_seed_changes_decisions(self):
        a = ProcFaultPlan(seed=1, crash_rate=0.5)
        b = ProcFaultPlan(seed=2, crash_rate=0.5)
        assert any(
            a.decide(shard, 1) != b.decide(shard, 1)
            for shard in range(32)
        )

    def test_forced_pins_override_rates(self):
        plan = ProcFaultPlan(seed=0, forced=((3, "hang"),))
        assert plan.decide(3, 1) == "hang"
        assert plan.decide(0, 1) is None

    def test_attempts_beyond_budget_run_clean(self):
        plan = ProcFaultPlan(
            seed=0, forced=((0, "crash"),), max_faulty_attempts=2
        )
        assert plan.decide(0, 1) == "crash"
        assert plan.decide(0, 2) == "crash"
        assert plan.decide(0, 3) is None

    def test_zero_faulty_attempts_is_inert(self):
        plan = ProcFaultPlan(
            seed=0, crash_rate=1.0, max_faulty_attempts=0
        )
        assert plan.decide(0, 1) is None

    def test_rate_one_always_fires(self):
        plan = ProcFaultPlan(seed=9, crash_rate=1.0)
        assert all(plan.decide(shard, 1) == "crash" for shard in range(16))

    def test_rates_partition_the_draw(self):
        plan = ProcFaultPlan(
            seed=4, crash_rate=0.2, hang_rate=0.2, corrupt_rate=0.2,
            truncate_rate=0.2, forge_rate=0.2,
        )
        kinds = {plan.decide(shard, 1) for shard in range(200)}
        assert kinds <= set(FAULT_KINDS)
        assert len(kinds) >= 3  # 200 draws cover most of the palette

    def test_unit_draw_is_in_range(self):
        draws = [_unit(3, shard, 1) for shard in range(100)]
        assert all(0.0 <= draw < 1.0 for draw in draws)


class TestValidation:
    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            ProcFaultPlan(crash_rate=0.7, hang_rate=0.6)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ProcFaultPlan(crash_rate=-0.1)

    def test_unknown_forced_kind_rejected(self):
        with pytest.raises(ValueError):
            ProcFaultPlan(forced=((0, "meltdown"),))

    def test_nonpositive_hang_rejected(self):
        with pytest.raises(ValueError):
            ProcFaultPlan(hang_s=0.0)

    def test_may_hang_property(self):
        assert not ProcFaultPlan(crash_rate=0.5).may_hang
        assert ProcFaultPlan(hang_rate=0.1).may_hang
        assert ProcFaultPlan(forced=((2, "hang"),)).may_hang


def _result():
    report = RouterReport(horizon_s=4.0)
    return ShardResult(
        shard_id=0,
        seed=7,
        report=report,
        declared_fingerprint=report.fingerprint(),
    )


class TestTamper:
    def test_truncate_discards_the_result(self):
        plan = ProcFaultPlan()
        mangled = plan.tamper("truncate", _result())
        assert not dataclasses.is_dataclass(mangled)
        assert mangled["truncated"] is True

    def test_corrupt_leaves_a_stale_declared_fingerprint(self):
        plan = ProcFaultPlan()
        result = _result()
        mangled = plan.tamper("corrupt", result)
        assert mangled.declared_fingerprint == result.declared_fingerprint
        assert mangled.report.fingerprint() != mangled.declared_fingerprint

    def test_forge_redeclares_consistently(self):
        plan = ProcFaultPlan()
        result = _result()
        mangled = plan.tamper("forge", result)
        assert mangled.report.fingerprint() == mangled.declared_fingerprint
        assert mangled.declared_fingerprint != result.declared_fingerprint

    def test_tamper_rejects_non_tamper_kinds(self):
        plan = ProcFaultPlan()
        with pytest.raises(ValueError):
            plan.tamper("crash", _result())

    def test_tamper_kinds_are_the_post_completion_subset(self):
        assert set(TAMPER_KINDS) < set(FAULT_KINDS)
