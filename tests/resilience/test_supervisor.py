"""ShardSupervisor: retry, integrity, witness, exhaustion, spawn.

The toy task/spec/result here are deliberately tiny dataclasses that
satisfy the supervisor's duck-typed contract (``shard_id``, ``seed``,
``attempt``, ``proc_faults``, a fingerprintable ``report``) without
building fleets, so each case isolates one supervision behaviour.
Everything is module-top-level so the spawn tests can pickle it.
"""

import os
import time
from dataclasses import dataclass, field
from typing import Optional

import pytest

from repro.resilience import (
    CheckpointStore,
    FAILURE_KINDS,
    ProcFaultPlan,
    ShardFailure,
    ShardRunRecord,
    ShardSupervisor,
    SupervisionReport,
    SupervisorConfig,
    merge_records,
)


@dataclass(frozen=True)
class ToyReport:
    horizon_s: float = 0.0
    payload: int = 0

    def fingerprint(self) -> str:
        return "fp:%r:%r" % (self.horizon_s, self.payload)


@dataclass(frozen=True)
class ToySpec:
    shard_id: int
    seed: int = 0
    proc_faults: Optional[object] = None
    attempt: int = 1
    #: The task raises on attempts <= fail_times (transient errors).
    fail_times: int = 0
    #: Seconds the task sleeps before answering (spawn timeout tests).
    sleep_s: float = 0.0


@dataclass(frozen=True)
class ToyResult:
    shard_id: int
    seed: int
    report: ToyReport
    attempt: int = 1
    declared_fingerprint: Optional[str] = None


def toy_task(spec: ToySpec) -> ToyResult:
    """A miniature ``run_shard``: same fault-plan contract, no fleet."""
    plan = spec.proc_faults
    fault = (
        plan.decide(spec.shard_id, spec.attempt)
        if plan is not None
        else None
    )
    if fault == "crash":
        os._exit(plan.crash_exit_code)
    if fault == "hang":
        time.sleep(plan.hang_s)
    if spec.sleep_s:
        time.sleep(spec.sleep_s)
    if spec.attempt <= spec.fail_times:
        raise RuntimeError("transient failure on attempt %d" % spec.attempt)
    report = ToyReport(payload=100 * spec.shard_id + spec.seed)
    result = ToyResult(
        shard_id=spec.shard_id,
        seed=spec.seed,
        report=report,
        attempt=spec.attempt,
        declared_fingerprint=report.fingerprint(),
    )
    if fault in ("corrupt", "truncate", "forge"):
        result = plan.tamper(fault, result)
    return result


def supervise(specs, **kwargs):
    inline = kwargs.pop("inline", True)
    return ShardSupervisor(toy_task, inline=inline, **kwargs).run(specs)


class TestInlineSupervision:
    def test_clean_run_accepts_everything(self):
        outcome = supervise([ToySpec(shard_id=k, seed=7) for k in range(3)])
        assert sorted(outcome.results) == [0, 1, 2]
        assert all(
            record.status == "ok" for record in outcome.report.records
        )
        assert outcome.report.counters()["retries"] == 0

    def test_injected_crash_is_preempted_and_retried(self):
        plan = ProcFaultPlan(seed=1, forced=((1, "crash"),))
        outcome = supervise(
            [ToySpec(shard_id=k, proc_faults=plan) for k in range(2)]
        )
        record = outcome.report.records[1]
        assert record.status == "retried"
        assert record.attempts == 2
        (failure,) = record.failures
        assert failure.kind == "crashed"
        assert failure.exitcode == plan.crash_exit_code
        # Attempt-invariance: the retried shard's accepted result is
        # exactly what a fault-free run produces.
        clean = supervise([ToySpec(shard_id=1)])
        assert (
            outcome.results[1].report.fingerprint()
            == clean.results[1].report.fingerprint()
        )

    def test_injected_hang_synthesizes_a_timeout(self):
        plan = ProcFaultPlan(seed=1, forced=((0, "hang"),), hang_s=3600.0)
        outcome = supervise(
            [ToySpec(shard_id=0, proc_faults=plan)],
            config=SupervisorConfig(timeout_s=5.0),
        )
        (failure,) = outcome.report.records[0].failures
        assert failure.kind == "timeout"
        assert outcome.report.records[0].status == "retried"

    def test_hang_capable_plan_without_timeout_is_rejected(self):
        plan = ProcFaultPlan(hang_rate=0.5)
        with pytest.raises(ValueError, match="timeout"):
            supervise([ToySpec(shard_id=0, proc_faults=plan)])

    def test_corrupt_result_trips_integrity_validation(self):
        plan = ProcFaultPlan(seed=1, forced=((0, "corrupt"),))
        outcome = supervise([ToySpec(shard_id=0, proc_faults=plan)])
        (failure,) = outcome.report.records[0].failures
        assert failure.kind == "integrity"
        assert "declared fingerprint" in failure.detail
        assert outcome.results[0].report.payload == 0

    def test_truncated_result_trips_schema_validation(self):
        plan = ProcFaultPlan(seed=1, forced=((0, "truncate"),))
        outcome = supervise([ToySpec(shard_id=0, proc_faults=plan)])
        (failure,) = outcome.report.records[0].failures
        assert failure.kind == "integrity"
        assert "schema" in failure.detail

    def test_forged_result_slips_past_validation_without_witness(self):
        plan = ProcFaultPlan(seed=1, forced=((0, "forge"),))
        outcome = supervise([ToySpec(shard_id=0, proc_faults=plan)])
        # Self-consistent forgery: accepted, silently wrong.
        assert outcome.results[0].report.horizon_s == 1.0
        assert outcome.report.records[0].status == "ok"

    def test_witness_quorum_catches_forged_results(self):
        plan = ProcFaultPlan(seed=1, forced=((0, "forge"),))
        outcome = supervise(
            [ToySpec(shard_id=0, proc_faults=plan)],
            config=SupervisorConfig(witness=True),
        )
        (failure,) = outcome.report.records[0].failures
        assert failure.kind == "witness"
        # The retry ran clean and the witness agreed.
        assert outcome.results[0].report.horizon_s == 0.0

    def test_task_exception_is_an_error_failure(self):
        outcome = supervise([ToySpec(shard_id=0, fail_times=1)])
        (failure,) = outcome.report.records[0].failures
        assert failure.kind == "error"
        assert "transient failure" in failure.detail
        assert outcome.report.records[0].status == "retried"

    def test_exhausted_shard_is_failed_not_raised(self):
        outcome = supervise(
            [ToySpec(shard_id=0, fail_times=99), ToySpec(shard_id=1)],
            config=SupervisorConfig(max_attempts=2),
        )
        assert 0 not in outcome.results
        assert 1 in outcome.results
        record = outcome.report.records[0]
        assert record.status == "failed"
        assert record.attempts == 2
        assert len(record.failures) == 2
        assert outcome.report.failed_shards == (0,)

    def test_duplicate_shard_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            supervise([ToySpec(shard_id=0), ToySpec(shard_id=0)])

    def test_failure_kinds_closed_set(self):
        plan = ProcFaultPlan(seed=1, forced=((0, "crash"), (1, "corrupt")))
        outcome = supervise(
            [ToySpec(shard_id=k, proc_faults=plan) for k in range(3)]
        )
        for failure in outcome.report.failures:
            assert failure.kind in FAILURE_KINDS


class TestCheckpointIntegration:
    def test_second_run_resumes_completed_shards(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        specs = [ToySpec(shard_id=k, seed=3) for k in range(2)]
        first = supervise(specs, checkpoint=store)
        assert all(r.status == "ok" for r in first.report.records)
        second = supervise(specs, checkpoint=store)
        assert all(
            record.status == "resumed" and record.attempts == 0
            for record in second.report.records
        )
        assert (
            second.results[1].report.fingerprint()
            == first.results[1].report.fingerprint()
        )

    def test_failed_shards_are_not_checkpointed(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        specs = [
            ToySpec(shard_id=0, seed=3, fail_times=99),
            ToySpec(shard_id=1, seed=3),
        ]
        first = supervise(
            specs, checkpoint=store, config=SupervisorConfig(max_attempts=1)
        )
        assert first.report.failed_shards == (0,)
        # The rerun resumes shard 1 and re-executes (only) shard 0.
        healthy = [ToySpec(shard_id=0, seed=3), ToySpec(shard_id=1, seed=3)]
        second = supervise(healthy, checkpoint=store)
        statuses = {
            record.shard_id: record.status
            for record in second.report.records
        }
        assert statuses == {0: "ok", 1: "resumed"}

    def test_manifest_written(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        supervise([ToySpec(shard_id=0)], checkpoint=store)
        assert (tmp_path / "manifest.json").exists()


class TestMergeRecords:
    def test_disjoint_ids_concatenate(self):
        base = (ShardRunRecord(shard_id=0, status="ok", attempts=1),)
        extra = (ShardRunRecord(shard_id=1, status="ok", attempts=1),)
        merged = merge_records(base, extra)
        assert [record.shard_id for record in merged] == [0, 1]

    def test_same_shard_folds_attempts_and_failures(self):
        failure = ShardFailure(
            shard_id=2, attempt=1, kind="crashed", detail="boom"
        )
        base = (
            ShardRunRecord(
                shard_id=2, status="retried", attempts=2,
                failures=(failure,),
            ),
        )
        extra = (ShardRunRecord(shard_id=2, status="ok", attempts=1),)
        (merged,) = merge_records(base, extra)
        assert merged.attempts == 3
        assert merged.failures == (failure,)
        assert merged.status == "retried"

    def test_followup_failure_dominates(self):
        base = (ShardRunRecord(shard_id=0, status="ok", attempts=1),)
        extra = (ShardRunRecord(shard_id=0, status="failed", attempts=3),)
        (merged,) = merge_records(base, extra)
        assert merged.status == "failed"


class TestReportShapes:
    def test_counters_and_to_dict(self):
        plan = ProcFaultPlan(seed=1, forced=((0, "crash"),))
        outcome = supervise(
            [ToySpec(shard_id=k, proc_faults=plan) for k in range(2)]
        )
        counters = outcome.report.counters()
        assert counters["attempts"] == 3
        assert counters["retries"] == 1
        assert counters["failures_crashed"] == 1
        data = outcome.report.to_dict()
        assert data["counters"] == counters
        assert len(data["records"]) == 2
        assert data["records"][0]["failures"][0]["kind"] == "crashed"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SupervisorConfig(timeout_s=0.0)
        with pytest.raises(ValueError):
            SupervisorConfig(max_attempts=0)
        with pytest.raises(ValueError):
            SupervisorConfig(kill_grace_s=0.0)
        with pytest.raises(ValueError):
            ShardSupervisor(toy_task, processes=0)


class TestSpawnSupervision:
    """Real processes: actual kills, actual timeouts, same results."""

    def test_spawn_recovers_a_real_self_kill(self):
        plan = ProcFaultPlan(seed=1, forced=((1, "crash"),))
        outcome = supervise(
            [ToySpec(shard_id=k, seed=5, proc_faults=plan) for k in range(2)],
            inline=False,
            config=SupervisorConfig(timeout_s=60.0),
        )
        record = outcome.report.records[1]
        assert record.status == "retried"
        assert record.failures[0].kind == "crashed"
        assert record.failures[0].exitcode == plan.crash_exit_code
        clean = supervise([ToySpec(shard_id=1, seed=5)])
        assert (
            outcome.results[1].report.fingerprint()
            == clean.results[1].report.fingerprint()
        )

    def test_spawn_kills_a_real_hang_at_the_timeout(self):
        plan = ProcFaultPlan(seed=1, forced=((0, "hang"),), hang_s=120.0)
        outcome = supervise(
            [ToySpec(shard_id=0, seed=5, proc_faults=plan)],
            inline=False,
            config=SupervisorConfig(timeout_s=1.0, kill_grace_s=1.0),
        )
        record = outcome.report.records[0]
        assert record.status == "retried"
        assert record.failures[0].kind == "timeout"
        assert outcome.results[0].report.payload == 5

    def test_spawn_matches_inline_failure_sequence(self):
        plan = ProcFaultPlan(
            seed=2, forced=((0, "crash"), (1, "corrupt"))
        )
        specs = [
            ToySpec(shard_id=k, seed=9, proc_faults=plan) for k in range(2)
        ]
        spawned = supervise(
            specs, inline=False, config=SupervisorConfig(timeout_s=60.0)
        )
        inline = supervise(specs)
        assert [
            (f.shard_id, f.kind) for f in spawned.report.failures
        ] == [(f.shard_id, f.kind) for f in inline.report.failures]
        for shard_id in (0, 1):
            assert (
                spawned.results[shard_id].report.fingerprint()
                == inline.results[shard_id].report.fingerprint()
            )
