"""Tests for repro.analysis: cpE (Eq. 3), ratios and table rendering."""

import pytest

from repro.analysis import (
    LatencyMeasurement,
    banner,
    compute_efficiency,
    format_series,
    format_table,
    throughput_images_per_s,
    throughput_ratio,
)
from repro.gpu import K20C


class TestComputeEfficiency:
    def test_eq3_definition(self):
        # 1 GFLOP of work in 1 ms => 1 TFLOP/s achieved.
        cpe = compute_efficiency(K20C, layer_flops=1e9, layer_seconds=1e-3)
        assert cpe == pytest.approx(1e12 / K20C.peak_flops)

    def test_peak_is_one(self):
        seconds = 1e9 / K20C.peak_flops
        assert compute_efficiency(K20C, 1e9, seconds) == pytest.approx(1.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            compute_efficiency(K20C, 1.0, 0.0)
        with pytest.raises(ValueError):
            compute_efficiency(K20C, -1.0, 1.0)


class TestThroughput:
    def test_images_per_second(self):
        assert throughput_images_per_s(32, 0.5) == pytest.approx(64.0)

    def test_ratio(self):
        no_batch = LatencyMeasurement(1, 0.01)  # 100 img/s
        batched = LatencyMeasurement(128, 0.5)  # 256 img/s
        assert throughput_ratio(no_batch, batched) == pytest.approx(100 / 256)

    def test_measurement_validation(self):
        with pytest.raises(ValueError):
            LatencyMeasurement(0, 1.0)
        with pytest.raises(ValueError):
            LatencyMeasurement(1, 0.0)


class TestReporting:
    def test_table_alignment(self):
        text = format_table(
            ["name", "value"], [("alpha", 1), ("b", 22)], title="T"
        )
        lines = text.splitlines()
        assert "T" in lines[0]
        assert lines[1].startswith("name")
        widths = {len(line) for line in lines[1:]}
        assert len(widths) <= 2  # header/body aligned

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_series(self):
        text = format_series("x", "y", [(1, 0.5), (2, 0.25)])
        assert "0.5" in text and "0.25" in text

    def test_banner_centered(self):
        text = banner("Hello", width=20)
        assert "Hello" in text
        assert len(text) >= 19
