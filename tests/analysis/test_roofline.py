"""Tests for repro.analysis.roofline."""

import pytest

from repro.analysis import machine_balance, roofline_point
from repro.gpu import JETSON_TX1, K20C, TITAN_X
from repro.gpu.kernels import GemmShape, make_kernel
from repro.nn import alexnet


class TestMachineBalance:
    def test_definition(self):
        assert machine_balance(K20C) == pytest.approx(
            K20C.peak_flops / K20C.mem_bandwidth_bytes_per_s
        )

    def test_mobile_has_higher_ridge(self):
        """TX1's bandwidth is proportionally scarcer than TitanX's."""
        assert machine_balance(JETSON_TX1) > machine_balance(TITAN_X)


class TestRooflinePoint:
    def test_batch1_classifier_is_deeply_memory_bound(self):
        """fc6 at batch 1: 9216x4096 weights stream for one column."""
        point = roofline_point(
            JETSON_TX1,
            make_kernel(64, 8, block_size=64),
            GemmShape(4096, 1, 9216),
        )
        assert point.is_memory_bound
        assert point.attainable_fraction < 0.05

    def test_batched_conv_is_compute_bound(self):
        """A big tile amortizes operand traffic enough to clear K20c's
        ridge (the per-CTA traffic model re-fetches operands per CTA,
        so the tile size sets the reuse)."""
        net = alexnet()
        shape = net.gemm_shape(net.layer("conv2"), batch=32)
        point = roofline_point(K20C, make_kernel(128, 128), shape)
        assert point.is_compute_bound
        assert point.attainable_fraction == pytest.approx(1.0)

    def test_intensity_grows_with_batch(self):
        """Bigger N amortizes the A-operand traffic."""
        net = alexnet()
        kernel = make_kernel(64, 64)
        ai = [
            roofline_point(
                K20C, kernel, net.gemm_shape(net.layer("conv5"), batch=b)
            ).arithmetic_intensity
            for b in (1, 8, 64)
        ]
        assert ai == sorted(ai)

    def test_attainable_capped_by_peak(self):
        point = roofline_point(
            K20C, make_kernel(128, 128), GemmShape(4096, 4096, 4096)
        )
        assert point.attainable_flops <= point.peak_flops

    def test_exactly_one_bound(self):
        point = roofline_point(
            K20C, make_kernel(64, 64), GemmShape(128, 729, 1200)
        )
        assert point.is_compute_bound != point.is_memory_bound
