"""Tests for repro.analysis.latency: the library-level network model."""

import pytest

from repro.analysis import library_network_latency
from repro.gpu import GTX_970M, JETSON_TX1, K20C, TITAN_X
from repro.gpu.libraries import CUBLAS, CUDNN, NERVANA
from repro.gpu.memory import OutOfMemoryError
from repro.nn import alexnet, googlenet, vgg16


@pytest.fixture(scope="module")
def net():
    return alexnet()


class TestStructure:
    def test_covers_conv_and_dense_layers(self, net):
        result = library_network_latency(K20C, net, CUDNN, 1)
        assert [layer.name for layer in result.layers] == [
            "conv1", "conv2", "conv3", "conv4", "conv5", "fc6", "fc7", "fc8",
        ]

    def test_totals_and_throughput(self, net):
        result = library_network_latency(K20C, net, CUDNN, 8)
        assert result.total_seconds == pytest.approx(
            sum(layer.seconds for layer in result.layers) + result.aux_seconds
        )
        assert result.throughput_ips == pytest.approx(
            8 / result.total_seconds
        )

    def test_layer_lookup(self, net):
        result = library_network_latency(K20C, net, CUDNN, 1)
        assert result.layer_named("conv2").grid_size > 0
        with pytest.raises(KeyError):
            result.layer_named("conv9")

    def test_nervana_batch_rounding_reflected(self, net):
        result = library_network_latency(K20C, net, NERVANA, 1)
        assert result.batch == 32


class TestOrderings:
    """The qualitative Table III relations the paper argues from."""

    def test_library_ordering_at_batching_sizes(self, net):
        times = {
            lib.name: library_network_latency(TITAN_X, net, lib, 128).total_seconds
            for lib in (CUBLAS, CUDNN, NERVANA)
        }
        assert times["nervana"] < times["cudnn"] < times["cublas"]

    def test_platform_ordering(self, net):
        times = [
            library_network_latency(gpu, net, CUDNN, 1).total_seconds
            for gpu in (TITAN_X, GTX_970M, JETSON_TX1)
        ]
        assert times == sorted(times)

    def test_batching_improves_throughput(self, net):
        single = library_network_latency(JETSON_TX1, net, CUDNN, 1)
        batched = library_network_latency(JETSON_TX1, net, CUDNN, 128)
        assert batched.throughput_ips > 2 * single.throughput_ips

    def test_tx1_alexnet_nonbatch_near_paper(self, net):
        """Paper Table III: 25/24 ms for cuBLAS/cuDNN; ours within 2x."""
        for lib, paper_ms in ((CUBLAS, 25.0), (CUDNN, 24.0)):
            measured = library_network_latency(
                JETSON_TX1, net, lib, 1
            ).total_seconds * 1e3
            assert paper_ms / 2.5 < measured < paper_ms * 2.5

    def test_cublas_launch_overhead_hurts_deep_networks(self):
        """GoogLeNet's 57 convs x per-image launches drag cuBLAS far
        behind cuDNN at batch 64 (Table III's 381 vs 118 on TitanX)."""
        goog = googlenet()
        cublas = library_network_latency(TITAN_X, goog, CUBLAS, 64)
        cudnn = library_network_latency(TITAN_X, goog, CUDNN, 64)
        assert cublas.total_seconds > 2.0 * cudnn.total_seconds


class TestOOM:
    def test_table_iii_x_cells_raise(self):
        with pytest.raises(OutOfMemoryError):
            library_network_latency(JETSON_TX1, googlenet(), CUDNN, 64)
        with pytest.raises(OutOfMemoryError):
            library_network_latency(JETSON_TX1, vgg16(), NERVANA, 1)

    def test_memory_check_can_be_bypassed(self):
        result = library_network_latency(
            JETSON_TX1, googlenet(), CUDNN, 64, check_memory=False
        )
        assert result.total_seconds > 0


class TestProfiling:
    def test_profile_network_report(self):
        from repro.analysis import profile_network

        report = profile_network(K20C, alexnet(), batch=1)
        assert report.batch == 1
        assert len(report.layers) == 8
        assert sum(layer.time_share for layer in report.layers) == pytest.approx(
            report.total_time_s
            and sum(layer.time_s for layer in report.layers) / report.total_time_s
        )
        text = report.render()
        assert "conv2" in text and "Util" in text

    def test_hottest_layers(self):
        from repro.analysis import profile_network

        report = profile_network(JETSON_TX1, alexnet(), batch=1)
        hottest = report.hottest(2)
        assert len(hottest) == 2
        assert hottest[0].time_s >= hottest[1].time_s
        # at batch 1 on mobile, weight streaming makes fc6 the hot spot
        assert hottest[0].name == "fc6"

    def test_profile_accepts_preloaded_plan(self):
        from repro.analysis import profile_network
        from repro.core.offline import OfflineCompiler

        plan = OfflineCompiler(K20C).compile_with_batch(alexnet(), 4)
        report = profile_network(K20C, alexnet(), plan=plan)
        assert report.batch == 4
