"""Integration tests: cross-module behaviour of the full P-CNN stack."""

import pytest

from repro.core import ApplicationSpec, PervasiveCNN, TaskClass
from repro.core.offline import OfflineCompiler
from repro.core.runtime import (
    AccuracyTuner,
    AnalyticEntropyModel,
    EmpiricalEntropyEvaluator,
)
from repro.gpu import JETSON_TX1, K20C, list_architectures
from repro.nn.models import alexnet, googlenet, vgg16
from repro.nn.perforation import PerforationPlan
from repro.workloads import difficulty_shift, realtime_trace


class TestCrossPlatformCompilation:
    """The pervasive premise: one model, every GPU, no retraining."""

    @pytest.mark.parametrize("arch_name", ["k20c", "titanx", "gtx970m", "tx1"])
    def test_alexnet_compiles_everywhere(self, arch_name):
        from repro.gpu import get_architecture

        arch = get_architecture(arch_name)
        plan = OfflineCompiler(arch).compile_with_batch(alexnet(), 1)
        assert plan.total_time_s > 0
        assert all(s.opt_sm <= arch.n_sms for s in plan.schedules)

    def test_latency_ordering_follows_compute_power(self):
        """Batch-1 AlexNet: TitanX < K20 < 970m < TX1 latency."""
        times = {}
        for arch in list_architectures():
            plan = OfflineCompiler(arch).compile_with_batch(alexnet(), 1)
            times[arch.name] = plan.total_time_s
        assert times["TitanX"] < times["K20c"]
        assert times["K20c"] < times["GTX970m"] < times["TX1"]

    def test_tx1_alexnet_latency_in_paper_ballpark(self):
        """Paper Table III: AlexNet non-batched on TX1 takes ~25 ms
        through cuBLAS/cuDNN; our tuned backend should land within
        2x of that scale."""
        plan = OfflineCompiler(JETSON_TX1).compile_with_batch(alexnet(), 1)
        assert 0.010 < plan.total_time_s < 0.050

    def test_per_platform_kernels_differ(self):
        """Cross-platform compilation is not a no-op: the tuned tile
        or TLP differs between the mobile and server parts somewhere."""
        tx1 = OfflineCompiler(JETSON_TX1).compile_with_batch(alexnet(), 1)
        k20 = OfflineCompiler(K20C).compile_with_batch(alexnet(), 1)
        differences = [
            (a.tuned.tile, a.opt_tlp) != (b.tuned.tile, b.opt_tlp)
            for a, b in zip(tx1.schedules, k20.schedules)
        ]
        assert any(differences)


class TestEntropyModelAgreement:
    """The analytic entropy model's *shape* matches what the empirical
    evaluator measures on a trained proxy."""

    def test_both_monotone_in_rate(self, trained_small_net):
        net, params, test_set = trained_small_net
        empirical = EmpiricalEntropyEvaluator(net, params, test_set)
        analytic = AnalyticEntropyModel(
            net, base_entropy=empirical.evaluate(PerforationPlan.dense()).entropy
        )
        for model in (empirical, analytic):
            values = [
                model.evaluate(
                    PerforationPlan({"conv1": r}) if r else PerforationPlan.dense()
                ).entropy
                for r in (0.0, 0.5, 0.7)
            ]
            assert values[0] <= values[1] + 0.05
            assert values[0] <= values[2] + 0.05


class TestFig16Mechanism:
    """The entropy-guided tuner achieves speedup with bounded accuracy
    loss on a *trained* network (the Fig. 16 mechanism, scaled down)."""

    def test_empirical_tuning_speedup_and_accuracy(self, trained_small_net):
        net, params, test_set = trained_small_net
        compiler = OfflineCompiler(JETSON_TX1)
        evaluator = EmpiricalEntropyEvaluator(net, params, test_set)
        dense = evaluator.evaluate(PerforationPlan.dense())
        tuner = AccuracyTuner(compiler, net, evaluator)
        table = tuner.tune(
            batch=32,
            entropy_threshold=dense.entropy + 0.35,
            max_iterations=10,
        )
        fastest = table.fastest
        assert fastest.speedup >= 1.0
        # entropy-guided tuning never silently destroys accuracy:
        assert fastest.accuracy >= dense.accuracy - 0.25
        # and entropy did not move opposite to accuracy by more than
        # measurement noise (the tiny fixture net starts near-uniform,
        # where the entropy estimate is noisiest):
        if fastest.iteration > 0:
            assert fastest.entropy >= dense.entropy - 0.08


class TestCalibrationUnderShift:
    def test_distribution_shift_walks_back_the_path(self):
        pcnn = PervasiveCNN(JETSON_TX1)
        spec = ApplicationSpec(
            "age-detection", TaskClass.INTERACTIVE, data_rate_hz=50.0
        )
        deployment = pcnn.deploy(alexnet(), spec, max_tuning_iterations=12)
        if len(deployment.tuning_table) < 2:
            pytest.skip("tuning path too short")
        trace = difficulty_shift(
            realtime_trace(duration_s=1.0, fps=10), onset_fraction=0.5,
            severity=4.0,
        )
        start_index = deployment.calibrator.index
        for factor in trace.difficulty:
            entropy = deployment.current_entry.entropy * factor
            deployment.process_request(observed_entropy=entropy)
        assert deployment.calibrator.index < start_index
        # latency got *worse* (slower, more precise kernels) -- the
        # accuracy/latency trade moved the right way.
        early = deployment.outcomes[0].latency_s
        late = deployment.outcomes[-1].latency_s
        assert late >= early * 0.98


class TestMemoryGuards:
    def test_compiler_never_emits_oom_plans(self):
        """The compiler's batch decisions respect Table III's limits."""
        from repro.gpu.memory import fits_in_memory

        for net in (alexnet(), vgg16(), googlenet()):
            compiler = OfflineCompiler(JETSON_TX1)
            batch = compiler.background_batch(net)
            assert fits_in_memory(
                JETSON_TX1, net.memory_profile(), compiler.backend, batch
            )
