"""Golden-file regression tests for the paper's headline tables.

Unlike the benchmark assertions (which check *relations*: throughput
plateaus, TX1 saturates before K20c), these pin the *exact values* to
``tests/goldens/*.json``.  Any drift — a kernel-selection change, an
occupancy-formula edit, a batch-picker tweak — fails with a JSON diff;
an intentional change is re-pinned with ``pytest --update-goldens``
and reviewed as a plain-text diff in the PR.
"""

from repro.core import ExecutionEngine
from repro.gpu import GTX_970M, JETSON_TX1, K20C
from repro.gpu.libraries import CUBLAS, CUDNN
from repro.gpu.occupancy import occupancy_report
from repro.nn import alexnet


class TestTable4OccupancyGolden:
    def test_kernel_occupancy_pinned(self, golden):
        net = alexnet()
        payload = {}
        for gpu in (JETSON_TX1, K20C):
            for lib in (CUBLAS, CUDNN):
                for layer_name in ("conv2", "conv5"):
                    shape = net.gemm_shape(net.layer(layer_name), batch=1)
                    kernel = lib.select_kernel(gpu, shape)
                    report = occupancy_report(gpu, kernel, shape)
                    key = "%s/%s/%s" % (gpu.name, lib.name, layer_name)
                    payload[key] = {
                        "kernel": report.kernel,
                        "result_matrix": list(report.result_matrix),
                        "sub_matrix": list(report.sub_matrix),
                        "regs_per_thread": report.regs_per_thread,
                        "shared_mem_bytes": report.shared_mem_bytes,
                        "block_size": report.block_size,
                        "blocks_register": report.blocks_register,
                        "blocks_shared_mem": report.blocks_shared_mem,
                        "max_blocks": report.max_blocks,
                        "grid_size": report.grid_size,
                        "util": round(report.util, 6),
                    }
        golden("table4_occupancy", payload)


class TestFig8OptimalBatchGolden:
    BATCHES = (1, 2, 4, 8, 16, 32, 64, 128)

    def test_optimal_batch_picks_pinned(self, golden):
        net = alexnet()
        engine = ExecutionEngine()
        payload = {}
        for gpu in (K20C, GTX_970M, JETSON_TX1):
            throughputs = {}
            for batch in self.BATCHES:
                plan = engine.compile_with_batch(net, batch, arch=gpu)
                throughputs["b%d" % batch] = round(plan.throughput_ips, 3)
            payload[gpu.name] = {
                "optimal_batch": engine.compiler_for(gpu).background_batch(
                    net
                ),
                "throughput_ips": throughputs,
            }
        golden("fig8_optimal_batch", payload)
