"""Cross-network x cross-platform compilation coverage.

Every (network, platform) pair the library exposes must compile into a
self-consistent plan: schedules cover every GEMM-bound layer, optSM/TLP
respect hardware bounds, the time model returns positive finite numbers
and batched compilations dominate batch-1 throughput.
"""

import math

import pytest

from repro.core.offline import OfflineCompiler
from repro.gpu import get_architecture
from repro.nn.layers import ConvSpec, DenseSpec
from repro.nn.models import alexnet, googlenet, resnet18, vgg16

NETWORKS = {
    "alexnet": alexnet,
    "vggnet": vgg16,
    "googlenet": googlenet,
    "resnet18": resnet18,
}

PLATFORMS = ["k20c", "titanx", "gtx970m", "tx1", "gtx1080", "tx2"]


@pytest.mark.parametrize("net_key", sorted(NETWORKS))
@pytest.mark.parametrize("arch_key", PLATFORMS)
def test_compiles_consistently(net_key, arch_key):
    network = NETWORKS[net_key]()
    arch = get_architecture(arch_key)
    plan = OfflineCompiler(arch).compile_with_batch(network, 1)

    gemm_layers = [
        layer
        for layer in network.layers
        if isinstance(layer.spec, (ConvSpec, DenseSpec))
    ]
    assert len(plan.schedules) == len(gemm_layers)

    for schedule in plan.schedules:
        assert 1 <= schedule.opt_sm <= arch.n_sms
        assert schedule.opt_tlp >= 1
        assert schedule.time_s > 0 and math.isfinite(schedule.time_s)
        # Eq. 11's invariant at the scheduling point.
        full = math.ceil(
            schedule.grid_size / (schedule.opt_tlp * arch.n_sms)
        )
        chosen = math.ceil(
            schedule.grid_size / (schedule.opt_tlp * schedule.opt_sm)
        )
        assert chosen == full
    assert plan.total_time_s > 0


@pytest.mark.parametrize("net_key", sorted(NETWORKS))
def test_batching_helps_throughput_everywhere(net_key):
    network = NETWORKS[net_key]()
    arch = get_architecture("titanx")
    compiler = OfflineCompiler(arch)
    one = compiler.compile_with_batch(network, 1)
    sixteen = compiler.compile_with_batch(network, 16)
    assert sixteen.throughput_ips > one.throughput_ips


def test_conv_heavy_networks_have_conv_dominated_plans():
    """VGG/ResNet are conv-bound even at batch 1 (unlike AlexNet,
    whose classifiers stream 235 MB of weights)."""
    arch = get_architecture("tx1")
    for builder in (vgg16, resnet18):
        plan = OfflineCompiler(arch).compile_with_batch(builder(), 1)
        conv_time = sum(
            s.time_s for s in plan.schedules if isinstance(s.layer.spec, ConvSpec)
        )
        assert conv_time > 0.5 * plan.gemm_time_s
