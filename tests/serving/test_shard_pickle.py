"""Pickle round-trips for everything that crosses the spawn boundary,
plus one real spawn-pool coordinator run.

``multiprocessing`` with the spawn start method serializes the whole
:class:`ShardSpec` (fleet description, router config, tenant loads,
fault trace) into each worker; these tests pin that contract so a
future unpicklable field fails here, not inside a worker traceback.
"""

import pickle

import numpy as np

from repro.core import ApplicationSpec, TaskClass
from repro.core.satisfaction import TimeRequirement
from repro.faults import (
    FaultEvent,
    FaultTrace,
    FaultTraceConfig,
    generate_fault_trace,
)
from repro.resilience import (
    ProcFaultPlan,
    ShardFailure,
    ShardRunRecord,
    SupervisionReport,
    SupervisorConfig,
)
from repro.serving.report import RouterReport
from repro.serving.shard import ShardResult
from repro.serving import (
    FleetCoordinator,
    FleetSpec,
    Request,
    RouterConfig,
    Tenant,
    TenantLoad,
)
from repro.serving.shard import ShardSpec, shard_platform
from repro.workloads import RequestTrace, bursty_trace

_REQUIREMENT = TimeRequirement(imperceptible_s=0.1, unusable_s=0.5)


def round_trip(value):
    return pickle.loads(pickle.dumps(value))


def _spec():
    return ApplicationSpec(
        "age-detection", TaskClass.INTERACTIVE, entropy_slack=0.30
    )


def _loads(name="pickled", n=10, seed=3):
    return (
        TenantLoad(
            Tenant(name, _REQUIREMENT, priority=1),
            bursty_trace(n, 20.0, seed=seed),
        ),
    )


class TestPickleRoundTrips:
    def test_router_config(self):
        config = RouterConfig(queue_limit=8, retry_limit=1, policy="soc")
        assert round_trip(config) == config

    def test_fault_event_and_trace(self):
        trace = FaultTrace([
            FaultEvent(time_s=1.0, kind="outage",
                       platform="s0/K20c", episode=1),
            FaultEvent(time_s=2.0, kind="restore",
                       platform="s0/K20c", episode=1),
        ])
        restored = round_trip(trace)
        assert list(restored) == list(trace)

    def test_generated_fault_trace(self):
        trace = generate_fault_trace(
            platforms=["K20c", "TX1"],
            horizon_s=10.0,
            config=FaultTraceConfig(outages=1, transients=2),
            seed=7,
        )
        assert list(round_trip(trace)) == list(trace)

    def test_request_trace(self):
        trace = bursty_trace(32, 25.0, seed=9)
        restored = round_trip(trace)
        assert np.array_equal(restored.arrivals_s, trace.arrivals_s)
        assert np.array_equal(restored.difficulty, trace.difficulty)

    def test_tenant_and_request(self):
        tenant = Tenant("alpha", _REQUIREMENT, priority=2)
        assert round_trip(tenant) == tenant
        request = Request(rid=4, tenant=tenant, arrival_s=1.5,
                          difficulty=1.2)
        assert round_trip(request) == request

    def test_tenant_load(self):
        (load,) = _loads()
        restored = round_trip(load)
        assert restored.tenant == load.tenant
        assert np.array_equal(
            restored.trace.arrivals_s, load.trace.arrivals_s
        )

    def test_fleet_spec(self):
        fleet = FleetSpec(
            network="alexnet", spec=_spec(), gpus=("k20c", "tx1"),
            max_tuning_iterations=4,
        )
        assert round_trip(fleet) == fleet

    def test_shard_spec(self):
        spec = ShardSpec(
            shard_id=1,
            n_shards=2,
            fleet=FleetSpec(
                network="alexnet", spec=_spec(), gpus=("k20c",),
            ),
            config=RouterConfig(),
            loads=_loads(),
            faults=FaultTrace([
                FaultEvent(time_s=1.0, kind="transient", platform="K20c"),
            ]),
            seed=17,
            instrument=True,
        )
        restored = round_trip(spec)
        assert restored.shard_id == spec.shard_id
        assert restored.seed == spec.seed
        assert restored.config == spec.config
        assert restored.fleet == spec.fleet
        assert len(restored.loads) == 1

    def test_empty_request_trace(self):
        trace = RequestTrace(
            arrivals_s=np.array([], dtype=float),
            difficulty=np.array([], dtype=float),
        )
        assert round_trip(trace).n_requests == 0

    def test_proc_fault_plan(self):
        plan = ProcFaultPlan(
            seed=11, crash_rate=0.2, hang_rate=0.1,
            forced=((1, "crash"), (2, "hang")),
            max_faulty_attempts=2, hang_s=30.0,
        )
        restored = round_trip(plan)
        assert restored == plan
        assert restored.decide(1, 1) == plan.decide(1, 1)

    def test_supervisor_config(self):
        config = SupervisorConfig(
            timeout_s=45.0, max_attempts=2, witness=True,
            kill_grace_s=1.0,
        )
        assert round_trip(config) == config

    def test_shard_failure_and_records(self):
        failure = ShardFailure(
            shard_id=1, attempt=2, kind="timeout",
            detail="killed at 30s", exitcode=-9, wall_s=30.2,
        )
        assert round_trip(failure) == failure
        record = ShardRunRecord(
            shard_id=1, status="retried", attempts=2,
            failures=(failure,),
        )
        assert round_trip(record) == record
        report = SupervisionReport(records=(record,))
        assert round_trip(report).counters() == report.counters()

    def test_shard_spec_with_fault_plan_and_attempt(self):
        spec = ShardSpec(
            shard_id=0,
            n_shards=2,
            fleet=FleetSpec(
                network="alexnet", spec=_spec(), gpus=("k20c",),
            ),
            config=RouterConfig(),
            loads=_loads(),
            proc_faults=ProcFaultPlan(seed=3, crash_rate=0.5),
            attempt=2,
        )
        restored = round_trip(spec)
        assert restored.attempt == 2
        assert restored.proc_faults == spec.proc_faults

    def test_shard_result_with_declared_fingerprint(self):
        report = RouterReport(horizon_s=2.0)
        result = ShardResult(
            shard_id=1, seed=9, report=report, attempt=3,
            declared_fingerprint=report.fingerprint(),
        )
        restored = round_trip(result)
        assert restored.attempt == 3
        assert (
            restored.declared_fingerprint
            == restored.report.fingerprint()
        )


class TestSpawnExecution:
    def test_spawn_matches_inline(self):
        """One real spawn pool run: bit-identical to inline."""
        fleet = FleetSpec(
            network="alexnet", spec=_spec(), gpus=("k20c", "tx1"),
            max_tuning_iterations=4,
        )
        shard_loads = [
            list(_loads("t0", n=8, seed=1)),
            list(_loads("t1", n=8, seed=2)),
        ]
        faults = FaultTrace([
            FaultEvent(time_s=0.05, kind="transient",
                       platform=shard_platform(0, "K20c")),
        ])

        def run(inline):
            return FleetCoordinator(
                fleet, RouterConfig(), n_shards=2, seed=11,
                inline=inline,
            ).run(shard_loads=shard_loads, faults=faults,
                  instrument=True)

        spawned = run(inline=False)
        inline = run(inline=True)
        assert (
            spawned.report.fingerprint() == inline.report.fingerprint()
        )
        assert (
            spawned.buffer.fingerprint() == inline.buffer.fingerprint()
        )
        assert spawned.seeds == inline.seeds
