"""Tests for repro.serving.router: the discrete-event fleet router."""

import json
import math

import numpy as np
import pytest

from repro.core.satisfaction import TimeRequirement
from repro.serving import (
    RequestRouter,
    RouterConfig,
    Tenant,
    TenantLoad,
)
from repro.workloads import RequestTrace, bursty_trace


def _capacity_rps(deployments):
    total = 0.0
    for deployment in deployments.values():
        entry = deployment.current_entry
        report = deployment.engine.execute(
            entry.compiled,
            power_gating=deployment.power_gating,
            use_priority_sm=deployment.use_priority_sm,
        )
        total += entry.compiled.batch / report.total_time_s
    return total


def _storm(deployments, n=600, overload=2.0, seed=42):
    rate = overload * _capacity_rps(deployments)
    return bursty_trace(
        n_requests=n, rate_hz=rate, burst_factor=6.0, burst_fraction=0.3,
        seed=seed,
    )


@pytest.fixture
def snappy_load(deployments, snappy_tenant):
    return [TenantLoad(snappy_tenant, _storm(deployments))]


class TestDeterminism:
    def test_same_fleet_reruns_are_bit_identical(self, fleet, snappy_load):
        first = RequestRouter(fleet, RouterConfig()).run(snappy_load)
        second = RequestRouter(fleet, RouterConfig()).run(snappy_load)
        assert first.fingerprint() == second.fingerprint()
        # The routing outcome (unlike compile-vs-cache-hit relays,
        # which track engine cache temperature) is exactly equal.
        a = first.to_dict(include_events=False)
        b = second.to_dict(include_events=False)
        for payload in (a, b):
            for kind in ("compile", "cache_hit"):
                payload["event_counts"].pop(kind)
        assert a == b

    def test_single_router_rerun_is_bit_identical(self, fleet, snappy_load):
        router = RequestRouter(fleet, RouterConfig())
        assert (
            router.run(snappy_load).fingerprint()
            == router.run(snappy_load).fingerprint()
        )

    def test_different_policy_changes_fingerprint(self, fleet, snappy_load):
        soc = RequestRouter(fleet, RouterConfig(policy="soc")).run(snappy_load)
        fifo = RequestRouter(
            fleet, RouterConfig(policy="fifo")
        ).run(snappy_load)
        assert soc.fingerprint() != fifo.fingerprint()


class TestOverloadBehaviour:
    def test_overload_walks_the_degradation_ladder(self, fleet, snappy_load):
        report = RequestRouter(fleet, RouterConfig()).run(snappy_load)
        assert len(report.events.of_kind("degrade")) > 0
        assert any(p.peak_level > 0 for p in report.platforms)

    def test_degradation_beats_fifo_baseline(self, fleet, snappy_load):
        degraded = RequestRouter(fleet, RouterConfig()).run(snappy_load)
        baseline = RequestRouter(
            fleet, RouterConfig(degradation=False, policy="fifo")
        ).run(snappy_load)
        assert degraded.deadline_hit_rate > baseline.deadline_hit_rate
        assert degraded.n_rejected <= baseline.n_rejected

    def test_no_degradation_config_stays_at_rung_zero(
        self, fleet, snappy_load
    ):
        report = RequestRouter(
            fleet, RouterConfig(degradation=False)
        ).run(snappy_load)
        assert report.events.of_kind("degrade") == []
        assert all(p.peak_level == 0 for p in report.platforms)
        assert all(p.mean_level == 0.0 for p in report.platforms)

    def test_rejections_carry_reasons(self, fleet, deployments, snappy_tenant):
        # A tiny queue plus a hot storm forces saturation rejects.
        loads = [TenantLoad(snappy_tenant, _storm(deployments, overload=4.0))]
        report = RequestRouter(
            fleet,
            RouterConfig(queue_limit=2, degradation=False, policy="fifo"),
        ).run(loads)
        assert report.n_rejected > 0
        reasons = {r.reason for r in report.rejected}
        assert reasons <= {"saturated", "infeasible"}
        reject_events = report.events.of_kind("reject")
        assert len(reject_events) == report.n_rejected
        assert all(e.detail["reason"] in reasons for e in reject_events)


class TestAccounting:
    def test_every_offered_request_is_accounted_once(
        self, fleet, snappy_load
    ):
        report = RequestRouter(fleet, RouterConfig()).run(snappy_load)
        offered = snappy_load[0].trace.n_requests
        assert report.n_completed + report.n_rejected == offered
        rids = sorted(
            [r.request.rid for r in report.completed]
            + [r.request.rid for r in report.rejected]
        )
        assert rids == list(range(offered))

    def test_dispatch_and_complete_events_cover_completions(
        self, fleet, snappy_load
    ):
        report = RequestRouter(fleet, RouterConfig()).run(snappy_load)
        dispatched = sum(
            len(e.request_ids) for e in report.events.of_kind("dispatch")
        )
        assert dispatched == report.n_completed
        assert len(report.events.of_kind("dispatch")) == len(
            report.events.of_kind("complete")
        )

    def test_platform_stats_consistent(self, fleet, snappy_load):
        report = RequestRouter(fleet, RouterConfig()).run(snappy_load)
        assert {p.platform for p in report.platforms} == {"K20c", "TX1"}
        assert sum(p.requests for p in report.platforms) == report.n_completed
        for stats in report.platforms:
            assert 0.0 <= stats.utilization <= 1.0 + 1e-9
            assert stats.busy_s <= report.horizon_s + 1e-9
        assert report.total_energy_j == pytest.approx(
            sum(p.energy_j for p in report.platforms)
        )

    def test_latencies_and_horizon(self, fleet, snappy_load):
        report = RequestRouter(fleet, RouterConfig()).run(snappy_load)
        for record in report.completed:
            assert record.finish_s > record.start_s >= record.request.arrival_s
            assert record.finish_s <= report.horizon_s + 1e-9
        assert report.percentile_latency_s(50.0) <= report.percentile_latency_s(
            99.0
        )

    def test_engine_compile_activity_lands_in_event_log(self, fleet, spec):
        # A fresh engine compiles ladder rungs during run(); the hook
        # relay must surface that as compile or cache_hit events.
        from repro.core.fleet import FleetManager
        from repro.gpu import K20C
        from repro.nn import alexnet

        fresh = FleetManager(
            alexnet(), spec, architectures=[K20C], max_tuning_iterations=4
        )
        tenant = Tenant("t", TimeRequirement(0.1, 0.5), 1)
        trace = RequestTrace(
            arrivals_s=np.array([0.0]), difficulty=np.array([1.0])
        )
        report = RequestRouter(fresh, RouterConfig()).run(
            [TenantLoad(tenant, trace)]
        )
        assert len(report.events.of_kind("compile")) > 0
        # The relay unsubscribes after the run: engine activity outside
        # run() must not grow this report's log.
        before = len(report.events)
        deployment = fresh.deployment("K20c")
        deployment.engine.execute(deployment.current_entry.compiled)
        assert len(report.events) == before


class TestMultiTenant:
    def test_priority_tenant_gets_better_service(self, fleet, deployments):
        requirement = TimeRequirement(0.1, 0.5)
        vip = Tenant("vip", requirement, priority=2)
        best_effort = Tenant("best-effort", requirement, priority=0)
        loads = [
            TenantLoad(vip, _storm(deployments, n=400, seed=1)),
            TenantLoad(best_effort, _storm(deployments, n=400, seed=2)),
        ]
        report = RequestRouter(fleet, RouterConfig()).run(loads)
        per_tenant = {s.tenant: s for s in report.per_tenant()}
        assert set(per_tenant) == {"vip", "best-effort"}
        vip_stats = per_tenant["vip"]
        be_stats = per_tenant["best-effort"]
        assert vip_stats.deadline_hit_rate >= be_stats.deadline_hit_rate
        assert report.tenant("vip").priority == 2
        with pytest.raises(KeyError, match="vip"):
            report.tenant("nobody")

    def test_background_tenant_never_rejected_infeasible(
        self, fleet, deployments, background_tenant
    ):
        loads = [TenantLoad(background_tenant, _storm(deployments, n=200))]
        report = RequestRouter(fleet, RouterConfig()).run(loads)
        assert all(r.reason != "infeasible" for r in report.rejected)
        # Deadline-free completions always count as hits.
        assert all(
            math.isinf(r.request.deadline_s) for r in report.completed
        )
        assert report.deadline_hits == report.n_completed


class TestReportExport:
    def test_to_dict_schema(self, fleet, snappy_load):
        report = RequestRouter(fleet, RouterConfig()).run(snappy_load)
        data = report.to_dict(include_events=True, include_requests=True)
        assert set(data) == {
            "summary", "tenants", "platforms", "event_counts", "events",
            "completed", "rejected",
        }
        summary = data["summary"]
        for key in (
            "offered", "completed", "rejected", "deadline_hits",
            "deadline_hit_rate", "rejection_rate", "mean_soc",
            "p50_latency_s", "p95_latency_s", "p99_latency_s",
            "total_energy_j", "horizon_s",
        ):
            assert key in summary
        json.loads(report.to_json(include_events=True, include_requests=True))

    def test_platform_lookup_errors_name_known(self, fleet, snappy_load):
        report = RequestRouter(fleet, RouterConfig()).run(snappy_load)
        assert report.platform("K20c").gpu == "K20c"
        with pytest.raises(KeyError, match="K20c, TX1"):
            report.platform("H100")


class TestEdgeCasesAndValidation:
    def test_empty_loads_give_empty_report(self, fleet):
        report = RequestRouter(fleet, RouterConfig()).run([])
        assert report.n_offered == 0
        assert report.horizon_s == 0.0
        assert report.deadline_hit_rate == 0.0
        assert report.mean_soc == 0.0

    def test_router_requires_deployments(self):
        with pytest.raises(ValueError):
            RequestRouter({})

    def test_config_validation(self):
        with pytest.raises(ValueError, match="policy"):
            RouterConfig(policy="lifo")
        with pytest.raises(ValueError):
            RouterConfig(queue_limit=0)
        with pytest.raises(ValueError):
            RouterConfig(max_levels=0)
        with pytest.raises(ValueError):
            RouterConfig(low_water_batches=5.0)

    def test_accepts_plain_deployment_mapping(self, deployments):
        router = RequestRouter(dict(deployments))
        tenant = Tenant("t", TimeRequirement(0.1, 3.0), 1)
        trace = RequestTrace(
            arrivals_s=np.array([0.0, 0.0]), difficulty=np.ones(2)
        )
        report = router.run([TenantLoad(tenant, trace)])
        assert report.n_completed == 2
