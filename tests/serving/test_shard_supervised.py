"""Supervised coordinator runs: chaos parity, escalation, resume.

The acceptance bar for the supervision layer: under injected process
faults every shard completes or is re-homed (zero requests lost), the
merged fingerprint of a recovered run is bit-identical to the
fault-free same-seed run, and a resume re-executes only the shards
that failed.  Everything here runs inline (the supervisor pre-empts
injected crashes/hangs with the identical failure sequence, so the
spawn machinery is exercised separately in
``tests/resilience/test_supervisor.py`` and ``test_shard_pickle.py``).
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ApplicationSpec, TaskClass
from repro.core.satisfaction import TimeRequirement
from repro.obs import SUPERVISION_METRIC_PREFIX
from repro.resilience import (
    ProcFaultPlan,
    SupervisionError,
    SupervisorConfig,
)
from repro.serving import (
    FleetCoordinator,
    FleetSpec,
    RouterConfig,
    Tenant,
    TenantLoad,
)
from repro.serving.shard import shard_label, shard_seed
from repro.workloads import bursty_trace

_REQUIREMENT = TimeRequirement(imperceptible_s=0.1, unusable_s=0.5)
N_SHARDS = 3


def _fleet_spec():
    return FleetSpec(
        network="alexnet",
        spec=ApplicationSpec(
            "age-detection", TaskClass.INTERACTIVE, entropy_slack=0.30
        ),
        gpus=("k20c",),
        max_tuning_iterations=4,
    )


def _shard_loads(n_shards=N_SHARDS, n_requests=24, seed=13):
    return [
        [
            TenantLoad(
                Tenant(
                    "tenant-%s" % shard_label(shard), _REQUIREMENT,
                    priority=1,
                ),
                bursty_trace(
                    n_requests, 25.0, seed=shard_seed(seed, shard)
                ),
            )
        ]
        for shard in range(n_shards)
    ]


def _run(n_shards=N_SHARDS, instrument=False, **kwargs):
    coordinator = FleetCoordinator(
        _fleet_spec(), RouterConfig(), n_shards=n_shards, seed=13,
        inline=True, **kwargs,
    )
    return coordinator.run(
        shard_loads=_shard_loads(n_shards), instrument=instrument
    )


@pytest.fixture(scope="module")
def clean_outcome():
    return _run()


class TestChaosParity:
    def test_crash_recovery_is_bit_identical(self, clean_outcome):
        plan = ProcFaultPlan(seed=2, forced=((1, "crash"),))
        chaos = _run(proc_faults=plan)
        assert (
            chaos.report.fingerprint()
            == clean_outcome.report.fingerprint()
        )
        assert chaos.statuses == ("ok", "retried", "ok")
        assert chaos.report.n_offered == clean_outcome.report.n_offered

    def test_mixed_fault_palette_recovers(self, clean_outcome):
        plan = ProcFaultPlan(
            seed=2,
            forced=((0, "crash"), (1, "hang"), (2, "corrupt")),
            hang_s=3600.0,
        )
        chaos = _run(
            proc_faults=plan,
            supervision=SupervisorConfig(timeout_s=30.0),
        )
        assert (
            chaos.report.fingerprint()
            == clean_outcome.report.fingerprint()
        )
        assert chaos.statuses == ("retried", "retried", "retried")
        kinds = {
            failure.kind for failure in chaos.supervision.failures
        }
        assert kinds == {"crashed", "timeout", "integrity"}

    def test_supervision_metrics_are_fingerprint_neutral(self):
        plan = ProcFaultPlan(seed=2, forced=((1, "crash"),))
        clean = _run(instrument=True)
        chaos = _run(instrument=True, proc_faults=plan)
        assert (
            chaos.report.fingerprint() == clean.report.fingerprint()
        )
        supervisor_series = [
            series
            for series in chaos.report.obs["metrics"]
            if series.startswith(SUPERVISION_METRIC_PREFIX)
        ]
        assert supervisor_series, "supervision tallies missing from obs"
        retries = chaos.report.obs["metrics"][
            "supervisor_retries_total"
        ]
        assert retries["value"] == 1

    def test_supervise_spans_in_stitched_trace(self):
        plan = ProcFaultPlan(seed=2, forced=((1, "crash"),))
        chaos = _run(instrument=True, proc_faults=plan)
        supervise = list(chaos.buffer.of_name("supervise"))
        # One per shard record + one per recorded failure.
        assert len(supervise) == N_SHARDS + 1
        statuses = {
            span.attrs["shard"]: span.attrs.get("status")
            for span in supervise
            if "status" in span.attrs
        }
        assert statuses == {"s0": "ok", "s1": "retried", "s2": "ok"}
        # Zero-width and cache-sensitive: the trace fingerprint of a
        # chaos run equals the clean run's.
        clean = _run(instrument=True)
        assert chaos.buffer.fingerprint() == clean.buffer.fingerprint()


class TestEscalation:
    def test_exhausted_shard_is_rehomed_with_zero_loss(self, clean_outcome):
        plan = ProcFaultPlan(
            seed=2, forced=((1, "crash"),), max_faulty_attempts=99
        )
        outcome = _run(
            proc_faults=plan,
            supervision=SupervisorConfig(max_attempts=2),
        )
        assert outcome.escalated == (1,)
        assert outcome.escalation_target in (0, 2)
        assert outcome.statuses[1] == "dead"
        # Zero requests lost: the merged ledger still accounts for
        # every offered request (under the target's platform names).
        assert (
            outcome.report.n_offered == clean_outcome.report.n_offered
        )
        assert outcome.shard_reports[1].n_offered == 0

    def test_single_shard_failure_raises(self):
        plan = ProcFaultPlan(
            seed=2, forced=((0, "crash"),), max_faulty_attempts=99
        )
        with pytest.raises(SupervisionError, match="single shard"):
            _run(
                n_shards=1,
                proc_faults=plan,
                supervision=SupervisorConfig(max_attempts=2),
            )

    def test_resilience_off_failure_raises(self):
        plan = ProcFaultPlan(
            seed=2, forced=((1, "crash"),), max_faulty_attempts=99
        )
        coordinator = FleetCoordinator(
            _fleet_spec(), RouterConfig(resilience=False),
            n_shards=N_SHARDS, seed=13, inline=True, proc_faults=plan,
            supervision=SupervisorConfig(max_attempts=2),
        )
        with pytest.raises(SupervisionError, match="resilience disabled"):
            coordinator.run(shard_loads=_shard_loads())


class TestResume:
    def test_resume_executes_only_failed_shards(self, tmp_path):
        plan = ProcFaultPlan(
            seed=2, forced=((1, "crash"),), max_faulty_attempts=99
        )
        config = RouterConfig(resilience=False)
        resume_dir = str(tmp_path / "run")

        def coordinator(**kwargs):
            return FleetCoordinator(
                _fleet_spec(), config, n_shards=N_SHARDS, seed=13,
                inline=True, resume_dir=resume_dir, **kwargs,
            )

        with pytest.raises(SupervisionError):
            coordinator(
                proc_faults=plan,
                supervision=SupervisorConfig(max_attempts=2),
            ).run(shard_loads=_shard_loads())
        # Healthy rerun: shards 0/2 come back from checkpoints, only
        # the crashed shard executes; the result matches a clean run.
        resumed = coordinator().run(shard_loads=_shard_loads())
        assert resumed.statuses == ("resumed", "ok", "resumed")
        clean = FleetCoordinator(
            _fleet_spec(), config, n_shards=N_SHARDS, seed=13,
            inline=True,
        ).run(shard_loads=_shard_loads())
        assert (
            resumed.report.fingerprint() == clean.report.fingerprint()
        )


class TestProcessKnob:
    def test_processes_validated(self):
        with pytest.raises(ValueError):
            FleetCoordinator(_fleet_spec(), processes=0)

    def test_effective_processes_caps_at_cpu_and_shards(self):
        import os

        coordinator = FleetCoordinator(_fleet_spec(), n_shards=4)
        assert coordinator._effective_processes(4) == min(
            4, os.cpu_count() or 1
        )
        explicit = FleetCoordinator(
            _fleet_spec(), n_shards=4, processes=2
        )
        assert explicit._effective_processes(4) == 2
        assert explicit._effective_processes(1) == 1
        legacy = FleetCoordinator(
            _fleet_spec(), n_shards=4, processes=3, max_workers=1
        )
        assert legacy._effective_processes(4) == 1


class TestAttemptInvariance:
    """The hypothesis property behind the whole design: the number of
    faulty attempts a shard survives never changes the merged
    fingerprint."""

    @given(faulty_attempts=st.integers(0, 3), crash_seed=st.integers(0, 5))
    @settings(max_examples=8, deadline=None)
    def test_retry_count_never_changes_the_fingerprint(
        self, faulty_attempts, crash_seed
    ):
        clean = _run(n_shards=2)
        plan = ProcFaultPlan(
            seed=crash_seed,
            forced=((0, "crash"), (1, "corrupt")),
            max_faulty_attempts=faulty_attempts,
        )
        chaos = _run(
            n_shards=2,
            proc_faults=plan,
            supervision=SupervisorConfig(
                max_attempts=faulty_attempts + 1
            ),
        )
        assert (
            chaos.report.fingerprint() == clean.report.fingerprint()
        )
        expected_attempts = 2 * (faulty_attempts + 1)
        assert (
            chaos.supervision.counters()["attempts"]
            == expected_attempts
        )
