"""Tests for repro.serving.request: tenants, requests, load merging."""

import math

import numpy as np
import pytest

from repro.core import ApplicationSpec, TaskClass
from repro.core.satisfaction import TimeRequirement
from repro.serving import Tenant, TenantLoad, merge_loads
from repro.workloads import RequestTrace


def _trace(arrivals, difficulty=None):
    arrivals = np.asarray(arrivals, dtype=float)
    if difficulty is None:
        difficulty = np.ones(len(arrivals))
    return RequestTrace(arrivals_s=arrivals, difficulty=np.asarray(difficulty))


class TestTenant:
    def test_from_spec_infers_requirement(self):
        spec = ApplicationSpec("age", TaskClass.INTERACTIVE)
        tenant = Tenant.from_spec(spec, priority=3)
        assert tenant.name == "age"
        assert tenant.priority == 3
        assert tenant.requirement.unusable_s == 3.0

    def test_background_tenant_has_no_deadline(self):
        spec = ApplicationSpec("tagging", TaskClass.BACKGROUND)
        tenant = Tenant.from_spec(spec)
        assert math.isinf(tenant.requirement.unusable_s)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Tenant("", TimeRequirement(0.1, 1.0))


class TestRequestDeadline:
    def test_deadline_is_arrival_plus_unusable(self):
        tenant = Tenant("t", TimeRequirement(0.1, 0.5))
        load = TenantLoad(tenant, _trace([2.0]))
        (request,) = merge_loads([load])
        assert request.deadline_s == pytest.approx(2.5)
        assert request.has_deadline

    def test_background_request_has_no_deadline(self):
        tenant = Tenant("bg", TimeRequirement(math.inf, math.inf))
        load = TenantLoad(tenant, _trace([0.0]))
        (request,) = merge_loads([load])
        assert not request.has_deadline


class TestMergeLoads:
    def test_interleaves_by_arrival_then_name(self):
        a = Tenant("alpha", TimeRequirement(0.1, 1.0))
        b = Tenant("beta", TimeRequirement(0.1, 1.0))
        merged = merge_loads(
            [
                TenantLoad(a, _trace([0.2, 0.4])),
                TenantLoad(b, _trace([0.1, 0.2])),
            ]
        )
        assert [r.tenant.name for r in merged] == [
            "beta", "alpha", "beta", "alpha",
        ]
        assert [r.rid for r in merged] == [0, 1, 2, 3]
        arrivals = [r.arrival_s for r in merged]
        assert arrivals == sorted(arrivals)

    def test_difficulty_travels_with_request(self):
        tenant = Tenant("t", TimeRequirement(0.1, 1.0))
        merged = merge_loads(
            [TenantLoad(tenant, _trace([0.0, 1.0], [1.0, 2.5]))]
        )
        assert merged[1].difficulty == pytest.approx(2.5)

    def test_rejects_duplicate_tenants(self):
        tenant = Tenant("dup", TimeRequirement(0.1, 1.0))
        with pytest.raises(ValueError, match="dup"):
            merge_loads(
                [
                    TenantLoad(tenant, _trace([0.0])),
                    TenantLoad(tenant, _trace([1.0])),
                ]
            )

    def test_empty_loads_merge_to_nothing(self):
        tenant = Tenant("t", TimeRequirement(0.1, 1.0))
        assert merge_loads([TenantLoad(tenant, _trace([]))]) == []
