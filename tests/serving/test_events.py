"""Tests for repro.serving.events: the structured event log."""

import json

import pytest

from repro.serving import EventLog


class TestEventLog:
    def test_records_in_order_with_monotone_seq(self):
        log = EventLog()
        log.record("enqueue", time_s=0.0, tenant="t", request_ids=(0,))
        log.record("dispatch", time_s=0.1, platform="K20c", request_ids=(0,))
        log.record("complete", time_s=0.2, platform="K20c", request_ids=(0,))
        assert [e.seq for e in log] == [0, 1, 2]
        assert [e.kind for e in log] == ["enqueue", "dispatch", "complete"]
        assert len(log) == 3
        assert log[1].platform == "K20c"

    def test_rejects_unknown_kind(self):
        log = EventLog()
        with pytest.raises(ValueError, match="known:"):
            log.record("explode", time_s=0.0)
        with pytest.raises(ValueError, match="known:"):
            log.of_kind("explode")

    def test_of_kind_filters(self):
        log = EventLog()
        log.record("enqueue", time_s=0.0)
        log.record("reject", time_s=0.1, reason="saturated")
        log.record("enqueue", time_s=0.2)
        assert len(log.of_kind("enqueue")) == 2
        (reject,) = log.of_kind("reject")
        assert reject.detail["reason"] == "saturated"

    def test_counts_include_zero_kinds(self):
        log = EventLog()
        log.record("degrade", time_s=0.0, level=1)
        counts = log.counts
        assert counts["degrade"] == 1
        assert counts["restore"] == 0
        assert set(counts) == set(EventLog.KINDS)

    def test_to_dicts_is_json_serializable(self):
        log = EventLog()
        log.record(
            "dispatch", time_s=0.5, platform="TX1", request_ids=(3, 4),
            level=2, batch=2,
        )
        payload = json.loads(json.dumps(log.to_dicts()))
        assert payload[0]["request_ids"] == [3, 4]
        assert payload[0]["detail"] == {"batch": 2, "level": 2}
