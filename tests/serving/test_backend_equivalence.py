"""Differential harness: the vectorized router twin vs the reference.

The vectorized backend (:mod:`repro.serving.vec_router`) re-implements
``RequestRouter.run`` as an array program; its merge contract is
*bit-identical* ``RouterReport`` fingerprints -- the SHA-1 over every
routing decision, event and request record -- on every seed, trace
shape, config knob, fault schedule and instrumentation mode.  These
tests are the oracle gate the rewrite merges behind: hypothesis draws
trace families (MMPP storms, Pareto heavy tails, diurnal sinusoids,
chaos-injected runs) and every draw must fingerprint identically
through both backends.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.satisfaction import TimeRequirement
from repro.faults import FaultTraceConfig, generate_fault_trace
from repro.obs import Instrumentation
from repro.serving import (
    ROUTER_BACKENDS,
    FleetCoordinator,
    FleetSpec,
    RequestRouter,
    RouterConfig,
    Tenant,
    TenantLoad,
)
from repro.serving.shard import ShardSpec
from repro.workloads import bursty_trace, diurnal_trace, pareto_trace

#: Arrival rate used by the fixed-rate differential traces; high
#: enough to overload the two-platform AlexNet fleet and exercise the
#: degradation ladder and saturation rejection.
RATE_HZ = 400.0

#: Immutable tenant for the hypothesis-driven tests (a module-level
#: constant rather than the function-scoped fixture, which hypothesis
#: would not reset between generated examples).
SNAPPY = Tenant(
    "snappy", TimeRequirement(imperceptible_s=0.1, unusable_s=0.5),
    priority=1,
)


def _trace(family, n, seed):
    if family == "mmpp":
        return bursty_trace(
            n_requests=n, rate_hz=RATE_HZ, burst_factor=6.0,
            burst_fraction=0.3, seed=seed,
        )
    if family == "pareto":
        return pareto_trace(
            n_requests=n, rate_hz=RATE_HZ, alpha=1.5, seed=seed
        )
    return diurnal_trace(
        n_requests=n, base_rate_hz=RATE_HZ / 2.0, amplitude=0.6,
        period_s=1.0, seed=seed,
    )


def _run_both(fleet, loads, config=None, faults=None, obs_pair=None):
    config = config if config is not None else RouterConfig()
    kwargs_a = {}
    kwargs_b = {}
    if faults is not None:
        kwargs_a["faults"] = faults
        kwargs_b["faults"] = faults
    if obs_pair is not None:
        kwargs_a["obs"], kwargs_b["obs"] = obs_pair
    ref = RequestRouter(fleet, config).run(loads, **kwargs_a)
    vec = RequestRouter(fleet, config, backend="vectorized").run(
        loads, **kwargs_b
    )
    return ref, vec


def _filtered_events(report):
    """The event log minus cache-temperature noise: raw sequence
    numbers and engine compile/cache-hit relays (the same filter
    ``fingerprint()`` applies)."""
    data = report.to_dict(include_events=True)
    return [
        {key: value for key, value in event.items() if key != "seq"}
        for event in data["events"]
        if event["kind"] not in ("compile", "cache_hit")
    ]


class TestTraceFamilies:
    @settings(max_examples=10, deadline=None)
    @given(
        family=st.sampled_from(["mmpp", "pareto", "diurnal"]),
        n=st.integers(min_value=30, max_value=120),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_fingerprints_bit_identical(self, fleet, family, n, seed):
        loads = [TenantLoad(SNAPPY, _trace(family, n, seed))]
        ref, vec = _run_both(fleet, loads)
        assert vec.fingerprint() == ref.fingerprint()

    @settings(max_examples=6, deadline=None)
    @given(
        n=st.integers(min_value=30, max_value=100),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        fault_seed=st.integers(min_value=0, max_value=2**16 - 1),
    )
    def test_chaos_injected_bit_identical(self, fleet, n, seed, fault_seed):
        loads = [TenantLoad(SNAPPY, _trace("mmpp", n, seed))]
        horizon = float(loads[0].trace.arrivals_s[-1]) + 0.5
        faults = generate_fault_trace(
            ["K20c", "TX1"],
            horizon_s=horizon,
            config=FaultTraceConfig(
                outages=1, sm_failures=1, throttles=1, transients=2
            ),
            seed=fault_seed,
        )
        ref, vec = _run_both(fleet, loads, faults=faults)
        assert vec.fingerprint() == ref.fingerprint()


class TestConfigMatrix:
    @pytest.mark.parametrize(
        "config",
        [
            RouterConfig(),
            RouterConfig(policy="fifo"),
            RouterConfig(degradation=False),
            RouterConfig(degradation=False, policy="fifo"),
            RouterConfig(degrade_on_admission=False),
            RouterConfig(calibrate=True),
            RouterConfig(resilience=False),
            RouterConfig(retry_limit=0),
            RouterConfig(queue_limit=8),
            RouterConfig(flush_timeout_s=0.001),
            RouterConfig(max_levels=2, batch_growth=3),
        ],
        ids=lambda c: "deg%d-%s-res%d-q%d" % (
            c.degradation, c.policy, c.resilience, c.queue_limit
        ),
    )
    def test_config_knobs_bit_identical(
        self, fleet, snappy_tenant, config
    ):
        loads = [TenantLoad(snappy_tenant, _trace("mmpp", 150, 42))]
        ref, vec = _run_both(fleet, loads, config=config)
        assert vec.fingerprint() == ref.fingerprint()
        assert _filtered_events(vec) == _filtered_events(ref)

    def test_multi_tenant_priority_mix(
        self, fleet, snappy_tenant, background_tenant
    ):
        """Two tenants with distinct priorities: the dispatch queue's
        sort key is no longer the identity permutation, so this
        exercises the keyed-sort path of both backends."""
        loads = [
            TenantLoad(snappy_tenant, _trace("mmpp", 120, 1)),
            TenantLoad(background_tenant, _trace("pareto", 80, 2)),
        ]
        ref, vec = _run_both(fleet, loads)
        assert vec.fingerprint() == ref.fingerprint()
        assert _filtered_events(vec) == _filtered_events(ref)


class TestObsExports:
    def test_obs_sections_identical(self, fleet, snappy_tenant):
        loads = [TenantLoad(snappy_tenant, _trace("mmpp", 150, 42))]
        # Warm the engine caches first: compile/cache-hit relay counts
        # track cache temperature, not routing behaviour, and would
        # otherwise differ between the first and second run.
        RequestRouter(fleet, RouterConfig()).run(loads)
        obs_ref, obs_vec = Instrumentation(), Instrumentation()
        ref, vec = _run_both(
            fleet, loads, obs_pair=(obs_ref, obs_vec)
        )
        assert vec.fingerprint() == ref.fingerprint()
        assert obs_vec.report_section() == obs_ref.report_section()

    def test_obs_chaos_sections_identical(self, fleet, snappy_tenant):
        loads = [TenantLoad(snappy_tenant, _trace("mmpp", 120, 7))]
        horizon = float(loads[0].trace.arrivals_s[-1]) + 0.5
        faults = generate_fault_trace(
            ["K20c", "TX1"],
            horizon_s=horizon,
            config=FaultTraceConfig(outages=1, transients=3),
            seed=3,
        )
        RequestRouter(fleet, RouterConfig()).run(loads, faults=faults)
        obs_ref, obs_vec = Instrumentation(), Instrumentation()
        ref, vec = _run_both(
            fleet, loads, faults=faults, obs_pair=(obs_ref, obs_vec)
        )
        assert vec.fingerprint() == ref.fingerprint()
        assert obs_vec.report_section() == obs_ref.report_section()


class TestSeam:
    def test_unknown_backend_rejected(self, fleet):
        with pytest.raises(ValueError, match="unknown router backend"):
            RequestRouter(fleet, RouterConfig(), backend="simd")

    def test_backends_registry(self):
        assert ROUTER_BACKENDS == ("reference", "vectorized")

    def test_vectorized_rejects_control_plane(
        self, fleet, snappy_tenant
    ):
        loads = [TenantLoad(snappy_tenant, _trace("mmpp", 30, 42))]
        router = RequestRouter(
            fleet, RouterConfig(), backend="vectorized"
        )
        with pytest.raises(ValueError, match="control plane"):
            router.run(loads, controller=object())

    def test_shard_spec_carries_backend(self, spec):
        fleet_spec = FleetSpec(
            network="alexnet", spec=spec, gpus=("k20c", "tx1")
        )
        shard = ShardSpec(
            shard_id=0,
            n_shards=1,
            fleet=fleet_spec,
            config=RouterConfig(),
            loads=(),
            seed=42,
            backend="vectorized",
        )
        assert shard.backend == "vectorized"
        assert ShardSpec(
            shard_id=0,
            n_shards=1,
            fleet=fleet_spec,
            config=RouterConfig(),
            loads=(),
            seed=42,
        ).backend == "reference"

    def test_coordinator_rejects_unknown_backend(self, spec):
        with pytest.raises(ValueError, match="unknown router backend"):
            FleetCoordinator(
                FleetSpec(
                    network="alexnet", spec=spec, gpus=("k20c", "tx1")
                ),
                RouterConfig(),
                n_shards=1,
                backend="simd",
            )

    def test_coordinator_backends_merge_identically(
        self, spec, snappy_tenant
    ):
        fleet_spec = FleetSpec(
            network="alexnet", spec=spec, gpus=("k20c", "tx1")
        )
        shard_loads = [
            [TenantLoad(snappy_tenant, _trace("mmpp", 60, seed))]
            for seed in (11, 12)
        ]
        fingerprints = {}
        for backend in ROUTER_BACKENDS:
            outcome = FleetCoordinator(
                fleet_spec, RouterConfig(), n_shards=2, seed=42,
                inline=True, backend=backend,
            ).run(shard_loads=shard_loads)
            fingerprints[backend] = outcome.report.fingerprint()
        assert fingerprints["vectorized"] == fingerprints["reference"]


class TestReportPayloads:
    def test_full_payloads_identical(self, fleet, snappy_tenant):
        """Beyond the fingerprint: completed/rejected ledgers, platform
        rows and summary scalars are exactly equal (floats included --
        the vectorized path must be bit-exact, not close)."""
        loads = [TenantLoad(snappy_tenant, _trace("mmpp", 200, 9))]
        ref, vec = _run_both(fleet, loads)
        ref_dict = ref.to_dict(include_requests=True, include_events=False)
        vec_dict = vec.to_dict(include_requests=True, include_events=False)
        for payload in (ref_dict, vec_dict):
            # Engine compile/cache-hit relay counts track cache
            # temperature, not routing behaviour.
            for kind in ("compile", "cache_hit"):
                payload["event_counts"].pop(kind, None)
        assert vec_dict == ref_dict
        assert _filtered_events(vec) == _filtered_events(ref)
        assert vec.mean_soc == ref.mean_soc
        assert np.array_equal(
            np.asarray([r.soc for r in vec.completed]),
            np.asarray([r.soc for r in ref.completed]),
        )
