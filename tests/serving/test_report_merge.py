"""Tests for RouterReport.merge: exact associativity, order
independence, ResilienceStats recombination, and percentile
recomputation over merged records."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.satisfaction import SoCBreakdown, TimeRequirement
from repro.obs import linear_percentile
from repro.serving import (
    CompletedRequest,
    EventLog,
    PlatformStats,
    RejectedRequest,
    Request,
    RequestRouter,
    ResilienceStats,
    RouterConfig,
    RouterReport,
    Tenant,
    TenantLoad,
)
from repro.workloads import bursty_trace

#: Fixed platform -> GPU mapping so any two leaves mentioning the
#: same platform agree on its hardware (merge rejects mismatches).
_GPUS = {"P0": "gpu-a", "P1": "gpu-b"}

_REQUIREMENT = TimeRequirement(imperceptible_s=0.1, unusable_s=0.5)


def _request(rid, tenant_name, arrival_s):
    return Request(
        rid=rid,
        tenant=Tenant(tenant_name, _REQUIREMENT, priority=1),
        arrival_s=arrival_s,
    )


@st.composite
def leaf_reports(draw):
    """One synthetic single-router report: dense local rids, one
    terminal record per request, events referencing those rids."""
    n_completed = draw(st.integers(min_value=0, max_value=4))
    n_rejected = draw(st.integers(min_value=0, max_value=3))
    horizon_s = draw(
        st.floats(min_value=5.0, max_value=20.0, allow_nan=False)
    )
    tenants = st.sampled_from(("alpha", "beta", "gamma"))
    arrivals = st.floats(min_value=0.0, max_value=4.0, allow_nan=False)
    completed = []
    rejected = []
    events = EventLog()
    rid = 0
    for _ in range(n_completed):
        request = _request(rid, draw(tenants), draw(arrivals))
        latency = draw(
            st.floats(min_value=0.01, max_value=0.6, allow_nan=False)
        )
        platform = draw(st.sampled_from(tuple(_GPUS)))
        record = CompletedRequest(
            request=request,
            platform=platform,
            level=draw(st.integers(min_value=0, max_value=2)),
            batch=draw(st.integers(min_value=1, max_value=4)),
            start_s=request.arrival_s,
            finish_s=request.arrival_s + latency,
            entropy=draw(
                st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
            ),
            soc=SoCBreakdown(
                soc_time=1.0, soc_accuracy=1.0,
                energy_joules=0.1, value=1.0,
            ),
        )
        completed.append(record)
        events.record(
            "enqueue", request.arrival_s,
            tenant=request.tenant.name, request_ids=(rid,),
        )
        events.record(
            "complete", record.finish_s,
            tenant=request.tenant.name, platform=platform,
            request_ids=(rid,),
        )
        rid += 1
    for _ in range(n_rejected):
        request = _request(rid, draw(tenants), draw(arrivals))
        rejected.append(
            RejectedRequest(request=request, reason="saturated")
        )
        events.record(
            "reject", request.arrival_s,
            tenant=request.tenant.name, request_ids=(rid,),
            reason="saturated",
        )
        rid += 1
    platforms = [
        PlatformStats(
            platform=name,
            gpu=_GPUS[name],
            batches=draw(st.integers(min_value=0, max_value=5)),
            requests=draw(st.integers(min_value=0, max_value=8)),
            busy_s=draw(
                st.floats(min_value=0.0, max_value=3.0, allow_nan=False)
            ),
            utilization=0.1,
            energy_j=draw(
                st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
            ),
            mean_level=draw(
                st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
            ),
            peak_level=draw(st.integers(min_value=0, max_value=3)),
            final_level=0,
            failed_batches=draw(st.integers(min_value=0, max_value=2)),
        )
        for name in sorted(draw(st.sets(st.sampled_from(tuple(_GPUS)),
                                        min_size=1, max_size=2)))
    ]
    resilience = None
    if draw(st.booleans()):
        episodes = draw(st.integers(min_value=0, max_value=3))
        resilience = ResilienceStats(
            faults_injected=draw(st.integers(min_value=0, max_value=5)),
            outages=draw(st.integers(min_value=0, max_value=2)),
            mttr_s=draw(
                st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
            ) if episodes else 0.0,
            mttr_episodes=episodes,
            retries=draw(st.integers(min_value=0, max_value=4)),
        )
    return RouterReport(
        completed=completed,
        rejected=rejected,
        platforms=platforms,
        events=events,
        horizon_s=horizon_s,
        resilience=resilience,
    )


class TestMergeProperties:
    @settings(max_examples=40, deadline=None)
    @given(leaves=st.lists(leaf_reports(), min_size=3, max_size=3))
    def test_associative(self, leaves):
        """Any grouping of the same leaves merges bit-identically."""
        a, b, c = leaves
        left = RouterReport.merge([RouterReport.merge([a, b]), c])
        right = RouterReport.merge([a, RouterReport.merge([b, c])])
        flat = RouterReport.merge([a, b, c])
        assert left.fingerprint() == flat.fingerprint()
        assert right.fingerprint() == flat.fingerprint()

    @settings(max_examples=40, deadline=None)
    @given(
        leaves=st.lists(leaf_reports(), min_size=2, max_size=4),
        seed=st.randoms(use_true_random=False),
    )
    def test_order_independent(self, leaves, seed):
        """Any permutation of the leaves merges bit-identically."""
        shuffled = list(leaves)
        seed.shuffle(shuffled)
        assert (
            RouterReport.merge(shuffled).fingerprint()
            == RouterReport.merge(leaves).fingerprint()
        )

    @settings(max_examples=25, deadline=None)
    @given(leaves=st.lists(leaf_reports(), min_size=2, max_size=3))
    def test_merge_preserves_totals(self, leaves):
        merged = RouterReport.merge(leaves)
        assert merged.n_offered == sum(r.n_offered for r in leaves)
        assert merged.n_completed == sum(r.n_completed for r in leaves)
        rids = sorted(
            [r.request.rid for r in merged.completed]
            + [r.request.rid for r in merged.rejected]
        )
        assert rids == list(range(merged.n_offered))

    @settings(max_examples=25, deadline=None)
    @given(leaves=st.lists(leaf_reports(), min_size=2, max_size=3))
    def test_percentile_recomputed_over_union(self, leaves):
        """Merged percentiles come from the union of leaf latencies."""
        merged = RouterReport.merge(leaves)
        union = [
            record.latency_s for leaf in leaves for record in leaf.completed
        ]
        for q in (50.0, 95.0, 99.0):
            assert merged.percentile_latency_s(q) == linear_percentile(
                union, q
            )


class TestResilienceMerge:
    def test_counters_sum(self):
        a = ResilienceStats(faults_injected=2, outages=1, retries=3,
                            mttr_s=1.0, mttr_episodes=1)
        b = ResilienceStats(faults_injected=1, outages=0, retries=2,
                            mttr_s=0.0, mttr_episodes=0)
        merged = ResilienceStats.merge([a, b])
        assert merged.faults_injected == 3
        assert merged.outages == 1
        assert merged.retries == 5

    def test_mttr_episode_weighted(self):
        a = ResilienceStats(mttr_s=1.0, mttr_episodes=1)
        b = ResilienceStats(mttr_s=3.0, mttr_episodes=3)
        merged = ResilienceStats.merge([a, b])
        assert merged.mttr_episodes == 4
        assert merged.mttr_s == pytest.approx((1.0 + 9.0) / 4)

    def test_zero_episodes(self):
        merged = ResilienceStats.merge(
            [ResilienceStats(), ResilienceStats()]
        )
        assert merged.mttr_s == 0.0
        assert merged.mttr_episodes == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ResilienceStats.merge([])


class TestMergeValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RouterReport.merge([])

    def test_single_leaf_unchanged(self):
        report = RouterReport(horizon_s=3.0)
        assert RouterReport.merge([report]) is report

    def test_gpu_mismatch_rejected(self):
        def leaf(gpu):
            return RouterReport(
                platforms=[PlatformStats(
                    platform="P0", gpu=gpu, batches=0, requests=0,
                    busy_s=0.0, utilization=0.0, energy_j=0.0,
                    mean_level=0.0, peak_level=0, final_level=0,
                )],
                horizon_s=1.0,
            )
        with pytest.raises(ValueError):
            RouterReport.merge([leaf("gpu-a"), leaf("gpu-b")])

    def test_duplicate_rid_within_leaf_rejected(self):
        request = _request(0, "alpha", 0.0)
        leaf = RouterReport(
            rejected=[
                RejectedRequest(request=request, reason="saturated"),
                RejectedRequest(request=request, reason="saturated"),
            ],
            horizon_s=1.0,
        )
        with pytest.raises(ValueError):
            RouterReport.merge([leaf, RouterReport(horizon_s=1.0)])


class TestMergeEndToEnd:
    @pytest.fixture(scope="class")
    def leaf_runs(self, fleet):
        """Three real single-router runs over distinct tenants."""
        reports = []
        for index in range(3):
            loads = [TenantLoad(
                Tenant("tenant-%d" % index, _REQUIREMENT, priority=1),
                bursty_trace(30, 30.0, seed=100 + index),
            )]
            reports.append(
                RequestRouter(fleet, RouterConfig()).run(loads)
            )
        return reports

    def test_real_reports_merge_associatively(self, leaf_runs):
        a, b, c = leaf_runs
        flat = RouterReport.merge([a, b, c])
        nested = RouterReport.merge([a, RouterReport.merge([b, c])])
        assert flat.fingerprint() == nested.fingerprint()
        assert (
            RouterReport.merge([c, b, a]).fingerprint()
            == flat.fingerprint()
        )

    def test_real_reports_merge_totals(self, leaf_runs):
        merged = RouterReport.merge(leaf_runs)
        assert merged.n_offered == sum(r.n_offered for r in leaf_runs)
        assert merged.horizon_s == max(r.horizon_s for r in leaf_runs)
        union = [
            record.latency_s
            for leaf in leaf_runs
            for record in leaf.completed
        ]
        assert merged.percentile_latency_s(95.0) == linear_percentile(
            union, 95.0
        )
