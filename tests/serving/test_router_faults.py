"""Fault injection through the router: failover, retries, breakers,
degraded-architecture recompiles, and chaos determinism."""

import numpy as np
import pytest

from repro.faults import (
    FaultEvent,
    FaultTrace,
    FaultTraceConfig,
    PlatformHealth,
    generate_fault_trace,
)
from repro.gpu import K20C
from repro.serving import RequestRouter, RouterConfig, TenantLoad
from repro.workloads import RequestTrace


def _loads(tenant, arrivals):
    arr = np.asarray(arrivals, dtype=float)
    trace = RequestTrace(arrivals_s=arr, difficulty=np.ones_like(arr))
    return [TenantLoad(tenant, trace)]


def _terminal_rids(report):
    return (
        {r.request.rid for r in report.completed}
        | {r.request.rid for r in report.rejected}
    )


class TestRouterConfigValidation:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("queue_limit", 0),
            ("flush_timeout_s", 0.0),
            ("max_levels", 0),
            ("batch_growth", 0),
            ("max_batch", 0),
            ("min_gain", 1.0),
            ("low_water_batches", 99.0),
            ("window", 0),
            ("policy", "bogus"),
            ("retry_limit", -1),
            ("retry_backoff_s", 0.0),
            ("retry_backoff_growth", 0.5),
            ("breaker_threshold", 0),
            ("breaker_cooldown_s", 0.0),
        ],
    )
    def test_bad_value_names_the_field(self, field, value):
        with pytest.raises(ValueError, match=field):
            RouterConfig(**{field: value})

    def test_good_config_passes(self):
        RouterConfig()  # defaults must self-validate


class TestFaultValidation:
    def test_unknown_platform_in_trace_raises(self, deployments, snappy_tenant):
        router = RequestRouter(deployments)
        faults = FaultTrace(
            [FaultEvent(time_s=0.0, kind="transient", platform="eniac")]
        )
        with pytest.raises(ValueError, match="eniac"):
            router.run(_loads(snappy_tenant, [0.0]), faults)

    def test_clean_run_has_no_resilience_stats(self, deployments, snappy_tenant):
        report = RequestRouter(deployments).run(_loads(snappy_tenant, [0.0]))
        assert report.resilience is None

    def test_faulted_run_reports_resilience(self, deployments, snappy_tenant):
        report = RequestRouter(deployments).run(
            _loads(snappy_tenant, [0.0]), FaultTrace()
        )
        assert report.resilience is not None
        assert report.resilience.faults_injected == 0


class TestTransientsAndRetries:
    def _single(self, deployments, **overrides):
        config = RouterConfig(retry_backoff_s=0.01, **overrides)
        return RequestRouter({"K20c": deployments["K20c"]}, config)

    def test_transient_retries_then_completes(self, deployments, snappy_tenant):
        router = self._single(deployments)
        faults = FaultTrace(
            [FaultEvent(time_s=0.0, kind="transient", platform="K20c")]
        )
        report = router.run(_loads(snappy_tenant, [0.001]), faults)
        assert len(report.completed) == 1
        assert not report.rejected
        res = report.resilience
        assert res.batch_failures == 1
        assert res.retries == 1
        assert len(report.events.of_kind("batch_failed")) == 1
        (retry,) = report.events.of_kind("retry")
        assert retry.detail["attempt"] == 1

    def test_exhausted_retries_reject_explicitly(
        self, deployments, snappy_tenant
    ):
        router = self._single(deployments, retry_limit=1)
        faults = FaultTrace([
            FaultEvent(time_s=0.0, kind="transient", platform="K20c"),
            FaultEvent(time_s=0.0, kind="transient", platform="K20c"),
        ])
        report = router.run(_loads(snappy_tenant, [0.001]), faults)
        assert not report.completed
        assert [r.reason for r in report.rejected] == ["retries-exhausted"]
        assert report.resilience.retries == 1

    def test_health_blind_transient_rejects_failed(
        self, deployments, snappy_tenant
    ):
        router = self._single(deployments, resilience=False)
        faults = FaultTrace(
            [FaultEvent(time_s=0.0, kind="transient", platform="K20c")]
        )
        report = router.run(_loads(snappy_tenant, [0.001]), faults)
        assert [r.reason for r in report.rejected] == ["failed"]
        assert report.resilience.retries == 0
        assert not report.events.of_kind("retry")


class TestOutageFailover:
    def test_outage_evacuates_to_survivor(self, deployments, background_tenant):
        arrivals = [i * 0.001 for i in range(20)]
        loads = _loads(background_tenant, arrivals)
        # Find the platform the clean run actually leans on, then
        # kill exactly that one mid-storm.
        clean = RequestRouter(deployments).run(loads)
        busy = max(clean.platforms, key=lambda p: p.requests).platform
        faults = FaultTrace([
            FaultEvent(time_s=0.005, kind="outage", platform=busy, episode=0),
            FaultEvent(time_s=1.0, kind="restore", platform=busy, episode=0),
        ])
        report = RequestRouter(deployments).run(loads, faults)
        # Zero-loss: every request reached a terminal state, exactly once.
        assert _terminal_rids(report) == set(range(20))
        assert len(report.completed) + len(report.rejected) == 20
        res = report.resilience
        assert res.outages == 1
        assert res.failovers >= 1
        assert res.requests_rescued >= 1
        assert res.mttr_s == pytest.approx(1.0 - 0.005)
        assert report.events.of_kind("failover")
        # The dead platform takes no dispatches while it is down.
        for event in report.events.of_kind("dispatch"):
            if event.platform == busy:
                assert event.time_s < 0.005 or event.time_s >= 1.0

    def test_health_blind_outage_fails_batches(
        self, deployments, snappy_tenant
    ):
        config = RouterConfig(resilience=False)
        router = RequestRouter({"K20c": deployments["K20c"]}, config)
        faults = FaultTrace(
            [FaultEvent(time_s=0.0, kind="outage", platform="K20c", episode=0)]
        )
        report = router.run(_loads(snappy_tenant, [0.001, 0.002]), faults)
        # The blind router keeps launching onto the corpse; everything
        # fails, nothing is silently lost.
        assert not report.completed
        assert {r.reason for r in report.rejected} == {"failed"}
        assert _terminal_rids(report) == {0, 1}
        assert report.resilience.batch_failures >= 1
        assert report.resilience.failovers == 0


class TestBreakerIntegration:
    def test_open_breaker_blocks_dispatch_until_probe(
        self, deployments, background_tenant
    ):
        cooldown = 0.05
        config = RouterConfig(
            breaker_threshold=1,
            breaker_cooldown_s=cooldown,
            # Back off past the cooldown: on a one-platform fleet a
            # retry landing mid-cooldown finds no open platform and is
            # explicitly rejected as saturated.
            retry_backoff_s=0.1,
        )
        router = RequestRouter({"K20c": deployments["K20c"]}, config)
        faults = FaultTrace(
            [FaultEvent(time_s=0.0, kind="transient", platform="K20c")]
        )
        report = router.run(
            _loads(background_tenant, [0.001] * 4), faults
        )
        events = report.events
        (opened,) = events.of_kind("breaker_open")
        (half,) = events.of_kind("breaker_half_open")
        (closed,) = events.of_kind("breaker_close")
        assert opened.time_s < half.time_s <= closed.time_s
        # Nothing departs while the breaker is open: the next dispatch
        # after the trip is the probe, a full cooldown later.
        later = [
            e.time_s
            for e in events.of_kind("dispatch")
            if e.time_s > opened.time_s
        ]
        assert later
        assert min(later) >= opened.time_s + cooldown
        assert min(later) == pytest.approx(half.time_s)
        # The probe succeeds, the breaker closes, the queue drains.
        assert len(report.completed) == 4
        assert not report.rejected
        assert report.resilience.breaker_opens == 1
        assert report.resilience.breaker_closes == 1


class TestDegradedRecompile:
    def test_sm_failure_forces_recompile(self, deployments, background_tenant):
        deployment = deployments["K20c"]
        router = RequestRouter({"K20c": deployment})
        health = PlatformHealth(K20C, sm_fail_fraction=0.25)
        surviving = K20C.n_sms - health.failed_sms
        faults = FaultTrace([
            FaultEvent(
                time_s=0.0005, kind="sm_fail", platform="K20c",
                sm_fail_fraction=0.25, episode=0,
            ),
            FaultEvent(time_s=0.5, kind="sm_recover", platform="K20c", episode=0),
        ])
        loads = _loads(background_tenant, [0.001, 0.002, 0.003])
        before = deployment.engine.stats.compile_misses
        report = router.run(loads, faults)
        after = deployment.engine.stats.compile_misses
        # The ladder was re-targeted: real compile-cache misses keyed
        # on the degraded architecture's health-keyed name.
        assert after > before
        degraded_compiles = [
            e for e in report.events.of_kind("compile")
            if "@sm" in (e.platform or "")
        ]
        assert degraded_compiles
        for event in degraded_compiles:
            assert ("@sm%d," % surviving) in event.platform
        # Requests served while degraded still complete.
        assert len(report.completed) == 3

    def test_degraded_plan_respects_surviving_sms(self, deployments):
        deployment = deployments["K20c"]
        arch = PlatformHealth(K20C, sm_fail_fraction=0.25).architecture()
        plan = deployment.engine.compile_with_batch(
            deployment.network, 1, arch=arch
        )
        assert plan.arch.n_sms == arch.n_sms < K20C.n_sms
        # Occupancy/optSM were recomputed against the surviving SMs.
        assert plan.max_opt_sm <= arch.n_sms
        assert all(s.opt_sm <= arch.n_sms for s in plan.schedules)

    def test_refaulting_same_state_is_cache_hit(
        self, deployments, background_tenant
    ):
        deployment = deployments["K20c"]
        router = RequestRouter({"K20c": deployment})
        faults = FaultTrace([
            FaultEvent(
                time_s=0.0005, kind="sm_fail", platform="K20c",
                sm_fail_fraction=0.25, episode=0,
            ),
        ])
        loads = _loads(background_tenant, [0.001])
        router.run(loads, faults)  # warms the degraded-arch plan cache
        before = deployment.engine.stats.compile_misses
        report = router.run(loads, faults)
        assert deployment.engine.stats.compile_misses == before
        assert report.events.of_kind("cache_hit")


class TestChaosDeterminism:
    def _chaos(self, seed):
        return generate_fault_trace(
            ["K20c", "TX1"],
            horizon_s=0.06,
            config=FaultTraceConfig(
                outages=1,
                outage_duration_s=0.02,
                transients=2,
                start_window=0.5,
            ),
            seed=seed,
        )

    def test_same_seed_is_bit_identical(self, deployments, background_tenant):
        loads = _loads(
            background_tenant, [i * 0.002 for i in range(30)]
        )
        faults = self._chaos(seed=5)
        a = RequestRouter(deployments).run(loads, faults)
        b = RequestRouter(deployments).run(loads, faults)
        assert a.fingerprint() == b.fingerprint()
        assert a.to_dict(include_events=False) == b.to_dict(include_events=False)

    def test_different_seeds_diverge(self, deployments, background_tenant):
        loads = _loads(
            background_tenant, [i * 0.002 for i in range(30)]
        )
        a = RequestRouter(deployments).run(loads, self._chaos(seed=5))
        c = RequestRouter(deployments).run(loads, self._chaos(seed=6))
        assert a.fingerprint() != c.fingerprint()
