"""Retry-budget and circuit-breaker state machines."""

import math

import pytest

from repro.core.satisfaction import TimeRequirement
from repro.serving import BREAKER_STATES, CircuitBreaker, Request, RetryPolicy, Tenant


def _request(arrival_s=0.0, unusable_s=0.5):
    tenant = Tenant("t", TimeRequirement(0.1, unusable_s), priority=1)
    return Request(rid=0, tenant=tenant, arrival_s=arrival_s)


def _undeadlined():
    tenant = Tenant("bg", TimeRequirement(0.1, math.inf))
    return Request(rid=1, tenant=tenant, arrival_s=0.0)


class TestRetryPolicy:
    def test_validation_names_the_field(self):
        with pytest.raises(ValueError, match="limit"):
            RetryPolicy(limit=-1)
        with pytest.raises(ValueError, match="backoff_s"):
            RetryPolicy(backoff_s=0.0)
        with pytest.raises(ValueError, match="growth"):
            RetryPolicy(growth=0.5)

    def test_exponential_schedule(self):
        policy = RetryPolicy(limit=3, backoff_s=0.01, growth=2.0)
        request = _undeadlined()
        delays = [policy.backoff_for(a, 0.0, request) for a in (1, 2, 3)]
        assert delays == [0.01, 0.02, 0.04]

    def test_exhausted_budget_returns_none(self):
        policy = RetryPolicy(limit=2, backoff_s=0.01)
        assert policy.backoff_for(3, 0.0, _undeadlined()) is None
        assert RetryPolicy(limit=0).backoff_for(1, 0.0, _undeadlined()) is None

    def test_backoff_capped_at_half_remaining_slack(self):
        # Deadline at 0.5 s; at now=0.4 the slack is 0.1 s, so even a
        # huge nominal backoff is capped at 0.05 s.
        policy = RetryPolicy(limit=2, backoff_s=10.0)
        delay = policy.backoff_for(1, 0.4, _request())
        assert delay == pytest.approx(0.05)

    def test_expired_deadline_returns_none(self):
        policy = RetryPolicy(limit=5, backoff_s=0.01)
        assert policy.backoff_for(1, 0.6, _request()) is None

    def test_infinite_deadline_never_capped(self):
        policy = RetryPolicy(limit=1, backoff_s=3.0)
        assert policy.backoff_for(1, 100.0, _undeadlined()) == 3.0


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown_s"):
            CircuitBreaker(cooldown_s=0.0)
        assert BREAKER_STATES == ("closed", "open", "half-open")

    def test_opens_at_threshold_not_before(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=1.0)
        assert breaker.on_failure(0.0) is None
        assert breaker.on_failure(0.1) is None
        assert breaker.state(0.1) == "closed"
        assert breaker.allows(0.1)
        assert breaker.on_failure(0.2) == "breaker_open"
        assert breaker.state(0.2) == "open"
        assert not breaker.allows(0.2)
        assert breaker.opens == 1

    def test_success_resets_consecutive_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=1.0)
        breaker.on_failure(0.0)
        breaker.on_success(0.1)
        assert breaker.on_failure(0.2) is None  # streak restarted
        assert breaker.state(0.2) == "closed"

    def test_half_opens_after_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        breaker.on_failure(0.0)
        assert breaker.state(0.99) == "open"
        assert not breaker.allows(0.99)
        assert breaker.state(1.0) == "half-open"
        assert breaker.allows(1.0)

    def test_half_open_admits_exactly_one_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        breaker.on_failure(0.0)
        assert breaker.on_dispatch(1.5) == "breaker_half_open"
        # Probe in flight: no second dispatch until it resolves.
        assert not breaker.allows(1.6)
        assert breaker.on_dispatch(1.6) is None

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        breaker.on_failure(0.0)
        breaker.on_dispatch(1.5)
        assert breaker.on_success(1.7) == "breaker_close"
        assert breaker.state(1.7) == "closed"
        assert breaker.allows(1.7)
        assert breaker.closes == 1
        assert breaker.failures == 0

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        breaker.on_failure(0.0)
        breaker.on_dispatch(1.5)
        assert breaker.on_failure(1.7) == "breaker_open"
        assert breaker.opens == 2
        # The cooldown restarts from the probe failure, not the
        # original trip: still open at 2.5, half-open at 2.7.
        assert breaker.state(2.5) == "open"
        assert not breaker.allows(2.5)
        assert breaker.state(2.7) == "half-open"

    def test_closed_dispatch_is_silent(self):
        breaker = CircuitBreaker()
        assert breaker.on_dispatch(0.0) is None
        assert breaker.on_success(0.1) is None
