"""Tests for repro.serving.shard: planner, fault splitting, and the
coordinator in inline mode (spawn parity is covered by the pickle
suite and the sharding benchmark)."""

import pytest

from repro.core.satisfaction import TimeRequirement
from repro.faults import FaultEvent, FaultTrace
from repro.serving import (
    FleetCoordinator,
    FleetSpec,
    RequestRouter,
    RouterConfig,
    Tenant,
    TenantLoad,
)
from repro.serving.shard import (
    ShardPlanner,
    ShardSpec,
    ShardWorker,
    parse_shard_platform,
    shard_label,
    shard_platform,
    shard_seed,
    split_fault_trace,
)
from repro.workloads import bursty_trace

_REQUIREMENT = TimeRequirement(imperceptible_s=0.1, unusable_s=0.5)


def _load(name, n=20, rate_hz=20.0, seed=0, priority=1):
    return TenantLoad(
        Tenant(name, _REQUIREMENT, priority=priority),
        bursty_trace(n, rate_hz, seed=seed),
    )


@pytest.fixture(scope="module")
def fleet_spec(spec):
    # Mirrors the conftest `fleet` fixture (same GPUs, same tuning
    # budget) so coordinator runs are comparable to direct ones.
    return FleetSpec(
        network="alexnet", spec=spec, gpus=("k20c", "tx1"),
        max_tuning_iterations=8,
    )


class TestShardNaming:
    def test_label(self):
        assert shard_label(0) == "s0"
        assert shard_label(12) == "s12"
        with pytest.raises(ValueError):
            shard_label(-1)

    def test_platform_round_trip(self):
        name = shard_platform(3, "K20c")
        assert name == "s3/K20c"
        assert parse_shard_platform(name) == (3, "K20c")

    def test_parse_bare_name(self):
        assert parse_shard_platform("K20c") == (None, "K20c")
        # A slash without the s<digits> prefix is not a shard tag.
        assert parse_shard_platform("rack/K20c") == (None, "rack/K20c")

    def test_seed_derivation(self):
        assert shard_seed(42, 0) == shard_seed(42, 0)
        seeds = {shard_seed(42, shard) for shard in range(16)}
        assert len(seeds) == 16
        assert all(seed >= 0 for seed in seeds)
        assert shard_seed(42, 0) != shard_seed(43, 0)


class TestShardPlanner:
    def test_assignments_stable_and_covering(self):
        planner = ShardPlanner(4)
        loads = [_load("tenant-%d" % i, seed=i) for i in range(12)]
        plan = planner.plan(loads)
        recovered = [
            load for piece in plan.shard_loads for load in piece
        ]
        assert sorted(load.tenant.name for load in recovered) == sorted(
            load.tenant.name for load in loads
        )
        for name, shard in plan.assignments:
            assert shard == planner.shard_of(name)
            assert plan.shard_of(name) == shard

    def test_assignment_independent_of_other_tenants(self):
        few = ShardPlanner(4).plan([_load("anchor")])
        many = ShardPlanner(4).plan(
            [_load("anchor")] + [_load("other-%d" % i) for i in range(6)]
        )
        assert few.shard_of("anchor") == many.shard_of("anchor")

    def test_duplicate_tenant_rejected(self):
        with pytest.raises(ValueError):
            ShardPlanner(2).plan([_load("same"), _load("same")])

    def test_unknown_tenant_in_plan(self):
        plan = ShardPlanner(2).plan([_load("known")])
        with pytest.raises(KeyError):
            plan.shard_of("unknown")

    def test_split_load_partitions_trace(self):
        load = _load("big", n=40)
        pieces = ShardPlanner(4).split_load(load)
        assert len(pieces) == 4
        assert all(piece.tenant == load.tenant for piece in pieces)
        assert sum(piece.trace.n_requests for piece in pieces) == 40

    def test_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardPlanner(0)


class TestSplitFaultTrace:
    def test_routes_by_prefix(self):
        trace = FaultTrace([
            FaultEvent(time_s=1.0, kind="outage",
                       platform="s0/K20c", episode=1),
            FaultEvent(time_s=2.0, kind="restore",
                       platform="s0/K20c", episode=1),
            FaultEvent(time_s=1.5, kind="transient", platform="s1/TX1"),
        ])
        pieces = split_fault_trace(trace, 2)
        assert [event.platform for event in pieces[0]] == ["K20c", "K20c"]
        assert [event.platform for event in pieces[1]] == ["TX1"]

    def test_untouched_shards_get_none(self):
        trace = FaultTrace(
            [FaultEvent(time_s=1.0, kind="transient", platform="s0/K20c")]
        )
        pieces = split_fault_trace(trace, 3)
        assert pieces[1] is None and pieces[2] is None

    def test_none_passes_through(self):
        assert split_fault_trace(None, 3) == [None, None, None]

    def test_bare_name_rejected_with_shards(self):
        trace = FaultTrace(
            [FaultEvent(time_s=1.0, kind="transient", platform="K20c")]
        )
        with pytest.raises(ValueError):
            split_fault_trace(trace, 2)

    def test_bare_name_allowed_single_shard(self):
        trace = FaultTrace(
            [FaultEvent(time_s=1.0, kind="transient", platform="K20c")]
        )
        (piece,) = split_fault_trace(trace, 1)
        assert piece[0].platform == "K20c"

    def test_out_of_range_shard_rejected(self):
        trace = FaultTrace(
            [FaultEvent(time_s=1.0, kind="transient", platform="s5/K20c")]
        )
        with pytest.raises(ValueError):
            split_fault_trace(trace, 2)


class TestShardSpecValidation:
    def test_shard_id_range(self, fleet_spec):
        with pytest.raises(ValueError):
            ShardSpec(shard_id=2, n_shards=2, fleet=fleet_spec,
                      config=RouterConfig(), loads=())
        with pytest.raises(ValueError):
            ShardSpec(shard_id=-1, n_shards=2, fleet=fleet_spec,
                      config=RouterConfig(), loads=())

    def test_label(self, fleet_spec):
        solo = ShardSpec(shard_id=0, n_shards=1, fleet=fleet_spec,
                         config=RouterConfig(), loads=())
        assert solo.label is None
        second = ShardSpec(shard_id=1, n_shards=4, fleet=fleet_spec,
                           config=RouterConfig(), loads=())
        assert second.label == "s1"

    def test_fleet_spec_requires_gpus(self, spec):
        with pytest.raises(ValueError):
            FleetSpec(network="alexnet", spec=spec, gpus=())


class TestCoordinatorInline:
    def test_degenerate_equals_direct_router(self, fleet, fleet_spec):
        loads = [_load("solo", n=30, seed=7)]
        direct = RequestRouter(fleet, RouterConfig()).run(loads)
        outcome = FleetCoordinator(
            fleet_spec, RouterConfig(), n_shards=1, inline=True
        ).run(shard_loads=[loads])
        assert outcome.report.fingerprint() == direct.fingerprint()
        assert outcome.rehomed == 0
        assert outcome.dead_shards == ()
        assert outcome.failover_target is None

    def test_two_shards_deterministic_and_qualified(self, fleet_spec):
        shard_loads = [
            [_load("t0", n=25, seed=1)],
            [_load("t1", n=25, seed=2)],
        ]

        def run():
            return FleetCoordinator(
                fleet_spec, RouterConfig(), n_shards=2, seed=5,
                inline=True,
            ).run(shard_loads=shard_loads)

        first, second = run(), run()
        assert first.report.fingerprint() == second.report.fingerprint()
        assert first.seeds == (shard_seed(5, 0), shard_seed(5, 1))
        assert len(set(first.seeds)) == 2
        platforms = {stats.platform for stats in first.report.platforms}
        assert platforms == {"s0/K20c", "s0/TX1", "s1/K20c", "s1/TX1"}
        rids = sorted(
            [r.request.rid for r in first.report.completed]
            + [r.request.rid for r in first.report.rejected]
        )
        assert rids == list(range(first.report.n_offered))
        assert first.report.n_offered == 50

    def test_planner_path_places_all_tenants(self, fleet_spec):
        loads = [_load("tenant-%d" % i, n=8, seed=i) for i in range(6)]
        outcome = FleetCoordinator(
            fleet_spec, RouterConfig(), n_shards=2, inline=True
        ).run(loads=loads)
        assert outcome.report.n_offered == 48
        assert len(outcome.shard_reports) == 2

    def test_run_argument_validation(self, fleet_spec):
        coordinator = FleetCoordinator(fleet_spec, inline=True)
        with pytest.raises(ValueError):
            coordinator.run()
        with pytest.raises(ValueError):
            coordinator.run(loads=[], shard_loads=[[]])
        with pytest.raises(ValueError):
            FleetCoordinator(
                fleet_spec, n_shards=2, inline=True
            ).run(shard_loads=[[]])

    def test_constructor_validation(self, fleet_spec):
        with pytest.raises(ValueError):
            FleetCoordinator(fleet_spec, n_shards=0)
        with pytest.raises(ValueError):
            FleetCoordinator(fleet_spec, max_workers=0)

    def test_failover_rehomes_dead_shard(self, fleet_spec):
        """A fully dead shard loses zero requests: everything it
        rejected is re-adjudicated by the healthy target."""
        shard_loads = [
            [_load("t0", n=20, seed=1)],
            [_load("t1", n=20, seed=2)],
        ]
        events = []
        for episode, gpu in enumerate(("K20c", "TX1"), start=1):
            events.append(FaultEvent(
                time_s=0.001, kind="outage",
                platform=shard_platform(1, gpu), episode=episode,
            ))
            events.append(FaultEvent(
                time_s=500.0, kind="restore",
                platform=shard_platform(1, gpu), episode=episode,
            ))
        outcome = FleetCoordinator(
            fleet_spec, RouterConfig(), n_shards=2, inline=True
        ).run(shard_loads=shard_loads, faults=FaultTrace(events))
        assert outcome.dead_shards == (1,)
        assert outcome.failover_target == 0
        assert outcome.rehomed > 0
        reasons = {r.reason for r in outcome.report.rejected}
        assert not reasons.intersection({"outage", "stranded"})
        assert (
            outcome.report.n_completed + len(outcome.report.rejected)
            == outcome.report.n_offered
            == 40
        )
        rids = sorted(
            [r.request.rid for r in outcome.report.completed]
            + [r.request.rid for r in outcome.report.rejected]
        )
        assert rids == list(range(40))

    def test_stitched_spans(self, fleet_spec):
        shard_loads = [
            [_load("t0", n=10, seed=1)],
            [_load("t1", n=10, seed=2)],
        ]
        outcome = FleetCoordinator(
            fleet_spec, RouterConfig(), n_shards=2, inline=True
        ).run(shard_loads=shard_loads, instrument=True)
        buffer = outcome.buffer
        assert buffer is not None
        roots = buffer.children_of(None)
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "run"
        assert root.attrs["shards"] == 2
        shard_runs = [
            span
            for span in buffer.children_of(root.span_id)
            if span.name == "run"
        ]
        assert {span.attrs.get("shard") for span in shard_runs} == {
            "s0", "s1",
        }
        assert root.end_s >= max(span.end_s for span in buffer)

    def test_uninstrumented_run_has_no_buffer(self, fleet_spec):
        outcome = FleetCoordinator(fleet_spec, inline=True).run(
            shard_loads=[[_load("t0", n=5)]]
        )
        assert outcome.buffer is None


class TestShardWorker:
    def test_worker_runs_spec(self, fleet_spec):
        spec = ShardSpec(
            shard_id=0, n_shards=1, fleet=fleet_spec,
            config=RouterConfig(), loads=(_load("w", n=10),),
        )
        worker = ShardWorker(spec)
        assert worker.shard_id == 0
        result = worker.run()
        assert result.shard_id == 0
        assert result.report.n_offered == 10
        assert result.spans is None

    def test_worker_instrumented_spans(self, fleet_spec):
        spec = ShardSpec(
            shard_id=1, n_shards=2, fleet=fleet_spec,
            config=RouterConfig(), loads=(_load("w", n=10),),
            instrument=True,
        )
        result = ShardWorker(spec).run()
        assert result.spans
        run_spans = [s for s in result.spans if s["name"] == "run"]
        assert run_spans and all(
            s["attrs"].get("shard") == "s1" for s in run_spans
        )

class TestSpawnGuard:
    def test_stdin_main_fails_fast(self, fleet_spec, monkeypatch):
        """A __main__ without a real file (stdin script) must raise,
        not hang the spawn pool in a respawn loop."""
        import sys
        import types

        fake_main = types.ModuleType("__main__")
        fake_main.__file__ = "<stdin>"
        monkeypatch.setitem(sys.modules, "__main__", fake_main)
        coordinator = FleetCoordinator(fleet_spec, n_shards=2)
        with pytest.raises(RuntimeError, match="stdin"):
            coordinator.run(shard_loads=[[_load("t0")], [_load("t1")]])
