"""Tests for repro.serving.dispatch: platform state and placement."""

import pytest

from repro.core.satisfaction import TimeRequirement
from repro.serving import (
    DegradationController,
    DegradationLadder,
    Dispatcher,
    PlatformState,
    Request,
    Tenant,
)


@pytest.fixture(scope="module")
def states(deployments):
    built = {}
    for name, deployment in deployments.items():
        ladder = DegradationLadder(deployment, max_levels=3)
        base = ladder[0].exec_time_s
        built[name] = PlatformState(
            name=name,
            deployment=deployment,
            ladder=ladder,
            controller=DegradationController(
                n_levels=len(ladder),
                high_water_s=3.0 * base,
                low_water_s=0.75 * base,
            ),
            flush_timeout_s=0.05,
        )
    return built


def _request(rid=0, arrival=0.0, priority=1, unusable=0.5):
    requirement = TimeRequirement(min(0.1, unusable), unusable)
    tenant = Tenant("t%d" % priority, requirement, priority)
    return Request(rid=rid, tenant=tenant, arrival_s=arrival)


class TestScoring:
    def test_idle_platform_latency_is_assembly_plus_exec(self, states):
        dispatcher = Dispatcher(states)
        state = states["K20c"]
        candidate = dispatcher.score(state, _request(), now=0.0)
        rung = state.ladder[0]
        expected = state.flush_timeout_s + rung.exec_time_s
        if rung.batch == 1:  # a lone request fills a batch-1 plan
            expected = rung.exec_time_s
        assert candidate.predicted_latency_s == pytest.approx(expected)
        assert candidate.feasible

    def test_queue_depth_raises_predicted_latency(self, states):
        dispatcher = Dispatcher(states)
        state = states["K20c"]
        idle = dispatcher.score(state, _request(), now=0.0)
        state.queue.extend(_request(rid=i) for i in range(10))
        try:
            queued = dispatcher.score(state, _request(), now=0.0)
        finally:
            state.queue.clear()
        assert queued.predicted_latency_s > idle.predicted_latency_s

    def test_deeper_level_scores_that_rung(self, states):
        dispatcher = Dispatcher(states)
        state = states["K20c"]
        deep = dispatcher.score(state, _request(), now=0.0, level=1)
        assert deep.level == 1
        assert deep.batch == state.ladder[1].batch

    def test_hopeless_deadline_is_infeasible(self, states):
        dispatcher = Dispatcher(states)
        state = states["K20c"]
        candidate = dispatcher.score(
            state, _request(unusable=1e-6), now=0.0
        )
        assert not candidate.feasible
        assert candidate.predicted_soc == 0.0


class TestChoice:
    def test_soc_policy_prefers_higher_soc(self, states):
        dispatcher = Dispatcher(states, policy="soc")
        best = dispatcher.choose(_request(), now=0.0)
        scored = dispatcher.candidates(_request(), now=0.0)
        assert best.predicted_soc == max(c.predicted_soc for c in scored)

    def test_fifo_policy_prefers_shortest_wait(self, states):
        dispatcher = Dispatcher(states, policy="fifo")
        best = dispatcher.choose(_request(), now=0.0)
        scored = dispatcher.candidates(_request(), now=0.0)
        assert best.predicted_latency_s == min(
            c.predicted_latency_s for c in scored
        )

    def test_among_restricts_platforms(self, states):
        dispatcher = Dispatcher(states)
        best = dispatcher.choose(_request(), now=0.0, among=["TX1"])
        assert best.platform == "TX1"
        assert dispatcher.choose(_request(), now=0.0, among=[]) is None

    def test_rejects_unknown_policy(self, states):
        with pytest.raises(ValueError, match="soc, fifo"):
            Dispatcher(states, policy="round-robin")


class TestQueueOrdering:
    def test_soc_order_priority_then_deadline_then_rid(self, states):
        state = states["K20c"]
        low = _request(rid=0, priority=0)
        high_late = _request(rid=1, priority=2, unusable=2.0)
        high_soon = _request(rid=2, priority=2, unusable=0.3)
        state.queue.extend([low, high_late, high_soon])
        try:
            state.order_queue("soc")
            assert [r.rid for r in state.queue] == [2, 1, 0]
        finally:
            state.queue.clear()

    def test_fifo_order_is_arrival_order(self, states):
        state = states["K20c"]
        state.queue.extend(
            [_request(rid=2, priority=9), _request(rid=0), _request(rid=1)]
        )
        try:
            state.order_queue("fifo")
            assert [r.rid for r in state.queue] == [0, 1, 2]
        finally:
            state.queue.clear()


class TestBacklog:
    def test_backlog_counts_busy_and_queue(self, states):
        state = states["TX1"]
        rung = state.ladder[state.controller.level]
        state.busy_until = 1.0
        state.queue.extend(_request(rid=i) for i in range(rung.batch))
        try:
            backlog = state.backlog_s(now=0.8)
            assert backlog == pytest.approx(0.2 + rung.exec_time_s)
        finally:
            state.queue.clear()
            state.busy_until = 0.0

    def test_idle_empty_platform_has_zero_backlog(self, states):
        assert states["TX1"].backlog_s(now=5.0) == 0.0
