"""Tests for repro.serving.admission: backpressure and rescue."""

import pytest

from repro.core.satisfaction import TimeRequirement
from repro.serving import (
    AdmissionController,
    DegradationController,
    DegradationLadder,
    Dispatcher,
    Request,
    Tenant,
)
from repro.serving.dispatch import PlatformState


@pytest.fixture
def states(deployments):
    built = {}
    for name, deployment in deployments.items():
        ladder = DegradationLadder(deployment, max_levels=3)
        base = ladder[0].exec_time_s
        built[name] = PlatformState(
            name=name,
            deployment=deployment,
            ladder=ladder,
            controller=DegradationController(
                n_levels=len(ladder),
                high_water_s=3.0 * base,
                low_water_s=0.75 * base,
            ),
            flush_timeout_s=0.05,
        )
    return built


def _controller(states, queue_limit=4, **kwargs):
    return AdmissionController(
        Dispatcher(states), queue_limit=queue_limit, **kwargs
    )


def _request(rid=0, unusable=0.5, priority=1):
    requirement = TimeRequirement(min(0.1, unusable), unusable)
    tenant = Tenant("t", requirement, priority)
    return Request(rid=rid, tenant=tenant, arrival_s=0.0)


class TestBackpressure:
    def test_admits_when_queues_open(self, states):
        admission = _controller(states)
        decision = admission.admit(_request(), now=0.0)
        assert decision.admitted
        assert decision.reason == "ok"
        assert decision.platform in states

    def test_saturated_when_every_queue_full(self, states):
        admission = _controller(states, queue_limit=2)
        for state in states.values():
            state.queue.extend(_request(rid=i) for i in range(2))
        decision = admission.admit(_request(rid=99), now=0.0)
        assert not decision.admitted
        assert decision.reason == "saturated"
        assert decision.platform is None

    def test_one_open_platform_still_admits(self, states):
        admission = _controller(states, queue_limit=2)
        states["TX1"].queue.extend(_request(rid=i) for i in range(2))
        decision = admission.admit(_request(rid=99), now=0.0)
        assert decision.admitted
        assert decision.platform == "K20c"

    def test_rejects_bad_queue_limit(self, states):
        with pytest.raises(ValueError):
            _controller(states, queue_limit=0)


class TestFeasibilityAndRescue:
    def test_deadline_free_request_always_ok(self, states):
        admission = _controller(states)
        decision = admission.admit(
            _request(unusable=float("inf")), now=0.0
        )
        assert decision.admitted
        assert decision.reason == "ok"

    def test_impossible_deadline_is_infeasible(self, states):
        admission = _controller(states)
        decision = admission.admit(_request(unusable=1e-9), now=0.0)
        assert not decision.admitted
        assert decision.reason == "infeasible"

    def test_rescue_escalates_a_deeper_rung(self, states):
        # Pick a deadline the rung-0 path misses (because assembly
        # waits for the flush timeout) but a deeper, bigger-batch rung
        # makes -- the degrade-before-reject path.
        admission = _controller(states)
        state = states["K20c"]
        rung0 = state.ladder[0]
        if len(state.ladder) < 2 or rung0.batch > 1:
            pytest.skip("ladder shape cannot stage the rescue")
        # Saturate rung 0's predicted latency with queued work so the
        # bigger-batch rung 1 (which drains the queue in fewer
        # executions) is the only feasible path.
        state.queue.extend(_request(rid=i) for i in range(4))
        states["TX1"].queue.extend(_request(rid=10 + i) for i in range(4))
        tight = 4 * rung0.exec_time_s  # < queue drain at rung 0
        decision = admission.admit(
            _request(rid=99, unusable=tight), now=0.0
        )
        if decision.admitted:
            assert decision.reason in ("ok", "ok-degraded")
            if decision.reason == "ok-degraded":
                chosen = states[decision.platform]
                assert chosen.controller.level == decision.candidate.level
                assert decision.candidate.level > 0

    def test_no_rescue_when_degradation_disabled(self, states):
        for state in states.values():
            state.controller.enabled = False
        admission = _controller(states, degrade_on_admission=False)
        state = states["K20c"]
        state.queue.extend(_request(rid=i) for i in range(4))
        states["TX1"].queue.extend(_request(rid=10 + i) for i in range(4))
        tight = 2 * state.ladder[0].exec_time_s
        decision = admission.admit(_request(rid=99, unusable=tight), now=0.0)
        # Whatever the verdict, it must never be a degraded admission.
        assert decision.reason != "ok-degraded"
        for state in states.values():
            assert state.controller.level == 0
