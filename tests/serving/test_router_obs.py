"""Integration tests: Instrumentation wired through the RequestRouter.

These drive the real discrete-event router over a real two-platform
fleet and assert that the observability layer records what actually
happened: every dispatched request appears in an execute_batch span,
the report grows a cache-neutral obs section, and instrumented runs
change neither the routing outcome nor its determinism.
"""

import pytest

from repro.faults import FaultTraceConfig, generate_fault_trace
from repro.obs import Instrumentation, chrome_trace, validate_chrome_trace
from repro.serving import RequestRouter, RouterConfig, TenantLoad
from repro.workloads import bursty_trace


def _capacity_rps(deployments):
    total = 0.0
    for deployment in deployments.values():
        entry = deployment.current_entry
        report = deployment.engine.execute(
            entry.compiled,
            power_gating=deployment.power_gating,
            use_priority_sm=deployment.use_priority_sm,
        )
        total += entry.compiled.batch / report.total_time_s
    return total


@pytest.fixture
def storm_load(deployments, snappy_tenant):
    rate = 2.0 * _capacity_rps(deployments)
    trace = bursty_trace(
        n_requests=300, rate_hz=rate, burst_factor=6.0, burst_fraction=0.3,
        seed=42,
    )
    return [TenantLoad(snappy_tenant, trace)]


def _run(fleet, load, faults=None, obs=None):
    return RequestRouter(fleet, RouterConfig()).run(
        load, faults=faults, obs=obs
    )


class TestSpanCoverage:
    def test_every_request_gets_a_span(self, fleet, storm_load):
        obs = Instrumentation()
        report = _run(fleet, storm_load, obs=obs)
        n_requests = storm_load[0].trace.n_requests
        assert obs.buffer.counts["request"] == n_requests
        # Every completed request was admitted exactly once; rejected-
        # at-admission requests never reach the admission instant.
        assert (
            len(report.completed)
            <= obs.buffer.counts["admission"]
            <= n_requests
        )

    def test_completed_requests_covered_by_execute_batches(
        self, fleet, storm_load
    ):
        obs = Instrumentation()
        report = _run(fleet, storm_load, obs=obs)
        completed = [r.request.rid for r in report.completed]
        assert completed
        assert obs.coverage_of(completed) == 1.0

    def test_spans_are_well_nested_and_closed(self, fleet, storm_load):
        obs = Instrumentation()
        _run(fleet, storm_load, obs=obs)
        assert obs.tracer.open_spans == 0
        spans = {s.span_id: s for s in obs.buffer}
        for span in obs.buffer:
            if span.parent_id is not None:
                assert spans[span.parent_id].contains(span)

    def test_chrome_export_is_valid(self, fleet, storm_load):
        obs = Instrumentation()
        _run(fleet, storm_load, obs=obs)
        assert validate_chrome_trace(chrome_trace(obs.buffer)) == []


class TestReportObsSection:
    def test_report_gains_obs_section(self, fleet, storm_load):
        obs = Instrumentation()
        report = _run(fleet, storm_load, obs=obs)
        assert report.obs is not None
        section = report.obs
        assert section["n_spans"] == len(obs.buffer)
        assert section["trace_fingerprint"] == obs.buffer.fingerprint()
        assert "requests_completed_total" in {
            key.split("{")[0] for key in section["metrics"]
        }

    def test_uninstrumented_report_has_no_obs_section(
        self, fleet, storm_load
    ):
        report = _run(fleet, storm_load)
        assert report.obs is None
        assert "obs" not in report.to_dict()

    def test_metrics_agree_with_report(self, fleet, deployments, storm_load):
        obs = Instrumentation()
        report = _run(fleet, storm_load, obs=obs)
        completed = sum(
            obs.metrics.counter(
                "requests_completed_total", platform=name
            ).value
            for name in deployments
        )
        assert completed == len(report.completed)


class TestDeterminism:
    def test_same_seed_runs_have_identical_trace_fingerprints(
        self, fleet, storm_load
    ):
        first = Instrumentation()
        second = Instrumentation()
        _run(fleet, storm_load, obs=first)
        _run(fleet, storm_load, obs=second)
        assert first.buffer.fingerprint() == second.buffer.fingerprint()

    def test_report_fingerprint_cache_neutral_with_obs(
        self, fleet, storm_load
    ):
        # First run compiles (cold engine cache), second hits the
        # plan cache; the obs section's fingerprint contribution must
        # not change between them.
        cold = Instrumentation()
        warm = Instrumentation()
        a = _run(fleet, storm_load, obs=cold)
        b = _run(fleet, storm_load, obs=warm)
        assert a.fingerprint() == b.fingerprint()

    def test_instrumentation_does_not_change_routing(
        self, fleet, storm_load
    ):
        plain = _run(fleet, storm_load)
        observed = _run(fleet, storm_load, obs=Instrumentation())
        assert [r.request.rid for r in plain.completed] == [
            r.request.rid for r in observed.completed
        ]
        assert plain.n_rejected == observed.n_rejected


class TestChaosSpans:
    @pytest.fixture
    def faults(self, deployments, storm_load):
        horizon = float(storm_load[0].trace.arrivals_s[-1]) + 1.0
        config = FaultTraceConfig(
            outages=1, outage_duration_s=0.25 * horizon, transients=2
        )
        return generate_fault_trace(
            sorted(deployments), horizon, config, seed=7
        )

    def test_fault_episodes_recorded(self, fleet, storm_load, faults):
        obs = Instrumentation()
        _run(fleet, storm_load, faults=faults, obs=obs)
        episodes = obs.buffer.of_name("fault_episode")
        assert episodes
        kinds = {s.attrs["fault_kind"] for s in episodes}
        assert "outage" in kinds
        injected = sum(
            instrument.value
            for name, _labels, instrument in obs.metrics.series()
            if name == "faults_injected_total"
        )
        assert injected == len(faults)

    def test_chaos_runs_stay_deterministic(self, fleet, storm_load, faults):
        first = Instrumentation()
        second = Instrumentation()
        a = _run(fleet, storm_load, faults=faults, obs=first)
        b = _run(fleet, storm_load, faults=faults, obs=second)
        assert a.fingerprint() == b.fingerprint()
        assert first.buffer.fingerprint() == second.buffer.fingerprint()


class TestDisabledObs:
    def test_disabled_obs_records_nothing(self, fleet, storm_load):
        obs = Instrumentation.disabled()
        report = _run(fleet, storm_load, obs=obs)
        assert len(obs.buffer) == 0
        assert report.obs is None

    def test_disabled_matches_plain_run(self, fleet, storm_load):
        plain = _run(fleet, storm_load)
        disabled = _run(fleet, storm_load, obs=Instrumentation.disabled())
        assert plain.fingerprint() == disabled.fingerprint()
