"""Tests for repro.serving.degradation: ladder and controller."""

import pytest

from repro.nn.perforation import RATE_LADDER, PerforationPlan
from repro.serving import (
    DegradationController,
    DegradationLadder,
    escalate_perforation,
)


class TestEscalatePerforation:
    def test_bumps_each_layer_one_rung(self):
        plan = PerforationPlan({"conv1": RATE_LADDER[1]})
        bumped = escalate_perforation(plan, ["conv1", "conv2"])
        assert bumped.rate("conv1") == RATE_LADDER[2]
        # A dense (unlisted) layer starts climbing from the bottom.
        assert bumped.rate("conv2") == RATE_LADDER[1]

    def test_top_of_ladder_is_fixed_point(self):
        top = RATE_LADDER[-1]
        plan = PerforationPlan({"conv1": top, "conv2": top})
        bumped = escalate_perforation(plan, ["conv1", "conv2"])
        assert bumped.rates == plan.rates


class TestDegradationLadder:
    @pytest.fixture(scope="class")
    def ladder(self, deployments):
        return DegradationLadder(deployments["K20c"], max_levels=4)

    def test_level_zero_is_current_entry(self, deployments, ladder):
        entry = deployments["K20c"].current_entry
        rung = ladder[0]
        assert rung.level == 0
        assert rung.batch == entry.compiled.batch
        assert rung.plan is entry.compiled
        assert rung.entropy == pytest.approx(entry.entropy)

    def test_deeper_rungs_strictly_gain_throughput(self, ladder):
        assert len(ladder) >= 2, "K20c should support at least one rung"
        rates = [rung.throughput_rps for rung in ladder.rungs]
        assert rates == sorted(rates)
        assert rates[-1] > rates[0]
        assert ladder.peak_throughput_rps == rates[-1]

    def test_entropy_never_improves_down_the_ladder(self, ladder):
        entropies = [rung.entropy for rung in ladder.rungs]
        assert entropies == sorted(entropies)

    def test_levels_and_max_level_consistent(self, ladder):
        assert ladder.max_level == len(ladder) - 1
        for level in range(len(ladder)):
            assert ladder[level].level == level

    def test_single_level_ladder(self, deployments):
        ladder = DegradationLadder(deployments["K20c"], max_levels=1)
        assert len(ladder) == 1

    def test_validation(self, deployments):
        with pytest.raises(ValueError):
            DegradationLadder(deployments["K20c"], max_levels=0)
        with pytest.raises(ValueError):
            DegradationLadder(deployments["K20c"], min_gain=1.0)
        with pytest.raises(ValueError):
            DegradationLadder(deployments["K20c"], batch_growth=0)


class TestDegradationController:
    def _controller(self, **kwargs):
        defaults = dict(
            n_levels=3, high_water_s=1.0, low_water_s=0.2, window=2
        )
        defaults.update(kwargs)
        return DegradationController(**defaults)

    def test_degrades_after_window_of_high_backlog(self):
        ctl = self._controller()
        assert ctl.observe(2.0) is None  # first strike
        assert ctl.observe(2.0) == "degrade"
        assert ctl.level == 1
        assert ctl.peak_level == 1

    def test_restores_after_window_of_low_backlog(self):
        ctl = self._controller()
        ctl.observe(2.0)
        ctl.observe(2.0)
        assert ctl.level == 1
        assert ctl.observe(0.0) is None
        assert ctl.observe(0.0) == "restore"
        assert ctl.level == 0

    def test_middling_backlog_resets_streaks(self):
        ctl = self._controller()
        ctl.observe(2.0)
        ctl.observe(0.5)  # inside the hysteresis band
        assert ctl.observe(2.0) is None  # streak restarted
        assert ctl.level == 0

    def test_saturates_at_deepest_level(self):
        ctl = self._controller(window=1)
        for _ in range(5):
            ctl.observe(2.0)
        assert ctl.level == 2

    def test_never_restores_past_level_zero(self):
        ctl = self._controller(window=1)
        assert ctl.observe(0.0) is None
        assert ctl.level == 0

    def test_escalate_to_jumps_and_clamps(self):
        ctl = self._controller()
        assert ctl.escalate_to(2)
        assert ctl.level == 2
        assert not ctl.escalate_to(1)  # never escalates backwards
        assert ctl.escalate_to(99) is False  # already clamped at top
        assert ctl.level == 2

    def test_disabled_controller_never_moves(self):
        ctl = self._controller(enabled=False)
        assert ctl.observe(100.0) is None
        assert ctl.observe(100.0) is None
        assert ctl.level == 0
        assert not ctl.escalate_to(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._controller(n_levels=0)
        with pytest.raises(ValueError):
            self._controller(low_water_s=2.0)  # above high water
        with pytest.raises(ValueError):
            self._controller(window=0)
