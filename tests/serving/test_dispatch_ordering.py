"""Regression tests: dispatch and rejection order under collisions.

A burst of requests sharing one arrival timestamp (and therefore one
deadline) used to leave the final rejection order at the mercy of
queue/dict insertion order.  ``_reject_stranded`` now sorts explicitly
by rid; these tests pin that ordering -- and the dispatch order of a
deadline-colliding queue -- as deterministic, repeatable and identical
across both router backends.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.obs import Instrumentation
from repro.serving import RequestRouter, RouterConfig, TenantLoad
from repro.serving.events import EventLog
from repro.serving.request import Request
from repro.serving.resilience import RetryPolicy
from repro.serving.router import _RunState
from repro.workloads import RequestTrace


def _colliding_trace(n, arrival_s=0.01):
    """``n`` requests arriving on the same clock tick: identical
    arrivals, identical deadlines, unit difficulty."""
    return RequestTrace(
        arrivals_s=np.full(n, arrival_s, dtype=np.float64),
        difficulty=np.ones(n, dtype=np.float64),
    )


class TestStrandedOrdering:
    """The zero-loss backstop is unreachable through the public seam
    (a probe or restore event always wakes a held queue), so the sort
    it applies is pinned directly: scrambled queues with colliding
    deadlines must reject in rid order, never insertion order."""

    def _run_backstop(self, fleet, snappy_tenant, queues, inflight=None):
        router = RequestRouter(fleet, RouterConfig())
        router._now = 1.0
        run = _RunState(
            EventLog(), RetryPolicy(limit=1), Instrumentation.disabled()
        )

        def request(rid):
            return Request(
                rid=rid, tenant=snappy_tenant, arrival_s=0.01,
                difficulty=1.0,
            )

        run.states = {
            name: SimpleNamespace(
                name=name,
                inflight=(
                    SimpleNamespace(
                        requests=[request(rid) for rid in inflight[name]]
                    )
                    if inflight and name in inflight
                    else None
                ),
                queue=[request(rid) for rid in rids],
            )
            for name, rids in queues.items()
        }
        router._reject_stranded(run)
        return run

    def test_scrambled_queue_rejects_in_rid_order(
        self, fleet, snappy_tenant
    ):
        run = self._run_backstop(
            fleet, snappy_tenant, {"K20c": [7, 2, 9, 0, 5, 1]}
        )
        rids = [r.request.rid for r in run.rejected]
        assert rids == [0, 1, 2, 5, 7, 9]
        assert all(r.reason == "stranded" for r in run.rejected)
        logged = [
            event["request_ids"][0]
            for event in run.events.to_dicts()
            if event["kind"] == "reject"
        ]
        assert logged == rids

    def test_inflight_and_queue_merge_in_rid_order(
        self, fleet, snappy_tenant
    ):
        """An abandoned in-flight batch and the residual queue are one
        rid-sorted stream, not batch-then-queue insertion order."""
        run = self._run_backstop(
            fleet, snappy_tenant,
            queues={"K20c": [8, 3]},
            inflight={"K20c": [6, 1]},
        )
        assert [r.request.rid for r in run.rejected] == [1, 3, 6, 8]

    def test_platforms_walk_in_sorted_name_order(
        self, fleet, snappy_tenant
    ):
        run = self._run_backstop(
            fleet, snappy_tenant, {"TX1": [4, 2], "K20c": [3, 1]}
        )
        assert [r.request.rid for r in run.rejected] == [1, 3, 2, 4]
        platforms = [
            event["platform"]
            for event in run.events.to_dicts()
            if event["kind"] == "reject"
        ]
        assert platforms == ["K20c", "K20c", "TX1", "TX1"]

    def test_queues_emptied_by_backstop(self, fleet, snappy_tenant):
        run = self._run_backstop(
            fleet, snappy_tenant,
            queues={"K20c": [2, 0]},
            inflight={"K20c": [1]},
        )
        state = run.states["K20c"]
        assert state.queue == []
        assert state.inflight is None


class TestCollidingDeadlineDispatch:
    @pytest.mark.parametrize("policy", ["soc", "fifo"])
    def test_dispatch_order_deterministic(
        self, fleet, snappy_tenant, policy
    ):
        """With every deadline equal, the dispatch sort must fall back
        to a stable total order -- same fingerprint on every run and
        on both backends."""
        loads = [TenantLoad(snappy_tenant, _colliding_trace(32))]
        config = RouterConfig(policy=policy)
        runs = [
            RequestRouter(fleet, config, backend=backend).run(loads)
            for backend in ("reference", "reference", "vectorized")
        ]
        assert runs[0].fingerprint() == runs[1].fingerprint()
        assert runs[2].fingerprint() == runs[0].fingerprint()

    def test_two_tenant_deadline_collision(
        self, fleet, snappy_tenant, realtime_tenant
    ):
        """Two tenants timed so their deadlines collide exactly: the
        dispatch key must break ties without leaking insertion order."""
        offset = (
            snappy_tenant.requirement.unusable_s
            - realtime_tenant.requirement.unusable_s
        )
        loads = [
            TenantLoad(snappy_tenant, _colliding_trace(12, arrival_s=0.5)),
            TenantLoad(
                realtime_tenant,
                _colliding_trace(12, arrival_s=0.5 + offset),
            ),
        ]
        ref = RequestRouter(fleet, RouterConfig()).run(loads)
        again = RequestRouter(fleet, RouterConfig()).run(loads)
        vec = RequestRouter(
            fleet, RouterConfig(), backend="vectorized"
        ).run(loads)
        assert ref.fingerprint() == again.fingerprint()
        assert vec.fingerprint() == ref.fingerprint()

    def test_every_request_accounted_for(self, fleet, snappy_tenant):
        """Zero-loss contract on a colliding burst: completed plus
        rejected covers every rid exactly once."""
        loads = [TenantLoad(snappy_tenant, _colliding_trace(24))]
        report = RequestRouter(fleet, RouterConfig()).run(loads)
        seen = sorted(
            [r.request.rid for r in report.completed]
            + [r.request.rid for r in report.rejected]
        )
        assert seen == list(range(24))


@pytest.fixture
def realtime_tenant(snappy_tenant):
    """A second tenant whose (finite) deadline can be made to collide
    with ``snappy``'s by offsetting arrivals."""
    from repro.core.satisfaction import TimeRequirement
    from repro.serving import Tenant

    return Tenant(
        "realtime",
        TimeRequirement(imperceptible_s=0.05, unusable_s=0.25),
        priority=1,
    )
