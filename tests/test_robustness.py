"""Robustness and failure-injection tests.

The library should fail loudly and precisely on malformed inputs, and
degrade gracefully (not crash, not silently mis-schedule) on edge-case
but legal ones: single-pixel networks, batch-of-one classifiers, chips
with one SM, pathological tuning thresholds, contradictory calibration
streams.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import ApplicationSpec, PervasiveCNN, TaskClass
from repro.core.offline import OfflineCompiler
from repro.core.runtime import AccuracyTuner, AnalyticEntropyModel
from repro.core.satisfaction import TimeRequirement
from repro.gpu import JETSON_TX1, K20C
from repro.gpu.kernels import GemmShape, make_kernel
from repro.nn.layers import ConvSpec, DenseSpec, SoftmaxSpec, TensorShape
from repro.nn.models import NetworkDescriptor
from repro.nn.perforation import PerforationPlan, make_grid_perforation
from repro.sim.engine import simulate_kernel


class TestDegenerateNetworks:
    def _tiny(self):
        return NetworkDescriptor(
            "micro",
            TensorShape(1, 3, 3),
            [
                ConvSpec("conv1", 2, 3, padding=1, activation="leaky"),
                DenseSpec("fc", 2, activation="none"),
                SoftmaxSpec(),
            ],
        )

    def test_micro_network_compiles_everywhere(self):
        net = self._tiny()
        for arch in (K20C, JETSON_TX1):
            plan = OfflineCompiler(arch).compile_with_batch(net, 1)
            assert plan.total_time_s > 0

    def test_micro_network_tunes(self):
        net = self._tiny()
        compiler = OfflineCompiler(JETSON_TX1)
        tuner = AccuracyTuner(compiler, net, AnalyticEntropyModel(net))
        table = tuner.tune(batch=1, entropy_threshold=2.0, max_iterations=4)
        assert len(table) >= 1

    def test_one_by_one_output_perforation_is_identity(self):
        """A 1x1 output grid cannot be perforated below one sample."""
        grid = make_grid_perforation(1, 1, 0.7)
        assert grid.kept == 1
        assert grid.rate == 0.0

    def test_network_without_convs_rejected_by_memory_profile(self):
        net = NetworkDescriptor(
            "dense-only",
            TensorShape(1, 4, 4),
            [DenseSpec("fc", 2, activation="none"), SoftmaxSpec()],
        )
        profile = net.memory_profile()
        # memory profile clamps conv count to 1 rather than crashing
        assert profile.n_conv_layers == 1


class TestDegenerateHardware:
    def test_single_sm_chip(self):
        lonely = replace(K20C, name="1-SM", n_sms=1)
        kernel = make_kernel(64, 64, block_size=256)
        result = simulate_kernel(lonely, kernel, GemmShape(128, 729, 512))
        assert result.sms_used == 1
        assert result.grid_size == kernel.grid_size(GemmShape(128, 729, 512))

    def test_single_sm_compilation(self):
        lonely = replace(JETSON_TX1, name="1-SM", n_sms=1)
        from repro.nn import pcnn_net

        plan = OfflineCompiler(lonely).compile_with_batch(pcnn_net("small"), 1)
        assert all(s.opt_sm == 1 for s in plan.schedules)

    def test_kernel_too_fat_for_shared_memory(self):
        from repro.gpu.kernels import SgemmKernel
        from repro.gpu import occupancy

        fat = SgemmKernel("fat", 128, 128, 256, regs_per_thread=64,
                          shared_mem_bytes=100 * 1024)
        assert occupancy.ctas_per_sm(K20C, fat) == 0
        with pytest.raises(ValueError):
            simulate_kernel(K20C, fat, GemmShape(128, 128, 64))


class TestPathologicalTuning:
    def test_threshold_below_baseline_yields_dense_only(self):
        from repro.nn import alexnet

        net = alexnet()
        compiler = OfflineCompiler(JETSON_TX1)
        model = AnalyticEntropyModel(net, base_entropy=1.0)
        tuner = AccuracyTuner(compiler, net, model)
        table = tuner.tune(batch=1, entropy_threshold=1.0, max_iterations=8)
        # entry 0 (dense) is admitted even at the baseline threshold,
        # and nothing beyond it is.
        assert len(table) == 1

    def test_zero_iteration_budget(self):
        from repro.nn import alexnet

        net = alexnet()
        compiler = OfflineCompiler(JETSON_TX1)
        tuner = AccuracyTuner(compiler, net, AnalyticEntropyModel(net))
        table = tuner.tune(batch=1, entropy_threshold=2.0, max_iterations=0)
        assert len(table) == 1


class TestContradictoryCalibration:
    def test_alternating_entropy_stream_stays_in_bounds(self):
        from repro.nn import alexnet

        pcnn = PervasiveCNN(JETSON_TX1)
        spec = ApplicationSpec(
            "age", TaskClass.INTERACTIVE, data_rate_hz=50.0
        )
        deployment = pcnn.deploy(alexnet(), spec, max_tuning_iterations=8)
        n = len(deployment.tuning_table)
        for i in range(30):
            entropy = 5.0 if i % 2 else 0.01
            deployment.process_request(observed_entropy=entropy)
            assert 0 <= deployment.calibrator.index < n

    def test_nan_entropy_rejected(self):
        from repro.core.runtime import UncertaintyMonitor

        monitor = UncertaintyMonitor(threshold=1.0)
        with pytest.raises(ValueError):
            monitor.observe(float("nan"))
        with pytest.raises(ValueError):
            monitor.observe(-0.5)


class TestRequirementEdges:
    def test_zero_span_tolerable_region(self):
        req = TimeRequirement(0.5, 0.5)
        from repro.core.satisfaction import soc_time

        assert soc_time(0.5, req) == 1.0
        assert soc_time(0.500001, req) == 0.0

    def test_compile_with_infeasible_budget_bottoms_out(self):
        """A 1 microsecond budget cannot be met; the compiler returns
        the best it can (batch 1) rather than looping forever."""
        from repro.nn import alexnet

        req = TimeRequirement(1e-6, 1e-6)
        plan = OfflineCompiler(JETSON_TX1).compile(
            alexnet(), req, data_rate_hz=50.0
        )
        assert plan.batch == 1


class TestNumericalEdges:
    def test_forward_on_constant_input(self, trained_small_net):
        from repro.nn.inference import forward

        net, params, _test = trained_small_net
        x = np.zeros((2,) + net.input_shape.as_tuple(), dtype=np.float32)
        probs = forward(net, params, x)
        assert np.isfinite(probs).all()
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-5)

    def test_forward_on_extreme_input(self, trained_small_net):
        from repro.nn.inference import forward

        net, params, _test = trained_small_net
        x = np.full((1,) + net.input_shape.as_tuple(), 1e4, dtype=np.float32)
        probs = forward(net, params, x)
        assert np.isfinite(probs).all()

    def test_full_rate_ladder_perforation_still_valid(self, trained_small_net):
        from repro.nn.inference import forward
        from repro.nn.perforation import RATE_LADDER

        net, params, test = trained_small_net
        plan = PerforationPlan(
            {layer.name: RATE_LADDER[-1] for layer in net.conv_layers}
        )
        probs = forward(net, params, test.images[:4], plan)
        assert np.isfinite(probs).all()


class TestFaultInjectionRobustness:
    """The chaos layer itself must be deterministic and fail loudly."""

    def _config(self):
        from repro.faults import FaultTraceConfig

        return FaultTraceConfig(
            outages=2, sm_failures=2, throttles=1, transients=3
        )

    def test_seeded_trace_is_bit_reproducible(self):
        from repro.faults import generate_fault_trace

        platforms = ["K20c", "TX1", "GTX970m"]
        a = generate_fault_trace(platforms, 30.0, self._config(), seed=9)
        b = generate_fault_trace(platforms, 30.0, self._config(), seed=9)
        assert a.to_dicts() == b.to_dicts()
        assert a.fingerprint() == b.fingerprint()
        c = generate_fault_trace(platforms, 30.0, self._config(), seed=10)
        assert c.fingerprint() != a.fingerprint()

    def test_single_sm_chip_cannot_lose_its_last_sm(self):
        from repro.faults import DegradedArchitecture, PlatformHealth

        lonely = replace(K20C, name="1-SM", n_sms=1)
        with pytest.raises(ValueError):
            DegradedArchitecture(lonely, failed_sms=1)
        # PlatformHealth clamps instead of crashing: even a 99% SM
        # failure leaves the single SM alive (nothing fails).
        health = PlatformHealth(lonely, sm_fail_fraction=0.99)
        assert health.failed_sms == 0
        assert health.architecture() is lonely

    def test_two_sm_chip_keeps_one_survivor(self):
        from repro.faults import PlatformHealth

        health = PlatformHealth(JETSON_TX1, sm_fail_fraction=0.99)
        assert health.failed_sms == JETSON_TX1.n_sms - 1
        assert health.architecture().n_sms == 1

    def test_transient_flood_never_crashes_the_health_state(self):
        from repro.faults import FaultEvent, PlatformHealth

        health = PlatformHealth(K20C)
        for i in range(50):
            consequence = health.apply(
                FaultEvent(
                    time_s=float(i), kind="transient", platform="K20c"
                )
            )
            assert consequence == "transient"
        assert health.up and not health.degraded
