"""Tests for the scheduler evaluation harness (Figs. 13-15 invariants).

These run the full six-scheduler comparison once per scenario and
assert the paper's qualitative results, so they are the slowest tests
in the suite (a few seconds each).
"""

import pytest

from repro.gpu import JETSON_TX1, K20C
from repro.schedulers import compare_schedulers, make_context, normalized_rows
from repro.workloads import age_detection, image_tagging, video_surveillance


@pytest.fixture(scope="module")
def k20_interactive():
    scen = age_detection()
    return compare_schedulers(make_context(K20C, scen.network, scen.spec))


@pytest.fixture(scope="module")
def k20_background():
    scen = image_tagging()
    return compare_schedulers(make_context(K20C, scen.network, scen.spec))


@pytest.fixture(scope="module")
def tx1_realtime():
    scen = video_surveillance()
    return compare_schedulers(
        make_context(JETSON_TX1, scen.network, scen.spec)
    )


class TestInteractiveK20:
    def test_performance_preferred_fastest(self, k20_interactive):
        perf = k20_interactive["performance-preferred"]
        assert all(
            perf.latency_s <= o.latency_s + 1e-9
            for o in k20_interactive.values()
        )

    def test_energy_efficient_cheapest_per_item(self, k20_interactive):
        eff = k20_interactive["energy-efficient"]
        assert all(
            eff.energy_per_item_j <= o.energy_per_item_j + 1e-12
            for o in k20_interactive.values()
        )

    def test_energy_efficient_in_tolerable_region(self, k20_interactive):
        """Fig. 13a: only the Energy-efficient scheduler leaves the
        imperceptible region (batch assembly), but stays usable."""
        eff = k20_interactive["energy-efficient"]
        assert 0.0 < eff.soc.soc_time < 1.0
        for name, outcome in k20_interactive.items():
            if name != "energy-efficient":
                assert outcome.soc.soc_time == pytest.approx(1.0, abs=0.03)

    def test_pcnn_beats_qpe_plus(self, k20_interactive):
        assert (
            k20_interactive["p-cnn"].soc.value
            >= k20_interactive["qpe+"].soc.value
        )

    def test_ideal_upper_bounds_everyone(self, k20_interactive):
        ideal = k20_interactive["ideal"].soc.value
        for outcome in k20_interactive.values():
            assert ideal >= outcome.soc.value - 1e-9

    def test_pcnn_saves_energy_via_tuning(self, k20_interactive):
        assert (
            k20_interactive["p-cnn"].energy_per_item_j
            < k20_interactive["qpe+"].energy_per_item_j
        )

    def test_everyone_meets_satisfaction(self, k20_interactive):
        for outcome in k20_interactive.values():
            assert outcome.meets_satisfaction


class TestBackgroundK20:
    def test_runtime_irrelevant(self, k20_background):
        """Fig. 13: background SoC_time is 1 regardless of runtime."""
        for outcome in k20_background.values():
            assert outcome.soc.soc_time == 1.0

    def test_pcnn_best_realizable_soc(self, k20_background):
        """Fig. 15: P-CNN tops every non-oracle scheduler."""
        pcnn = k20_background["p-cnn"].soc.value
        for name, outcome in k20_background.items():
            if name != "ideal":
                assert pcnn >= outcome.soc.value - 1e-9

    def test_batching_beats_non_batching_energy(self, k20_background):
        assert (
            k20_background["energy-efficient"].energy_per_item_j
            < 0.5 * k20_background["performance-preferred"].energy_per_item_j
        )

    def test_qpe_plus_energy_close_to_qpe(self, k20_background):
        """Paper: at full Util there are no idle SMs to gate, so QPE+
        == QPE for background tasks."""
        qpe = k20_background["qpe"].energy_per_item_j
        plus = k20_background["qpe+"].energy_per_item_j
        assert plus == pytest.approx(qpe, rel=0.05)


class TestRealTimeTX1:
    def test_only_pcnn_and_ideal_meet(self, tx1_realtime):
        """Fig. 15b's headline: every baseline gets SoC = 0 ('x') on
        the mobile GPU; P-CNN approximates its way under the deadline."""
        for name in ("performance-preferred", "energy-efficient", "qpe", "qpe+"):
            assert not tx1_realtime[name].meets_satisfaction
        assert tx1_realtime["p-cnn"].meets_satisfaction
        assert tx1_realtime["ideal"].meets_satisfaction

    def test_pcnn_made_the_deadline(self, tx1_realtime):
        deadline = 1.0 / 10.0
        assert tx1_realtime["p-cnn"].latency_s <= deadline

    def test_pcnn_paid_with_entropy(self, tx1_realtime):
        assert tx1_realtime["p-cnn"].soc.soc_accuracy < 1.0


class TestNormalization:
    def test_rows_normalized_to_references(self, k20_interactive):
        rows = {r["scheduler"]: r for r in normalized_rows(k20_interactive)}
        assert rows["performance-preferred"]["norm_runtime"] == pytest.approx(1.0)
        assert rows["energy-efficient"]["norm_energy"] == pytest.approx(1.0)

    def test_rows_carry_soc(self, k20_interactive):
        for row in normalized_rows(k20_interactive):
            assert row["soc"] >= 0.0
