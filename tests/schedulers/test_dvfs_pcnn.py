"""Tests for the DVFS-augmented P-CNN scheduler extension."""

import pytest

from repro.gpu import K20C
from repro.schedulers import DvfsPCNNScheduler, PCNNScheduler, make_context
from repro.workloads import age_detection, image_tagging


@pytest.fixture(scope="module")
def background_ctx():
    scenario = image_tagging()
    return make_context(K20C, scenario.network, scenario.spec)


@pytest.fixture(scope="module")
def interactive_ctx():
    scenario = age_detection()
    return make_context(K20C, scenario.network, scenario.spec)


class TestDvfsPCNN:
    def test_background_rides_the_energy_valley(self, background_ctx):
        """No deadline: the chosen frequency is an interior optimum and
        the energy beats the nominal-clock run."""
        scheduler = DvfsPCNNScheduler(max_tuning_iterations=16)
        decision = scheduler.schedule_with_frequency(background_ctx)
        assert decision.frequency.relative_frequency < 1.0
        # energy at the chosen state beats nominal by construction:
        from repro.gpu.dvfs import FrequencyState, energy_at_frequency

        _runtime, nominal_energy = energy_at_frequency(
            K20C,
            FrequencyState(1.0),
            decision.base.compiled.total_time_s,
            busy_sms=decision.base.compiled.max_opt_sm,
            activity=0.7,
            memory_bound_fraction=0.2
            + decision.base.compiled.aux_time_s
            / decision.base.compiled.total_time_s,
        )
        assert decision.energy_j < nominal_energy

    def test_interactive_respects_budget(self, interactive_ctx):
        scheduler = DvfsPCNNScheduler(max_tuning_iterations=16)
        decision = scheduler.schedule_with_frequency(interactive_ctx)
        assert decision.runtime_s <= interactive_ctx.requirement.time.budget_s

    def test_base_decision_is_pcnn(self, background_ctx):
        dvfs = DvfsPCNNScheduler(max_tuning_iterations=16)
        plain = PCNNScheduler(max_tuning_iterations=16)
        a = dvfs.schedule(background_ctx)
        b = plain.schedule(background_ctx)
        assert a.batch == b.batch
        assert a.entropy == pytest.approx(b.entropy)

    def test_per_item_energy(self, background_ctx):
        decision = DvfsPCNNScheduler(max_tuning_iterations=16).schedule_with_frequency(
            background_ctx
        )
        assert decision.energy_per_item_j == pytest.approx(
            decision.energy_j / decision.base.batch
        )
