"""Tests for the baseline schedulers' decisions (paper Section V.B)."""

import pytest

from repro.gpu import K20C
from repro.schedulers import (
    EnergyEfficientScheduler,
    PCNNScheduler,
    PerformancePreferredScheduler,
    QPEPlusScheduler,
    QPEScheduler,
    default_schedulers,
    make_context,
)
from repro.workloads import age_detection, image_tagging, video_surveillance


@pytest.fixture(scope="module")
def interactive_ctx():
    scen = age_detection()
    return make_context(K20C, scen.network, scen.spec)


@pytest.fixture(scope="module")
def background_ctx():
    scen = image_tagging()
    return make_context(K20C, scen.network, scen.spec)


class TestPerformancePreferred:
    def test_non_batching(self, interactive_ctx):
        decision = PerformancePreferredScheduler().schedule(interactive_ctx)
        assert decision.batch == 1
        assert not decision.power_gating
        assert not decision.use_priority_sm

    def test_runs_dense(self, interactive_ctx):
        decision = PerformancePreferredScheduler().schedule(interactive_ctx)
        assert decision.compiled.perforation.is_dense()
        assert decision.entropy == interactive_ctx.baseline_entropy


class TestEnergyEfficient:
    def test_training_batch(self, interactive_ctx):
        decision = EnergyEfficientScheduler().schedule(interactive_ctx)
        # AlexNet trains at 128 (Section V.B / Table III).
        assert decision.batch == 128

    def test_no_sm_management(self, interactive_ctx):
        decision = EnergyEfficientScheduler().schedule(interactive_ctx)
        assert not decision.power_gating

    def test_halves_batch_until_memory_fits(self):
        scen = video_surveillance()  # VGG, training batch 256
        from repro.gpu import JETSON_TX1

        ctx = make_context(JETSON_TX1, scen.network, scen.spec)
        decision = EnergyEfficientScheduler().schedule(ctx)
        from repro.gpu.memory import fits_in_memory

        assert fits_in_memory(
            JETSON_TX1,
            scen.network.memory_profile(),
            ctx.backend,
            decision.batch,
        )


class TestQPEFamily:
    def test_qpe_meets_time_budget(self, interactive_ctx):
        decision = QPEScheduler().schedule(interactive_ctx)
        budget = interactive_ctx.requirement.time.budget_s
        assert decision.compiled.total_time_s <= budget

    def test_qpe_batches_within_budget(self, interactive_ctx):
        """50 Hz camera rate, 100 ms budget -> batch 5."""
        decision = QPEScheduler().schedule(interactive_ctx)
        assert decision.batch == 5

    def test_qpe_plus_same_batch_with_gating(self, interactive_ctx):
        qpe = QPEScheduler().schedule(interactive_ctx)
        plus = QPEPlusScheduler().schedule(interactive_ctx)
        assert plus.batch == qpe.batch
        assert plus.power_gating and plus.use_priority_sm
        assert not qpe.power_gating

    def test_background_uses_saturating_batch(self, background_ctx):
        decision = QPEScheduler().schedule(background_ctx)
        assert decision.batch > 1


class TestPCNN:
    def test_tunes_within_threshold_when_feasible(self, interactive_ctx):
        decision = PCNNScheduler(max_tuning_iterations=16).schedule(
            interactive_ctx
        )
        assert decision.entropy <= interactive_ctx.entropy_threshold + 1e-9
        assert decision.power_gating

    def test_perforates_past_threshold_for_hard_deadlines(self):
        """TX1 + VGG real-time: dense misses the deadline, so P-CNN
        accepts extra entropy to make it (Fig. 13b/15b)."""
        from repro.gpu import JETSON_TX1

        scen = video_surveillance()
        ctx = make_context(JETSON_TX1, scen.network, scen.spec)
        decision = PCNNScheduler().schedule(ctx)
        budget = ctx.requirement.time.budget_s
        assert decision.compiled.total_time_s <= budget
        assert decision.entropy > ctx.entropy_threshold

    def test_accuracy_sensitive_stays_dense_when_feasible(self):
        scen = video_surveillance()
        ctx = make_context(K20C, scen.network, scen.spec)
        decision = PCNNScheduler().schedule(ctx)
        # K20 meets the deadline dense; zero slack -> no perforation.
        assert decision.compiled.perforation.is_dense()


class TestDefaults:
    def test_six_schedulers_in_paper_order(self):
        names = [s.name for s in default_schedulers()]
        assert names == [
            "performance-preferred",
            "energy-efficient",
            "qpe",
            "qpe+",
            "p-cnn",
            "ideal",
        ]
