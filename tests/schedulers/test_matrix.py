"""Extra Figs. 13-15 matrix cells: the scenarios the main evaluation
tests don't cover (TX1 interactive, K20c real-time), asserting the same
cross-scheduler invariants hold there too."""

import pytest

from repro.gpu import JETSON_TX1, K20C
from repro.schedulers import compare_schedulers, make_context
from repro.workloads import age_detection, video_surveillance


@pytest.fixture(scope="module")
def tx1_interactive():
    scenario = age_detection()
    return compare_schedulers(
        make_context(JETSON_TX1, scenario.network, scenario.spec)
    )


@pytest.fixture(scope="module")
def k20_realtime():
    scenario = video_surveillance()
    return compare_schedulers(
        make_context(K20C, scenario.network, scenario.spec)
    )


class TestInteractiveTX1:
    def test_pcnn_best_realizable(self, tx1_interactive):
        pcnn = tx1_interactive["p-cnn"].soc.value
        for name in ("performance-preferred", "energy-efficient", "qpe", "qpe+"):
            assert pcnn >= tx1_interactive[name].soc.value * 0.97

    def test_ideal_upper_bound(self, tx1_interactive):
        ideal = tx1_interactive["ideal"].soc.value
        for outcome in tx1_interactive.values():
            assert ideal >= outcome.soc.value - 1e-9

    def test_mobile_interactive_still_satisfiable(self, tx1_interactive):
        """AlexNet on TX1 fits the 100 ms budget (paper Table III's
        ~25 ms batch-1 latency leaves headroom)."""
        assert tx1_interactive["p-cnn"].meets_satisfaction
        assert tx1_interactive["qpe"].meets_satisfaction

    def test_training_batch_unusable_on_mobile(self, tx1_interactive):
        """Assembling 128 frames at camera rate blows the 3 s abandon
        threshold on TX1."""
        assert not tx1_interactive["energy-efficient"].meets_satisfaction

    def test_tuning_saves_energy(self, tx1_interactive):
        assert (
            tx1_interactive["p-cnn"].energy_per_item_j
            < tx1_interactive["qpe+"].energy_per_item_j
        )


class TestRealTimeK20:
    def test_server_gpu_meets_deadline_dense(self, k20_realtime):
        """The paper's K20c story: every time-model scheduler meets the
        real-time deadline without approximation."""
        for name in ("performance-preferred", "qpe", "qpe+", "p-cnn"):
            assert k20_realtime[name].meets_satisfaction

    def test_accuracy_sensitive_stays_dense(self, k20_realtime):
        """Surveillance is accuracy-sensitive and K20c is feasible
        dense, so P-CNN must not have perforated."""
        assert k20_realtime["p-cnn"].entropy == pytest.approx(
            k20_realtime["qpe"].entropy
        )

    def test_pcnn_energy_matches_qpe_plus(self, k20_realtime):
        """Paper: 'for applications requiring high accuracy, P-CNN
        consumes similar energy as QPE+'."""
        assert k20_realtime["p-cnn"].energy_per_item_j == pytest.approx(
            k20_realtime["qpe+"].energy_per_item_j, rel=0.05
        )

    def test_batching_still_fails(self, k20_realtime):
        assert not k20_realtime["energy-efficient"].meets_satisfaction

    def test_frame_latency_under_deadline(self, k20_realtime):
        deadline = 1.0 / 10.0
        for name in ("performance-preferred", "qpe", "qpe+", "p-cnn"):
            assert k20_realtime[name].latency_s <= deadline
