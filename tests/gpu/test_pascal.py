"""Tests for the Pascal-generation platform extensions."""

from repro.core.offline import OfflineCompiler
from repro.gpu import (
    GTX_1080,
    JETSON_TX1,
    JETSON_TX2,
    get_architecture,
    list_architectures,
)
from repro.gpu.kernels import GemmShape
from repro.gpu.libraries import CUBLAS, CUDNN, NERVANA
from repro.nn import alexnet


class TestPascalPlatforms:
    def test_parameters(self):
        assert GTX_1080.total_cuda_cores == 2560
        assert GTX_1080.generation == "pascal"
        assert JETSON_TX2.total_cuda_cores == 256
        assert JETSON_TX2.platform == "mobile"

    def test_registry(self):
        assert get_architecture("gtx1080") is GTX_1080
        assert get_architecture("Jetson TX2") is JETSON_TX2

    def test_paper_list_unchanged_by_default(self):
        names = [a.name for a in list_architectures()]
        assert names == ["K20c", "TitanX", "GTX970m", "TX1"]

    def test_extended_list(self):
        names = [a.name for a in list_architectures(include_extensions=True)]
        assert names[-2:] == ["GTX1080", "TX2"]


class TestPascalLibrarySupport:
    def test_every_library_has_pascal_kernels(self):
        shape = GemmShape(128, 729, 1200)
        for lib in (CUBLAS, CUDNN, NERVANA):
            kernel = lib.select_kernel(GTX_1080, shape)
            assert kernel.tile_m > 0


class TestCrossGenerationPervasiveness:
    def test_compiles_without_changes(self):
        for arch in (GTX_1080, JETSON_TX2):
            plan = OfflineCompiler(arch).compile_with_batch(alexnet(), 1)
            assert plan.total_time_s > 0

    def test_tx2_faster_than_tx1(self):
        """Same SM count, 30% higher clock and 2.3x the bandwidth:
        the successor must win at equal batch."""
        tx1 = OfflineCompiler(JETSON_TX1).compile_with_batch(alexnet(), 1)
        tx2 = OfflineCompiler(JETSON_TX2).compile_with_batch(alexnet(), 1)
        assert tx2.total_time_s < tx1.total_time_s

    def test_bigger_memory_allows_bigger_batches(self):
        from repro.core.offline.batch_selection import max_batch_fitting_memory
        from repro.core.offline.kernel_tuning import PCNN_BACKEND
        from repro.nn import vgg16

        # VGG is the memory-bound workload (Table III); TX2's 8 GB
        # admits bigger batches than TX1's shared 4 GB.
        profile = vgg16().memory_profile()
        assert max_batch_fitting_memory(
            JETSON_TX2, profile, PCNN_BACKEND
        ) > max_batch_fitting_memory(JETSON_TX1, profile, PCNN_BACKEND)
