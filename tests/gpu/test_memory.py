"""Tests for repro.gpu.memory: Table III's run/OOM matrix."""

import pytest

from repro.gpu import GTX_970M, JETSON_TX1, K20C, TITAN_X
from repro.gpu.libraries import CUBLAS, CUDNN, NERVANA
from repro.gpu.memory import (
    MemoryFootprint,
    NetworkMemoryProfile,
    OutOfMemoryError,
    check_memory,
    estimate_footprint,
    fits_in_memory,
    usable_memory_bytes,
)
from repro.nn.models import alexnet, googlenet, vgg16


@pytest.fixture(scope="module")
def profiles():
    return {
        "alexnet": alexnet().memory_profile(),
        "googlenet": googlenet().memory_profile(),
        "vggnet": vgg16().memory_profile(),
    }


#: Table III OOM cells at the paper's batching sizes (128/64/32):
#: everything else in the matrix runs.
TABLE_III_OOM = {
    ("googlenet", "tx1", "cudnn"),
    ("vggnet", "tx1", "cudnn"),
    ("vggnet", "tx1", "nervana"),
}
BATCHES = {"alexnet": 128, "googlenet": 64, "vggnet": 32}
GPUS = {"titanx": TITAN_X, "970m": GTX_970M, "tx1": JETSON_TX1}
LIBS = {"cublas": CUBLAS, "cudnn": CUDNN, "nervana": NERVANA}


class TestTableIIIMatrix:
    @pytest.mark.parametrize("net_key", sorted(BATCHES))
    @pytest.mark.parametrize("gpu_key", sorted(GPUS))
    @pytest.mark.parametrize("lib_key", sorted(LIBS))
    def test_batching_cell(self, net_key, gpu_key, lib_key, profiles):
        fits = fits_in_memory(
            GPUS[gpu_key], profiles[net_key], LIBS[lib_key], BATCHES[net_key]
        )
        expected_oom = (net_key, gpu_key, lib_key) in TABLE_III_OOM
        assert fits == (not expected_oom)

    @pytest.mark.parametrize("net_key", sorted(BATCHES))
    @pytest.mark.parametrize("gpu_key", sorted(GPUS))
    @pytest.mark.parametrize("lib_key", sorted(LIBS))
    def test_non_batching_cell(self, net_key, gpu_key, lib_key, profiles):
        """Non-batching always runs -- except Nervana/VGG on TX1, whose
        'non-batching' is really batch 32 (Table III bold)."""
        fits = fits_in_memory(GPUS[gpu_key], profiles[net_key], LIBS[lib_key], 1)
        expected_oom = (
            lib_key == "nervana" and net_key == "vggnet" and gpu_key == "tx1"
        )
        assert fits == (not expected_oom)

    def test_everything_fits_on_k20(self, profiles):
        for profile in profiles.values():
            for lib in LIBS.values():
                assert fits_in_memory(K20C, profile, lib, 32)


class TestFootprintModel:
    def test_cublas_workspace_is_batch_independent(self, profiles):
        p = profiles["vggnet"]
        f1 = estimate_footprint(p, CUBLAS, 1)
        f32 = estimate_footprint(p, CUBLAS, 32)
        assert f1.workspace == f32.workspace == p.max_im2col_bytes_per_image

    def test_cudnn_workspace_scales_with_depth_and_batch(self, profiles):
        goog = estimate_footprint(profiles["googlenet"], CUDNN, 64)
        alex = estimate_footprint(profiles["alexnet"], CUDNN, 64)
        # 57 conv layers vs 5 at the same batch.
        assert goog.workspace > 10 * alex.workspace

    def test_nervana_pads_activations(self, profiles):
        p = profiles["vggnet"]
        nerv = estimate_footprint(p, NERVANA, 32)
        blas = estimate_footprint(p, CUBLAS, 32)
        assert nerv.activations > blas.activations
        assert nerv.workspace == 0

    def test_weights_constant_across_batch(self, profiles):
        p = profiles["alexnet"]
        assert (
            estimate_footprint(p, CUBLAS, 1).weights
            == estimate_footprint(p, CUBLAS, 128).weights
        )

    def test_total_is_sum(self):
        f = MemoryFootprint(weights=1, activations=2, workspace=3)
        assert f.total == 6

    def test_rejects_zero_batch(self, profiles):
        with pytest.raises(ValueError):
            estimate_footprint(profiles["alexnet"], CUBLAS, 0)


class TestUsableMemory:
    def test_mobile_shares_with_os(self):
        assert usable_memory_bytes(JETSON_TX1) < JETSON_TX1.memory_bytes * 0.7

    def test_server_nearly_all(self):
        assert usable_memory_bytes(K20C) > K20C.memory_bytes * 0.9

    def test_check_memory_raises_with_breakdown(self, profiles):
        with pytest.raises(OutOfMemoryError, match="workspace"):
            check_memory(JETSON_TX1, profiles["vggnet"], CUDNN, 32)

    def test_check_memory_returns_footprint(self, profiles):
        footprint = check_memory(K20C, profiles["alexnet"], CUBLAS, 16)
        assert footprint.total > 0


class TestProfileValidation:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            NetworkMemoryProfile(-1, 0, 0, 1)

    def test_rejects_zero_convs(self):
        with pytest.raises(ValueError):
            NetworkMemoryProfile(1, 1, 1, 0)

    def test_real_profiles_plausible(self, profiles):
        """Sanity: published parameter counts (fp32 bytes)."""
        assert profiles["alexnet"].weights_bytes == pytest.approx(244e6, rel=0.02)
        assert profiles["vggnet"].weights_bytes == pytest.approx(553e6, rel=0.02)
        assert profiles["googlenet"].weights_bytes < 40e6
        assert profiles["googlenet"].n_conv_layers == 57
        assert profiles["vggnet"].n_conv_layers == 13
        assert profiles["alexnet"].n_conv_layers == 5
