"""Tests for repro.gpu.architecture: the Table II / Table VI platforms."""

import pytest

from repro.gpu.architecture import (
    ARCHITECTURES,
    GTX_970M,
    JETSON_TX1,
    K20C,
    RESERVED_REGISTERS_PER_SM,
    TITAN_X,
    GPUArchitecture,
    get_architecture,
    list_architectures,
)


class TestTableIIParameters:
    """The four platforms carry the paper's published parameters."""

    def test_k20c_core_count(self):
        assert K20C.total_cuda_cores == 2496
        assert K20C.n_sms == 13
        assert K20C.core_clock_mhz == 706.0

    def test_titan_x_core_count(self):
        assert TITAN_X.total_cuda_cores == 3072
        assert TITAN_X.core_clock_mhz == 1000.0

    def test_gtx970m_core_count(self):
        assert GTX_970M.total_cuda_cores == 1280
        assert GTX_970M.core_clock_mhz == 924.0

    def test_tx1_core_count(self):
        assert JETSON_TX1.total_cuda_cores == 256
        assert JETSON_TX1.n_sms == 2
        assert JETSON_TX1.core_clock_mhz == 998.0

    def test_tx1_bandwidth(self):
        assert JETSON_TX1.mem_bandwidth_gbps == pytest.approx(25.6)

    def test_platform_classes(self):
        assert K20C.platform == "server"
        assert TITAN_X.platform == "desktop"
        assert GTX_970M.platform == "notebook"
        assert JETSON_TX1.platform == "mobile"

    def test_generations(self):
        assert K20C.generation == "kepler"
        for gpu in (TITAN_X, GTX_970M, JETSON_TX1):
            assert gpu.generation == "maxwell"


class TestTableVIParameters:
    """GPGPU-Sim configuration of Table VI."""

    def test_register_file_64k(self):
        for gpu in list_architectures():
            assert gpu.registers_per_sm == 64 * 1024

    def test_thread_limit_2048(self):
        for gpu in list_architectures():
            assert gpu.max_threads_per_sm == 2048

    def test_kepler_cta_limit_16(self):
        assert K20C.max_ctas_per_sm == 16

    def test_maxwell_cta_limit_32(self):
        # Required for Table IV's TX1/cuDNN maxBlocks of 40.
        assert JETSON_TX1.max_ctas_per_sm == 32

    def test_warp_size(self):
        for gpu in list_architectures():
            assert gpu.warp_size == 32

    def test_usable_registers(self):
        assert K20C.usable_registers_per_sm == 64 * 1024 - RESERVED_REGISTERS_PER_SM
        assert K20C.usable_registers_per_sm == 61440


class TestDerivedQuantities:
    def test_peak_flops_formula(self, any_arch):
        expected = (
            2.0
            * any_arch.core_clock_mhz
            * 1e6
            * any_arch.n_sms
            * any_arch.cores_per_sm
        )
        assert any_arch.peak_flops == pytest.approx(expected)

    def test_k20_peak_is_3_5_tflops(self):
        # 2496 cores x 706 MHz x 2 = 3.52 TFLOP/s (the K20c spec sheet).
        assert K20C.peak_flops == pytest.approx(3.524e12, rel=0.01)

    def test_tx1_peak_is_half_tflop(self):
        assert JETSON_TX1.peak_flops == pytest.approx(0.511e12, rel=0.01)

    def test_per_sm_peak(self, any_arch):
        assert any_arch.peak_flops_per_sm * any_arch.n_sms == pytest.approx(
            any_arch.peak_flops
        )

    def test_cycle_conversion_roundtrip(self, any_arch):
        assert any_arch.seconds_to_cycles(
            any_arch.cycles_to_seconds(1e6)
        ) == pytest.approx(1e6)

    def test_min_registers_per_thread(self):
        # 61440 usable / 2048 threads = 30 -- the paper's minReg ~32
        # region in Fig. 9.
        assert K20C.min_registers_per_thread() == 30

    def test_describe_mentions_name_and_cores(self, any_arch):
        text = any_arch.describe()
        assert any_arch.name in text
        assert str(any_arch.total_cuda_cores) in text


class TestRegistry:
    def test_lookup_canonical(self):
        assert get_architecture("k20c") is K20C
        assert get_architecture("tx1") is JETSON_TX1

    def test_lookup_aliases(self):
        assert get_architecture("K20") is K20C
        assert get_architecture("Titan X") is TITAN_X
        assert get_architecture("970m") is GTX_970M
        assert get_architecture("Jetson TX1") is JETSON_TX1

    def test_lookup_case_insensitive(self):
        assert get_architecture("TITANX") is TITAN_X

    def test_unknown_raises_with_known_list(self):
        with pytest.raises(KeyError, match="k20c"):
            get_architecture("voodoo2")

    def test_list_order_server_to_mobile(self):
        assert [g.platform for g in list_architectures()] == [
            "server",
            "desktop",
            "notebook",
            "mobile",
        ]

    def test_registry_complete(self):
        assert set(ARCHITECTURES) == {
            "k20c", "titanx", "gtx970m", "tx1",  # the paper's Table II
            "gtx1080", "tx2",  # post-paper Pascal extensions
        }


class TestValidation:
    def _base_kwargs(self):
        return dict(
            name="x",
            platform="server",
            generation="kepler",
            n_sms=2,
            cores_per_sm=64,
            core_clock_mhz=1000.0,
        )

    def test_rejects_zero_sms(self):
        kwargs = self._base_kwargs()
        kwargs["n_sms"] = 0
        with pytest.raises(ValueError, match="n_sms"):
            GPUArchitecture(**kwargs)

    def test_rejects_zero_cores(self):
        kwargs = self._base_kwargs()
        kwargs["cores_per_sm"] = 0
        with pytest.raises(ValueError, match="cores_per_sm"):
            GPUArchitecture(**kwargs)

    def test_rejects_zero_clock(self):
        kwargs = self._base_kwargs()
        kwargs["core_clock_mhz"] = 0
        with pytest.raises(ValueError, match="core_clock_mhz"):
            GPUArchitecture(**kwargs)

    def test_rejects_tiny_register_file(self):
        kwargs = self._base_kwargs()
        kwargs["registers_per_sm"] = RESERVED_REGISTERS_PER_SM
        with pytest.raises(ValueError, match="reserved"):
            GPUArchitecture(**kwargs)

    def test_frozen(self):
        with pytest.raises(Exception):
            K20C.n_sms = 1
