"""Tests for repro.gpu.libraries: cuBLAS / cuDNN / Nervana models."""

import pytest

from repro.gpu import GTX_970M, JETSON_TX1, K20C, TITAN_X
from repro.gpu.kernels import GemmShape
from repro.gpu.libraries import (
    CUBLAS,
    CUDNN,
    LIBRARIES,
    NERVANA,
    KernelLibrary,
    get_library,
)


class TestBatchConstraints:
    def test_nervana_rounds_one_to_32(self):
        """The paper's bold 'non-batching' Nervana cells are batch 32."""
        assert NERVANA.effective_batch(1) == 32

    def test_nervana_rounds_to_multiple(self):
        assert NERVANA.effective_batch(33) == 64
        assert NERVANA.effective_batch(64) == 64

    def test_cublas_cudnn_any_batch(self):
        for lib in (CUBLAS, CUDNN):
            assert lib.effective_batch(1) == 1
            assert lib.effective_batch(7) == 7

    def test_rejects_zero_batch(self):
        with pytest.raises(ValueError):
            CUBLAS.effective_batch(0)


class TestKernelSelection:
    def test_cublas_kepler_is_64x64(self):
        kernel = CUBLAS.select_kernel(K20C, GemmShape(128, 729, 1200))
        assert kernel.tile == (64, 64)
        assert kernel.regs_per_thread == 79

    def test_cudnn_mobile_small_tile(self):
        kernel = CUDNN.select_kernel(JETSON_TX1, GemmShape(128, 729, 1200))
        assert kernel.tile == (32, 32)

    def test_cudnn_desktop_large_tile(self):
        for arch in (TITAN_X, GTX_970M):
            kernel = CUDNN.select_kernel(arch, GemmShape(128, 729, 1200))
            assert kernel.tile == (64, 64)

    def test_nervana_autotunes_over_family(self):
        big = NERVANA.select_kernel(TITAN_X, GemmShape(512, 50176, 4608))
        small = NERVANA.select_kernel(JETSON_TX1, GemmShape(128, 169, 1152))
        assert big.tile_elements >= small.tile_elements

    def test_unknown_generation_raises(self):
        from dataclasses import replace

        alien = replace(K20C, generation="volta")
        with pytest.raises(KeyError, match="volta"):
            CUBLAS.select_kernel(alien, GemmShape(1, 1, 1))


class TestLibraryProperties:
    def test_efficiency_ordering(self):
        """Nervana's hand-tuned SASS > cuDNN > cuBLAS-through-Caffe."""
        assert NERVANA.issue_efficiency > CUDNN.issue_efficiency > CUBLAS.issue_efficiency

    def test_transform_overhead_ordering(self):
        """Explicit im2col (cuBLAS) costs most, direct conv none."""
        assert CUBLAS.transform_overhead > CUDNN.transform_overhead
        assert NERVANA.transform_overhead == pytest.approx(1.0)

    def test_workspace_policies(self):
        assert CUBLAS.workspace_policy == "per_image"
        assert CUDNN.workspace_policy == "per_batch"
        assert NERVANA.workspace_policy == "none"

    def test_describe(self):
        assert "cublas" in CUBLAS.describe()


class TestRegistry:
    def test_lookup(self):
        assert get_library("cuBLAS") is CUBLAS
        assert get_library("NERVANA") is NERVANA

    def test_unknown(self):
        with pytest.raises(KeyError, match="cublas"):
            get_library("mkl")

    def test_all_registered(self):
        assert set(LIBRARIES) == {"cublas", "cudnn", "nervana"}


class TestValidation:
    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            KernelLibrary(name="x", issue_efficiency=0.0, transform_overhead=1.0)

    def test_rejects_speedup_overhead(self):
        with pytest.raises(ValueError):
            KernelLibrary(name="x", issue_efficiency=0.5, transform_overhead=0.9)

    def test_rejects_unknown_workspace(self):
        with pytest.raises(ValueError):
            KernelLibrary(
                name="x",
                issue_efficiency=0.5,
                transform_overhead=1.0,
                workspace_policy="heap",
            )
