"""Tests for repro.gpu.dvfs: the Fig. 3 background-energy mechanism."""

import pytest

from repro.gpu import JETSON_TX1, K20C
from repro.gpu.dvfs import (
    DEFAULT_FREQUENCY_LADDER,
    FrequencyState,
    best_frequency,
    energy_at_frequency,
    power_at_frequency,
    scaled_runtime,
)


class TestFrequencyState:
    def test_nominal_scales_are_one(self):
        nominal = FrequencyState(1.0)
        assert nominal.dynamic_power_scale == pytest.approx(1.0)
        assert nominal.static_power_scale == pytest.approx(1.0)

    def test_dynamic_power_superlinear(self):
        """f * V(f)^2 falls faster than f."""
        half = FrequencyState(0.5)
        assert half.dynamic_power_scale < 0.5

    def test_voltage_floor(self):
        assert FrequencyState(0.3).voltage > 0.5

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            FrequencyState(0.0)
        with pytest.raises(ValueError):
            FrequencyState(1.5)


class TestRuntimeScaling:
    def test_compute_bound_scales_inverse(self):
        assert scaled_runtime(1.0, FrequencyState(0.5)) == pytest.approx(2.0)

    def test_memory_bound_unaffected(self):
        runtime = scaled_runtime(
            1.0, FrequencyState(0.5), memory_bound_fraction=1.0
        )
        assert runtime == pytest.approx(1.0)

    def test_mixed(self):
        runtime = scaled_runtime(
            1.0, FrequencyState(0.5), memory_bound_fraction=0.4
        )
        assert runtime == pytest.approx(0.6 * 2 + 0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            scaled_runtime(-1.0, FrequencyState(1.0))
        with pytest.raises(ValueError):
            scaled_runtime(1.0, FrequencyState(1.0), memory_bound_fraction=2.0)


class TestPowerAndEnergy:
    def test_power_falls_with_frequency(self):
        powers = [
            power_at_frequency(K20C, FrequencyState(f), busy_sms=13)
            for f in DEFAULT_FREQUENCY_LADDER
        ]
        assert powers == sorted(powers)

    def test_fig3_energy_valley(self):
        """Fig. 3's background curve: as the frequency drops (runtime
        grows), energy first decreases, then stops improving -- there
        is an interior optimum T_e, not a monotone win."""
        results = [
            energy_at_frequency(K20C, FrequencyState(f), 1.0, busy_sms=13)
            for f in DEFAULT_FREQUENCY_LADDER
        ]
        runtimes = [r for r, _e in results]
        energies = [e for _r, e in results]
        # runtime grows monotonically as frequency falls
        assert runtimes == sorted(runtimes, reverse=True)
        # energy at nominal is NOT the minimum (slowing down helps)...
        assert min(energies) < energies[-1]
        # ... but the very slowest point is worse than the optimum
        # (static energy over the stretched runtime wins out).
        assert energies[0] > min(energies)

    def test_busy_sms_bounds(self):
        with pytest.raises(ValueError):
            power_at_frequency(K20C, FrequencyState(1.0), busy_sms=99)


class TestBestFrequency:
    def test_unconstrained_finds_interior_optimum(self):
        state, runtime, energy = best_frequency(
            K20C, nominal_seconds=1.0, busy_sms=13
        )
        assert 0.3 < state.relative_frequency < 1.0
        assert runtime > 1.0

    def test_deadline_forces_higher_frequency(self):
        relaxed, _r1, _e1 = best_frequency(K20C, 1.0, 13)
        tight, runtime, _e2 = best_frequency(K20C, 1.0, 13, deadline_s=1.1)
        assert tight.relative_frequency >= relaxed.relative_frequency
        assert runtime <= 1.1

    def test_impossible_deadline_runs_flat_out(self):
        state, _runtime, _energy = best_frequency(
            K20C, 1.0, 13, deadline_s=0.5
        )
        assert state.relative_frequency == 1.0

    def test_memory_bound_work_prefers_lower_frequency(self):
        """When DRAM sets the floor, downclocking the SMs is nearly
        free runtime-wise, so the optimum drops."""
        compute_opt, _r, _e = best_frequency(
            JETSON_TX1, 1.0, 2, memory_bound_fraction=0.0
        )
        memory_opt, _r, _e = best_frequency(
            JETSON_TX1, 1.0, 2, memory_bound_fraction=0.8
        )
        assert memory_opt.relative_frequency <= compute_opt.relative_frequency
