"""Tests for repro.gpu.occupancy: Eqs. 4-6, 8, 9 and Table IV."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import JETSON_TX1, K20C, occupancy
from repro.gpu.kernels import GemmShape, SgemmKernel, make_kernel
from repro.gpu.libraries import CUBLAS, CUDNN
from repro.nn.models import alexnet


@pytest.fixture(scope="module")
def alexnet_shapes():
    net = alexnet()
    return {
        "conv2": net.gemm_shape(net.layer("conv2"), batch=1),
        "conv5": net.gemm_shape(net.layer("conv5"), batch=1),
    }


#: Table IV expected cells:
#: (gpu, library, layer) -> (regs, shmem, block, #blk_reg, #blk_shm,
#:                            maxBlocks, GridSize)
TABLE_IV = {
    ("tx1", "cublas", "conv2"): (120, 12544, 128, 8, 14, 8, 12),
    ("tx1", "cublas", "conv5"): (120, 12544, 128, 8, 14, 8, 4),
    ("tx1", "cudnn", "conv2"): (48, 2304, 64, 40, 84, 40, 92),
    ("tx1", "cudnn", "conv5"): (48, 2304, 64, 40, 84, 40, 24),
    ("k20", "cublas", "conv2"): (79, 8468, 256, 39, 65, 39, 24),
    ("k20", "cublas", "conv5"): (79, 8468, 256, 39, 65, 39, 6),
    ("k20", "cudnn", "conv2"): (79, 8468, 256, 39, 65, 39, 24),
    ("k20", "cudnn", "conv5"): (79, 8468, 256, 39, 65, 39, 6),
}


class TestTableIVExact:
    """Every cell of the paper's Table IV reproduces bit-exactly."""

    @pytest.mark.parametrize("key", sorted(TABLE_IV))
    def test_cell(self, key, alexnet_shapes):
        gpu_key, lib_key, layer = key
        arch = {"tx1": JETSON_TX1, "k20": K20C}[gpu_key]
        library = {"cublas": CUBLAS, "cudnn": CUDNN}[lib_key]
        shape = alexnet_shapes[layer]
        kernel = library.select_kernel(arch, shape)
        report = occupancy.occupancy_report(arch, kernel, shape)
        regs, shmem, block, blk_reg, blk_shm, max_blocks, grid = TABLE_IV[key]
        assert report.regs_per_thread == regs
        assert report.shared_mem_bytes == shmem
        assert report.block_size == block
        assert report.blocks_register == blk_reg
        assert report.blocks_shared_mem == blk_shm
        assert report.max_blocks == max_blocks
        assert report.grid_size == grid

    def test_result_matrices(self, alexnet_shapes):
        assert alexnet_shapes["conv2"].m_rows == 128
        assert alexnet_shapes["conv2"].n_cols == 729
        assert alexnet_shapes["conv5"].n_cols == 169


class TestLimits:
    def test_register_limit_dominates_for_sgemm(self):
        """Table IV: maxBlocks = min(shmem, register) = register."""
        kernel = CUBLAS.select_kernel(K20C, GemmShape(128, 729, 1200))
        reg = occupancy.blocks_per_sm_registers(K20C, kernel)
        shm = occupancy.blocks_per_sm_shared_mem(K20C, kernel)
        assert reg < shm
        assert occupancy.ctas_per_sm(K20C, kernel) == reg

    def test_thread_limit(self):
        kernel = make_kernel(32, 32, block_size=1024)
        assert occupancy.blocks_per_sm_threads(K20C, kernel) == 2

    def test_cta_slot_limit_applies(self):
        tiny = SgemmKernel("tiny", 32, 32, 64, regs_per_thread=8,
                           shared_mem_bytes=256)
        assert occupancy.ctas_per_sm(K20C, tiny) == K20C.max_ctas_per_sm

    def test_spilled_shared_counts_against_occupancy(self):
        base = make_kernel(64, 64)
        spilled = base.with_spilling(base.regs_per_thread, 64, 0)
        assert occupancy.blocks_per_sm_shared_mem(
            K20C, spilled
        ) <= occupancy.blocks_per_sm_shared_mem(K20C, base)


class TestUtilization:
    """Eq. 6."""

    def test_util_is_one_at_exact_multiple(self):
        kernel = make_kernel(64, 64, block_size=256)
        capacity = occupancy.max_blocks(K20C, kernel)
        # Build a shape whose grid equals the chip capacity exactly.
        shape = GemmShape(64, 64 * capacity, 128)
        assert occupancy.utilization(K20C, kernel, shape) == pytest.approx(1.0)

    def test_util_never_exceeds_one(self):
        kernel = make_kernel(64, 64)
        for n in (1, 17, 1000, 40000):
            util = occupancy.utilization(K20C, kernel, GemmShape(64, n, 64))
            assert 0.0 < util <= 1.0 + 1e-12

    def test_small_grid_low_util(self):
        """Non-batched inference underutilizes (Table V's story)."""
        kernel = CUBLAS.select_kernel(K20C, GemmShape(128, 169, 1152))
        util = occupancy.utilization(K20C, kernel, GemmShape(128, 169, 1152))
        assert util < 0.35

    def test_util_grows_with_batch_until_full(self):
        kernel = make_kernel(64, 64)
        utils = [
            occupancy.utilization(K20C, kernel, GemmShape(128, 169 * b, 1152))
            for b in (1, 2, 4, 8)
        ]
        assert utils[0] < utils[-1]


class TestInvocationsAndREC:
    def test_n_invocations_paper_example(self):
        """Eq. 8/11 example: G=40, TLP=3 on a 10-SM chip -> 2 waves."""
        kernel = make_kernel(64, 64)
        # grid 40: 1 row tile x 40 col tiles
        shape = GemmShape(64, 64 * 40, 64)
        assert kernel.grid_size(shape) == 40
        # emulate 10 SMs by computing directly
        assert math.ceil(40 / (3 * 10)) == 2

    def test_n_invocations_decreases_with_tlp(self):
        kernel = make_kernel(64, 64)
        shape = GemmShape(64, 64 * 200, 64)
        waves = [
            occupancy.n_invocations(K20C, kernel, shape, tlp)
            for tlp in (1, 2, 4, 8)
        ]
        assert waves == sorted(waves, reverse=True)

    def test_n_invocations_rejects_bad_tlp(self):
        with pytest.raises(ValueError):
            occupancy.n_invocations(K20C, make_kernel(64, 64), GemmShape(1, 1, 1), 0)

    def test_rec_exact_fit(self):
        assert occupancy.effective_computation_ratio(
            GemmShape(128, 256, 8), 64, 64
        ) == pytest.approx(1.0)

    def test_rec_half_wasted(self):
        # 65 columns in 64-wide tiles: 2 tiles cover 128, use 65.
        rec = occupancy.effective_computation_ratio(GemmShape(64, 65, 8), 64, 64)
        assert rec == pytest.approx(65 / 128)

    @given(
        m=st.integers(1, 600), n=st.integers(1, 600),
        tm=st.sampled_from([32, 64, 128]), tn=st.sampled_from([32, 64, 128]),
    )
    @settings(max_examples=60, deadline=None)
    def test_rec_bounds(self, m, n, tm, tn):
        rec = occupancy.effective_computation_ratio(GemmShape(m, n, 8), tm, tn)
        assert 0.0 < rec <= 1.0


class TestReport:
    def test_row_format(self):
        shape = GemmShape(128, 729, 1152)
        kernel = CUBLAS.select_kernel(JETSON_TX1, shape)
        report = occupancy.occupancy_report(JETSON_TX1, kernel, shape)
        row = report.row()
        assert row[0] == "128x729"
        assert row[-1] == 12

    def test_report_consistency(self):
        shape = GemmShape(128, 729, 1152)
        kernel = CUBLAS.select_kernel(JETSON_TX1, shape)
        report = occupancy.occupancy_report(JETSON_TX1, kernel, shape)
        assert report.max_blocks <= min(
            report.blocks_register, report.blocks_shared_mem
        )
        assert 0 < report.util <= 1
        assert 0 < report.rec <= 1
