"""Tests for repro.gpu.energy: the GPUWattch-style power model."""

import pytest

from repro.gpu import JETSON_TX1, K20C
from repro.gpu.energy import EnergyAccumulator, PowerState, energy_j, power_draw_w


class TestPowerDraw:
    def test_idle_chip(self):
        state = PowerState(powered_sms=0, busy_sms=0)
        assert power_draw_w(K20C, state) == pytest.approx(K20C.idle_power_w)

    def test_components_add_up(self):
        state = PowerState(powered_sms=4, busy_sms=2, activity=0.5)
        expected = (
            K20C.idle_power_w
            + 4 * K20C.sm_static_power_w
            + 2 * 0.5 * K20C.sm_dynamic_power_w
        )
        assert power_draw_w(K20C, state) == pytest.approx(expected)

    def test_gating_saves_static_power(self):
        """Power gating removes the static term of idle SMs -- the
        paper's QPE+ energy lever."""
        all_on = PowerState(powered_sms=K20C.n_sms, busy_sms=4, activity=0.8)
        gated = PowerState(powered_sms=4, busy_sms=4, activity=0.8)
        saving = power_draw_w(K20C, all_on) - power_draw_w(K20C, gated)
        assert saving == pytest.approx(
            (K20C.n_sms - 4) * K20C.sm_static_power_w
        )

    def test_rejects_busy_exceeding_powered(self):
        with pytest.raises(ValueError):
            PowerState(powered_sms=2, busy_sms=3)

    def test_rejects_bad_activity(self):
        with pytest.raises(ValueError):
            PowerState(powered_sms=1, busy_sms=1, activity=1.5)

    def test_rejects_overpowered_chip(self):
        with pytest.raises(ValueError):
            power_draw_w(JETSON_TX1, PowerState(powered_sms=3, busy_sms=0))

    def test_mobile_chip_draws_less(self):
        state_k20 = PowerState(powered_sms=K20C.n_sms, busy_sms=K20C.n_sms)
        state_tx1 = PowerState(
            powered_sms=JETSON_TX1.n_sms, busy_sms=JETSON_TX1.n_sms
        )
        assert power_draw_w(JETSON_TX1, state_tx1) < power_draw_w(K20C, state_k20)


class TestEnergy:
    def test_energy_is_power_times_time(self):
        state = PowerState(powered_sms=2, busy_sms=1, activity=1.0)
        assert energy_j(K20C, state, 2.0) == pytest.approx(
            2.0 * power_draw_w(K20C, state)
        )

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            energy_j(K20C, PowerState(1, 1), -1.0)


class TestAccumulator:
    def test_integrates_segments(self):
        acc = EnergyAccumulator(K20C)
        s1 = PowerState(powered_sms=13, busy_sms=13, activity=1.0)
        s2 = PowerState(powered_sms=2, busy_sms=2, activity=0.5)
        acc.add(s1, 0.1)
        acc.add(s2, 0.4)
        expected = energy_j(K20C, s1, 0.1) + energy_j(K20C, s2, 0.4)
        assert acc.joules == pytest.approx(expected)
        assert acc.seconds == pytest.approx(0.5)

    def test_average_power(self):
        acc = EnergyAccumulator(K20C)
        state = PowerState(powered_sms=1, busy_sms=0)
        acc.add(state, 3.0)
        assert acc.average_power_w == pytest.approx(power_draw_w(K20C, state))

    def test_empty_average_is_zero(self):
        assert EnergyAccumulator(K20C).average_power_w == 0.0

    def test_add_kernel_gated_vs_ungated(self):
        gated = EnergyAccumulator(K20C)
        ungated = EnergyAccumulator(K20C)
        gated.add_kernel(0.1, busy_sms=3, activity=0.9, power_gated=True)
        ungated.add_kernel(0.1, busy_sms=3, activity=0.9, power_gated=False)
        assert gated.joules < ungated.joules
