"""Tests for repro.gpu.kernels: SGEMM descriptors and Eq. 4."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.kernels import (
    COMMON_TILES,
    GemmShape,
    SgemmKernel,
    estimate_registers_per_thread,
    estimate_shared_mem_bytes,
    grid_size,
    make_kernel,
)


class TestGemmShape:
    def test_flops_counts_two_per_mac(self):
        shape = GemmShape(10, 20, 30)
        assert shape.flops == 2.0 * 10 * 20 * 30

    def test_rejects_nonpositive_dims(self):
        for bad in [(0, 1, 1), (1, 0, 1), (1, 1, 0), (-2, 3, 4)]:
            with pytest.raises(ValueError):
                GemmShape(*bad)

    def test_scaled_columns(self):
        shape = GemmShape(8, 100, 16)
        scaled = shape.scaled_columns(40)
        assert scaled.n_cols == 40
        assert scaled.m_rows == 8 and scaled.k_depth == 16

    def test_frozen(self):
        shape = GemmShape(1, 1, 1)
        with pytest.raises(Exception):
            shape.m_rows = 2


class TestGridSize:
    """Eq. 4 -- checked against every Table IV GridSize cell."""

    @pytest.mark.parametrize(
        "m_rows,n_cols,tile_m,tile_n,expected",
        [
            # AlexNet CONV2 per-group result 128 x 729, CONV5 128 x 169.
            (128, 729, 64, 128, 12),  # TX1 cuBLAS
            (128, 169, 64, 128, 4),
            (128, 729, 32, 32, 92),  # TX1 cuDNN
            (128, 169, 32, 32, 24),
            (128, 729, 64, 64, 24),  # K20 both libraries
            (128, 169, 64, 64, 6),
        ],
    )
    def test_table_iv_grid_sizes(self, m_rows, n_cols, tile_m, tile_n, expected):
        assert grid_size(GemmShape(m_rows, n_cols, 100), tile_m, tile_n) == expected

    def test_exact_division(self):
        assert grid_size(GemmShape(128, 256, 8), 64, 64) == 2 * 4

    def test_rejects_bad_tile(self):
        with pytest.raises(ValueError):
            grid_size(GemmShape(1, 1, 1), 0, 64)

    @given(
        m=st.integers(1, 2000),
        n=st.integers(1, 2000),
        tm=st.sampled_from([32, 64, 128]),
        tn=st.sampled_from([32, 64, 128]),
    )
    @settings(max_examples=60, deadline=None)
    def test_grid_covers_matrix(self, m, n, tm, tn):
        g = grid_size(GemmShape(m, n, 8), tm, tn)
        assert g * tm * tn >= m * n
        assert (math.ceil(m / tm) - 1) * tm < m


class TestHeuristics:
    def test_registers_match_cublas_maxwell_kernel(self):
        # Table IV: 64x128 tile, 128-thread block -> 120 registers.
        assert estimate_registers_per_thread(64, 128, 128) == 120

    def test_shared_mem_matches_cublas_maxwell_kernel(self):
        # Table IV: 12544 bytes for the 64x128 tile at k_unroll 8.
        assert estimate_shared_mem_bytes(64, 128, k_unroll=8) == 12544

    def test_shared_mem_matches_cudnn_mobile_kernel(self):
        # Table IV: 2304 bytes for the 32x32 tile at k_unroll 4.
        assert estimate_shared_mem_bytes(32, 32, k_unroll=4) == 2304

    def test_registers_capped_at_255(self):
        assert estimate_registers_per_thread(256, 256, 64) == 255

    def test_rejects_zero_block(self):
        with pytest.raises(ValueError):
            estimate_registers_per_thread(64, 64, 0)


class TestSgemmKernel:
    def _kernel(self, **kwargs):
        defaults = dict(
            name="k",
            tile_m=64,
            tile_n=64,
            block_size=128,
            regs_per_thread=96,
            shared_mem_bytes=8448,
        )
        defaults.update(kwargs)
        return SgemmKernel(**defaults)

    def test_geometry(self):
        k = self._kernel()
        assert k.tile == (64, 64)
        assert k.tile_elements == 4096
        assert k.outputs_per_thread == 32

    def test_rejects_non_warp_multiple_block(self):
        with pytest.raises(ValueError, match="warp"):
            self._kernel(block_size=100)

    def test_rejects_register_overflow(self):
        with pytest.raises(ValueError, match="regs_per_thread"):
            self._kernel(regs_per_thread=256)

    def test_rejects_negative_shmem(self):
        with pytest.raises(ValueError):
            self._kernel(shared_mem_bytes=-1)

    def test_rejects_bad_tile(self):
        with pytest.raises(ValueError):
            self._kernel(tile_m=0)

    def test_density_grows_with_tile(self):
        """Fig. 6: bigger sub-matrices have higher computation density."""
        k_depth = 1200
        densities = [
            make_kernel(tm, tn).computation_density(k_depth)
            for tm, tn in [(32, 32), (64, 64), (128, 64), (128, 128)]
        ]
        assert densities == sorted(densities)
        assert 0.0 < densities[0] < densities[-1] < 1.0

    def test_spilling_lowers_density(self):
        base = make_kernel(64, 64)
        spilled = base.with_spilling(base.regs_per_thread - 16, 32, 32)
        assert spilled.computation_density(500) < base.computation_density(500)

    def test_with_registers(self):
        base = self._kernel()
        derived = base.with_registers(64)
        assert derived.regs_per_thread == 64
        assert base.regs_per_thread == 96

    def test_ffma_per_cta(self):
        k = self._kernel()
        assert k.ffma_per_cta(10) == 64 * 64 * 10

    def test_describe(self):
        text = self._kernel().describe()
        assert "64x64" in text and "96 regs" in text

    def test_make_kernel_names(self):
        assert make_kernel(64, 32).name == "sgemm_64x32_b256"

    def test_common_tiles_include_paper_set(self):
        assert (128, 128) in COMMON_TILES
        assert (128, 64) in COMMON_TILES
        assert (128, 32) in COMMON_TILES
