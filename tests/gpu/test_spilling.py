"""Tests for repro.gpu.spilling: Fig. 9 stairs and Eq. 7."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import K20C
from repro.gpu.kernels import SgemmKernel
from repro.gpu.spilling import (
    apply_spill,
    max_registers_for_tlp,
    plan_spill,
    spill_cost,
    stair_points,
    tlp_for_registers,
)


@pytest.fixture
def fig9_kernel():
    """The Fig. 9 setting: a 128x128 tile whose natural budget is 127
    registers per thread (curReg = 127 on K20).  Shared memory is kept
    light (shallow K-unroll) so the register file, not shared memory,
    bounds the stair walk -- the regime Fig. 9 plots."""
    return SgemmKernel(
        name="fig9",
        tile_m=128,
        tile_n=128,
        block_size=256,
        regs_per_thread=127,
        shared_mem_bytes=4352,
        k_unroll=2,
    )


class TestTlpForRegisters:
    def test_eq5_per_sm(self, fig9_kernel):
        # 61440 // (256 * 127) = 1
        assert tlp_for_registers(K20C, fig9_kernel, 127) == 1

    def test_more_registers_fewer_ctas(self, fig9_kernel):
        tlps = [tlp_for_registers(K20C, fig9_kernel, r) for r in (127, 80, 48, 32)]
        assert tlps == sorted(tlps)

    def test_thread_cap_applies(self, fig9_kernel):
        # 2048 / 256 = 8 CTAs max, regardless of registers.
        assert tlp_for_registers(K20C, fig9_kernel, 1) <= 8

    def test_rejects_zero(self, fig9_kernel):
        with pytest.raises(ValueError):
            tlp_for_registers(K20C, fig9_kernel, 0)


class TestStairPoints:
    def test_first_point_is_unspilled_kernel(self, fig9_kernel):
        points = stair_points(K20C, fig9_kernel)
        assert points[0] == (1, 127)

    def test_fig9_stair_values(self, fig9_kernel):
        """The rightmost point of each stair: max registers per TLP.

        With 61440 usable registers and 256-thread blocks the stairs
        land at 120, 80, 60, 48 ... registers -- Fig. 9's red points.
        """
        points = dict(stair_points(K20C, fig9_kernel))
        assert points[2] == 120
        assert points[3] == 80
        assert points[4] == 60
        assert points[5] == 48

    def test_tlp_strictly_increasing_regs_nonincreasing(self, fig9_kernel):
        points = stair_points(K20C, fig9_kernel)
        tlps = [p[0] for p in points]
        regs = [p[1] for p in points]
        assert tlps == sorted(set(tlps))
        assert regs == sorted(regs, reverse=True)

    def test_stops_at_min_reg(self, fig9_kernel):
        min_reg = K20C.min_registers_per_thread()
        for _tlp, regs in stair_points(K20C, fig9_kernel):
            assert regs >= min_reg

    def test_respects_shared_memory(self):
        fat = SgemmKernel(
            "fat", 128, 128, 256, regs_per_thread=64, shared_mem_bytes=40000
        )
        for tlp, _regs in stair_points(K20C, fat):
            assert tlp * fat.shared_mem_bytes <= K20C.shared_mem_per_sm

    def test_max_registers_roundtrip(self, fig9_kernel):
        for tlp, regs in stair_points(K20C, fig9_kernel)[1:]:
            assert regs == min(
                fig9_kernel.regs_per_thread,
                max_registers_for_tlp(K20C, fig9_kernel, tlp),
            )
            # One more register would lose a CTA.
            if regs < fig9_kernel.regs_per_thread:
                assert tlp_for_registers(K20C, fig9_kernel, regs + 1) < tlp


class TestSpillPlanning:
    def test_no_spill_plan(self, fig9_kernel):
        plan = plan_spill(K20C, fig9_kernel, 127, 1)
        assert plan.spilled_bytes == 0

    def test_spills_to_spare_shared_first(self, fig9_kernel):
        """Section IV.B.2: spare shared memory absorbs spills before
        global memory."""
        plan = plan_spill(K20C, fig9_kernel, 120, 2)
        assert plan.spilled_registers == 7
        assert plan.shared_bytes > 0

    def test_overflow_goes_to_global(self):
        tight = SgemmKernel(
            "tight", 64, 64, 256, regs_per_thread=200,
            shared_mem_bytes=44 * 1024,
        )
        plan = plan_spill(K20C, tight, 60, 1)
        assert plan.global_bytes > 0

    def test_rejects_raising_registers(self, fig9_kernel):
        with pytest.raises(ValueError):
            plan_spill(K20C, fig9_kernel, 200, 1)

    def test_word_granularity(self, fig9_kernel):
        plan = plan_spill(K20C, fig9_kernel, 60, 3)
        assert plan.shared_bytes % 4 == 0
        assert plan.spilled_bytes == (127 - 60) * 4

    @given(target=st.integers(30, 127), tlp=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_plan_conserves_bytes(self, target, tlp):
        kernel = SgemmKernel(
            "f", 128, 128, 256, regs_per_thread=127, shared_mem_bytes=16640
        )
        plan = plan_spill(K20C, kernel, target, tlp)
        assert plan.shared_bytes + plan.global_bytes == (127 - target) * 4
        assert plan.shared_bytes >= 0 and plan.global_bytes >= 0


class TestSpillCost:
    def test_zero_without_spilling(self, fig9_kernel):
        plan = plan_spill(K20C, fig9_kernel, 127, 1)
        assert spill_cost(fig9_kernel, plan, 1000) == 0.0

    def test_global_costs_more_than_shared(self, fig9_kernel):
        from repro.gpu.spilling import SpillPlan

        shared_plan = SpillPlan(100, shared_bytes=108, global_bytes=0)
        global_plan = SpillPlan(100, shared_bytes=0, global_bytes=108)
        assert spill_cost(fig9_kernel, global_plan, 500) > spill_cost(
            fig9_kernel, shared_plan, 500
        )

    def test_cost_monotone_in_spill_size(self, fig9_kernel):
        costs = []
        for target in (120, 100, 80, 60):
            plan = plan_spill(K20C, fig9_kernel, target, 2)
            costs.append(spill_cost(fig9_kernel, plan, 500))
        assert costs == sorted(costs)

    def test_cost_scales_with_k(self, fig9_kernel):
        plan = plan_spill(K20C, fig9_kernel, 60, 2)
        assert spill_cost(fig9_kernel, plan, 2000) > spill_cost(
            fig9_kernel, plan, 200
        )


class TestApplySpill:
    def test_apply_transfers_plan(self, fig9_kernel):
        plan = plan_spill(K20C, fig9_kernel, 80, 3)
        tuned = apply_spill(fig9_kernel, plan)
        assert tuned.regs_per_thread == 80
        assert tuned.spilled_bytes_shared == plan.shared_bytes
        assert tuned.spilled_bytes_global == plan.global_bytes

    def test_applied_kernel_reaches_target_tlp(self, fig9_kernel):
        for tlp, regs in stair_points(K20C, fig9_kernel):
            plan = plan_spill(K20C, fig9_kernel, regs, tlp)
            tuned = apply_spill(fig9_kernel, plan)
            assert tlp_for_registers(K20C, tuned, tuned.regs_per_thread) >= tlp
