"""Regression tests for the fixes the REP-rule sweep surfaced.

Each test pins one concrete change from running ``repro lint`` over
the package, so the fix cannot silently regress when the surrounding
code is refactored:

* REP002: ``ServerReport.deadline_misses`` and
  ``SMState.next_completion_in`` no longer use float ``==``.
* REP004: the unit-declaring public functions carry their unit in the
  name (``power_draw_w``, ``energy_j``, ``analytic_kernel_time_s``).
"""

import pytest

from repro.core.runtime.server import ServedRequest, ServerReport
from repro.core.satisfaction import SoCBreakdown
from repro.gpu import K20C
from repro.gpu.energy import PowerState, energy_j, power_draw_w
from repro.sim.engine import analytic_kernel_time_s
from repro.sim.sm import CTA, SMState


def _served(index, soc_time):
    soc = SoCBreakdown(
        soc_time=soc_time,
        soc_accuracy=1.0,
        energy_joules=1.0,
        value=soc_time,
    )
    return ServedRequest(
        index=index, arrival_s=0.0, start_s=0.0, finish_s=0.1,
        batch=1, entropy=0.1, soc=soc,
    )


class TestDeadlineMissesTolerance:
    """REP002 fix: a SoC_time that collapsed to zero counts as a miss
    even when float error leaves it infinitesimally negative."""

    def test_exact_zero_counts_as_miss(self):
        report = ServerReport(requests=[_served(0, 0.0), _served(1, 0.8)])
        assert report.deadline_misses == 1

    def test_negative_epsilon_counts_as_miss(self):
        # (a - b) where a == b mathematically can land at -1e-17; the
        # old ``== 0.0`` silently dropped such a miss.
        report = ServerReport(requests=[_served(0, -1e-17)])
        assert report.deadline_misses == 1

    def test_positive_soc_time_is_a_hit(self):
        report = ServerReport(requests=[_served(0, 1e-9), _served(1, 1.0)])
        assert report.deadline_misses == 0


class TestSMRateGuard:
    """REP002 fix: the idle-SM guard is an ordering comparison."""

    def test_idle_sm_has_no_next_completion(self):
        sm = SMState(sm_id=0, peak_rate_per_cycle=4.0)
        assert sm.next_completion_in() is None

    def test_busy_sm_reports_completion_time(self):
        sm = SMState(sm_id=0, peak_rate_per_cycle=4.0)
        sm.dispatch(CTA(cta_id=0, work=8.0), now=0.0)
        cycles = sm.next_completion_in()
        assert cycles is not None and cycles > 0.0


class TestUnitSuffixedNames:
    """REP004 fix: unit-declaring functions carry the unit suffix."""

    def test_power_draw_w_is_watts(self):
        state = PowerState(powered_sms=K20C.n_sms, busy_sms=0)
        watts = power_draw_w(K20C, state)
        assert watts > K20C.idle_power_w

    def test_energy_j_is_power_times_time(self):
        state = PowerState(powered_sms=K20C.n_sms, busy_sms=0)
        assert energy_j(K20C, state, 2.0) == pytest.approx(
            2.0 * power_draw_w(K20C, state)
        )

    def test_old_suffixless_names_are_gone(self):
        import repro.gpu.energy as energy_module
        import repro.sim.engine as engine_module

        assert not hasattr(energy_module, "power_draw")
        assert not hasattr(energy_module, "energy")
        assert not hasattr(engine_module, "analytic_kernel_time")
        assert callable(analytic_kernel_time_s)
