"""Tests for repro.obs: the deterministic observability layer."""
