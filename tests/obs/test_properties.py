"""Property-based tests for the span algebra (hypothesis).

The unit tests in ``test_span.py`` check the tracer pointwise; these
pin the structural invariants for *arbitrary* open/close/instant
sequences: span trees stay well-nested (child intervals contained in
their parent), span ids are dense and monotone in begin order, and the
canonical JSON export round-trips bit-identically.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Histogram, linear_percentile
from repro.obs.span import SPAN_NAMES, TraceBuffer, Tracer

_NAMES = st.sampled_from(sorted(SPAN_NAMES))
_DT = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)

#: One tracer step: open a child under the current span, close the
#: current span, or record an instant.  Each advances the sim clock by
#: a non-negative amount, so time is monotone by construction — the
#: tracer must *preserve* that, never reorder it.
_steps = st.lists(
    st.one_of(
        st.tuples(st.just("open"), _NAMES, _DT),
        st.tuples(st.just("close"), st.just(None), _DT),
        st.tuples(st.just("instant"), _NAMES, _DT),
    ),
    min_size=1,
    max_size=60,
)


def _run_steps(steps):
    """Drive a Tracer with a stack discipline; return its buffer."""
    tracer = Tracer()
    clock = 0.0
    stack = []
    for action, name, dt in steps:
        clock += dt
        if action == "open":
            parent = stack[-1] if stack else None
            stack.append(tracer.begin(name, clock, parent=parent))
        elif action == "close" and stack:
            tracer.end(stack.pop(), clock)
        elif action == "instant":
            parent = stack[-1] if stack else None
            tracer.instant(name, clock, parent=parent)
    tracer.drain_open(clock)
    return tracer.buffer


class TestWellNesting:
    @given(steps=_steps)
    @settings(max_examples=120, deadline=None)
    def test_children_contained_in_parents(self, steps):
        buffer = _run_steps(steps)
        spans = {s.span_id: s for s in buffer}
        for span in buffer:
            if span.parent_id is not None:
                assert spans[span.parent_id].contains(span)

    @given(steps=_steps)
    @settings(max_examples=120, deadline=None)
    def test_every_span_has_nonnegative_duration(self, steps):
        for span in _run_steps(steps):
            assert span.end_s >= span.start_s

    @given(steps=_steps)
    @settings(max_examples=120, deadline=None)
    def test_nothing_left_open(self, steps):
        tracer = Tracer()
        clock = 0.0
        stack = []
        for action, name, dt in steps:
            clock += dt
            if action == "open":
                parent = stack[-1] if stack else None
                stack.append(tracer.begin(name, clock, parent=parent))
            elif action == "close" and stack:
                tracer.end(stack.pop(), clock)
        tracer.drain_open(clock)
        assert tracer.open_spans == 0


class TestMonotoneSimTime:
    @given(steps=_steps)
    @settings(max_examples=120, deadline=None)
    def test_span_ids_dense_and_start_times_monotone(self, steps):
        buffer = _run_steps(steps)
        spans = sorted(buffer, key=lambda s: s.span_id)
        assert [s.span_id for s in spans] == list(range(len(spans)))
        starts = [s.start_s for s in spans]
        assert starts == sorted(starts)

    @given(steps=_steps)
    @settings(max_examples=120, deadline=None)
    def test_children_start_no_earlier_than_parent(self, steps):
        buffer = _run_steps(steps)
        spans = {s.span_id: s for s in buffer}
        for span in buffer:
            if span.parent_id is not None:
                assert span.start_s >= spans[span.parent_id].start_s


class TestExportRoundTrip:
    @given(steps=_steps)
    @settings(max_examples=120, deadline=None)
    def test_json_round_trip_bit_identical(self, steps):
        buffer = _run_steps(steps)
        payload = buffer.to_json()
        rebuilt = TraceBuffer.from_json(payload)
        assert rebuilt.to_json() == payload
        assert rebuilt.fingerprint() == buffer.fingerprint()

    @given(steps=_steps)
    @settings(max_examples=120, deadline=None)
    def test_dict_round_trip_preserves_every_span(self, steps):
        buffer = _run_steps(steps)
        rebuilt = TraceBuffer.from_dicts(buffer.to_dicts())
        # The live buffer records spans as they *end*; the canonical
        # export is id-ordered, so compare id-ordered on both sides.
        def by_id(span):
            return span.span_id

        assert sorted(rebuilt, key=by_id) == sorted(buffer, key=by_id)

    @given(steps=_steps)
    @settings(max_examples=60, deadline=None)
    def test_export_is_deterministic(self, steps):
        a = _run_steps(steps)
        b = _run_steps(list(steps))
        assert a.to_json() == b.to_json()
        assert a.fingerprint() == b.fingerprint()


class TestHistogramProperties:
    _values = st.lists(
        st.floats(
            min_value=-100.0,
            max_value=100.0,
            allow_nan=False,
            allow_infinity=False,
        ),
        max_size=50,
    )
    _edges = st.lists(
        st.floats(
            min_value=-50.0,
            max_value=50.0,
            allow_nan=False,
            allow_infinity=False,
        ),
        min_size=1,
        max_size=8,
        unique=True,
    ).map(sorted)

    @given(values=_values, edges=_edges)
    @settings(max_examples=120, deadline=None)
    def test_bucket_counts_total_to_count(self, values, edges):
        hist = Histogram(edges)
        for v in values:
            hist.observe(v)
        assert sum(hist.bucket_counts) == hist.count == len(values)
        cumulative = [c for _, c in hist.cumulative()]
        assert cumulative == sorted(cumulative)
        assert (cumulative[-1] if cumulative else 0) == len(values)

    @given(values=_values, q=st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=120, deadline=None)
    def test_percentile_bounded_by_extremes(self, values, q):
        result = linear_percentile(values, q)
        if not values:
            assert result == 0.0
        else:
            assert min(values) <= result <= max(values)

    @given(steps=_steps)
    @settings(max_examples=40, deadline=None)
    def test_chrome_export_parses_when_nonempty(self, steps):
        from repro.obs.export import chrome_trace_json, validate_chrome_trace

        buffer = _run_steps(steps)
        if len(buffer) == 0:
            return
        data = json.loads(chrome_trace_json(buffer))
        assert validate_chrome_trace(data) == []
