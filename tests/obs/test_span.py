"""Tests for repro.obs.span: spans, handles, tracer, buffer."""

import json

import pytest

from repro.obs.span import (
    CACHE_SENSITIVE_SPANS,
    SPAN_NAMES,
    Span,
    TraceBuffer,
    Tracer,
)


class TestSpan:
    def test_duration_and_containment(self):
        outer = Span(0, None, "run", 0.0, 10.0, {})
        inner = Span(1, 0, "execute_batch", 2.0, 3.5, {})
        assert outer.duration_s == 10.0
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_to_dict_round_trip(self):
        span = Span(3, 1, "dispatch", 1.25, 1.25, {"b": 2, "a": "x"})
        data = span.to_dict()
        assert list(data["attrs"]) == ["a", "b"]  # sorted
        assert Span.from_dict(data) == span

    def test_taxonomy_covers_the_issue_span_set(self):
        for name in (
            "compile", "plan_cache_lookup", "execute_batch", "dispatch",
            "admission", "retry", "calibration_backtrack", "fault_episode",
        ):
            assert name in SPAN_NAMES
        assert set(CACHE_SENSITIVE_SPANS) <= set(SPAN_NAMES)


class TestTracer:
    def test_begin_end_records_into_buffer(self):
        tracer = Tracer()
        handle = tracer.begin("run", 0.0, platforms="a")
        assert tracer.open_spans == 1
        span = tracer.end(handle, 2.0, outcome="done")
        assert tracer.open_spans == 0
        assert len(tracer.buffer) == 1
        assert span.name == "run"
        assert span.start_s == 0.0 and span.end_s == 2.0
        assert span.attrs == {"platforms": "a", "outcome": "done"}

    def test_span_ids_are_dense_in_begin_order(self):
        tracer = Tracer()
        a = tracer.begin("run", 0.0)
        b = tracer.begin("platform", 0.0, parent=a)
        c = tracer.begin("request", 1.0, parent=a)
        assert (a.span_id, b.span_id, c.span_id) == (0, 1, 2)

    def test_unknown_name_rejected(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="unknown span name"):
            tracer.begin("bogus", 0.0)

    def test_end_before_start_rejected(self):
        tracer = Tracer()
        handle = tracer.begin("run", 5.0)
        with pytest.raises(ValueError, match="before it began"):
            tracer.end(handle, 4.0)

    def test_child_before_parent_start_rejected(self):
        tracer = Tracer()
        parent = tracer.begin("run", 5.0)
        with pytest.raises(ValueError, match="before its parent"):
            tracer.begin("request", 4.0, parent=parent)

    def test_double_end_rejected(self):
        tracer = Tracer()
        handle = tracer.begin("run", 0.0)
        tracer.end(handle, 1.0)
        with pytest.raises(ValueError, match="not open"):
            tracer.end(handle, 2.0)

    def test_instant_and_emit(self):
        tracer = Tracer()
        instant = tracer.instant("admission", 1.5, reason="ok")
        emitted = tracer.emit("execute_batch", 1.0, 2.0, batch=4)
        assert instant.duration_s == 0.0
        assert emitted.duration_s == 1.0
        assert len(tracer.buffer) == 2

    def test_drain_open_closes_in_id_order_and_marks(self):
        tracer = Tracer()
        a = tracer.begin("run", 0.0)
        b = tracer.begin("platform", 0.0, parent=a)
        closed = tracer.drain_open(3.0)
        assert [s.span_id for s in closed] == [a.span_id, b.span_id]
        assert all(s.attrs["open_at_drain"] for s in closed)
        assert tracer.open_spans == 0

    def test_drain_never_ends_before_start(self):
        tracer = Tracer()
        tracer.begin("run", 5.0)
        (span,) = tracer.drain_open(1.0)
        assert span.end_s == 5.0

    def test_disabled_tracer_is_inert(self):
        tracer = Tracer(enabled=False)
        handle = tracer.begin("run", 0.0)
        handle.set(anything="goes")
        assert tracer.end(handle, 1.0) is None
        assert tracer.instant("admission", 0.5) is None
        assert tracer.emit("execute_batch", 0.0, 1.0) is None
        assert tracer.drain_open(2.0) == []
        assert len(tracer.buffer) == 0


class TestTraceBuffer:
    def _populated(self):
        tracer = Tracer()
        run = tracer.begin("run", 0.0)
        tracer.instant("compile", 0.0, platform="a")
        tracer.instant("plan_cache_lookup", 0.1, platform="a")
        tracer.emit("execute_batch", 1.0, 2.0, parent=run, platform="a")
        tracer.end(run, 3.0)
        return tracer.buffer

    def test_of_name_and_counts(self):
        buffer = self._populated()
        assert len(buffer.of_name("execute_batch")) == 1
        assert buffer.counts["run"] == 1
        assert buffer.counts["retry"] == 0
        with pytest.raises(ValueError, match="unknown span name"):
            buffer.of_name("bogus")

    def test_children_of(self):
        buffer = self._populated()
        run = buffer.of_name("run")[0]
        children = buffer.children_of(run.span_id)
        assert [s.name for s in children] == ["execute_batch"]
        roots = buffer.children_of(None)
        assert {s.name for s in roots} == {
            "run", "compile", "plan_cache_lookup"
        }

    def test_to_dicts_ordered_by_span_id(self):
        buffer = self._populated()
        ids = [d["span_id"] for d in buffer.to_dicts()]
        assert ids == sorted(ids)

    def test_json_round_trip_is_bit_identical(self):
        buffer = self._populated()
        payload = buffer.to_json()
        rebuilt = TraceBuffer.from_json(payload)
        assert rebuilt.to_json() == payload
        assert rebuilt.fingerprint() == buffer.fingerprint()

    def test_fingerprint_ignores_cache_sensitive_spans(self):
        warm = self._populated()

        tracer = Tracer()  # same run shape, no compile/lookup spans
        run = tracer.begin("run", 0.0)
        tracer.emit("execute_batch", 1.0, 2.0, parent=run, platform="a")
        tracer.end(run, 3.0)
        cold = tracer.buffer

        assert warm.fingerprint() == cold.fingerprint()
        assert warm.to_json() != cold.to_json()

    def test_fingerprint_sensitive_to_routing_behaviour(self):
        buffer = self._populated()
        tracer = Tracer()
        run = tracer.begin("run", 0.0)
        tracer.emit("execute_batch", 1.0, 2.5, parent=run, platform="a")
        tracer.end(run, 3.0)
        assert tracer.buffer.fingerprint() != buffer.fingerprint()

    def test_fingerprint_remaps_parents_densely(self):
        tracer = Tracer()
        tracer.instant("compile", 0.0)  # id 0, dropped
        run = tracer.begin("run", 0.0)  # id 1 -> 0
        tracer.emit("request", 1.0, 2.0, parent=run)  # id 2 -> 1
        tracer.end(run, 3.0)
        survivors = json.loads(tracer.buffer.to_json())
        assert len(survivors) == 3
        # Equivalent buffer built without the compile span.
        other = Tracer()
        run2 = other.begin("run", 0.0)
        other.emit("request", 1.0, 2.0, parent=run2)
        other.end(run2, 3.0)
        assert other.buffer.fingerprint() == tracer.buffer.fingerprint()
