"""Tests for repro.obs.metrics: instruments, registry, percentile."""

import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    linear_percentile,
)


class TestLinearPercentile:
    def test_empty_series_is_zero(self):
        assert linear_percentile([], 50.0) == 0.0
        assert linear_percentile([], 0.0) == 0.0
        assert linear_percentile([], 100.0) == 0.0

    def test_single_sample_is_every_percentile(self):
        for q in (0.0, 25.0, 50.0, 99.0, 100.0):
            assert linear_percentile([3.5], q) == 3.5

    def test_extremes_are_min_and_max(self):
        values = [5.0, 1.0, 3.0]
        assert linear_percentile(values, 0.0) == 1.0
        assert linear_percentile(values, 100.0) == 5.0

    def test_linear_interpolation_matches_numpy_convention(self):
        # numpy.percentile([1, 2, 3, 4], 75, method="linear") == 3.25
        assert linear_percentile([1.0, 2.0, 3.0, 4.0], 75.0) == pytest.approx(3.25)
        assert linear_percentile([1.0, 2.0], 50.0) == pytest.approx(1.5)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError, match="percentile"):
            linear_percentile([1.0], -0.1)
        with pytest.raises(ValueError, match="percentile"):
            linear_percentile([1.0], 100.1)

    def test_input_order_irrelevant(self):
        assert linear_percentile([3.0, 1.0, 2.0], 50.0) == linear_percentile(
            [1.0, 2.0, 3.0], 50.0
        )


class TestCounter:
    def test_inc(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert counter.snapshot() == {"value": 3.5}

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Counter().inc(-1.0)


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge()
        gauge.set(7.0)
        gauge.add(-2.0)
        assert gauge.value == 5.0


class TestHistogram:
    def test_edges_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram([1.0, 1.0])
        with pytest.raises(ValueError, match="at least one"):
            Histogram([])

    def test_upper_inclusive_bucket_edges(self):
        hist = Histogram([1.0, 2.0])
        hist.observe(1.0)  # exactly at the first edge: first bucket
        hist.observe(2.0)  # exactly at the second edge: second bucket
        hist.observe(2.0000001)  # just past: overflow
        assert hist.bucket_counts == [1, 1, 1]

    def test_flush_policy_convention_match(self):
        # FlushPolicy admits an arrival exactly at the flush point
        # (arrival <= flush_at); the histogram mirrors it: a value
        # exactly at an edge lands in the earlier bucket.
        from repro.core.runtime.server import FlushPolicy

        policy = FlushPolicy(capacity=8, timeout_s=1.0)
        boundary = policy.flush_at(0.0)
        assert policy.admits(1, boundary, 0.0)  # inclusive edge
        hist = Histogram([boundary])
        hist.observe(boundary)
        assert hist.bucket_counts == [1, 0]  # inclusive edge

    def test_stats_ride_along(self):
        hist = Histogram([10.0])
        for v in (1.0, 5.0, 12.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.sum == 18.0
        assert hist.min == 1.0
        assert hist.max == 12.0

    def test_empty_histogram_snapshot(self):
        hist = Histogram([1.0])
        snap = hist.snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None
        assert snap["buckets"] == [["1", 0], ["inf", 0]]

    def test_cumulative_ends_with_inf_total(self):
        hist = Histogram([1.0, 2.0])
        for v in (0.5, 1.5, 9.0):
            hist.observe(v)
        pairs = hist.cumulative()
        assert pairs[-1][0] == math.inf
        assert pairs[-1][1] == 3
        assert [c for _, c in pairs] == [1, 2, 3]  # monotone


class TestMetricsRegistry:
    def test_series_per_label_set(self):
        registry = MetricsRegistry()
        registry.counter("batches_total", platform="a").inc()
        registry.counter("batches_total", platform="b").inc(2)
        assert registry.n_series == 2
        assert registry.counter("batches_total", platform="a").value == 1.0

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("x")

    def test_histogram_edge_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("lat", (1.0, 2.0))
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("lat", (1.0, 3.0))

    def test_snapshot_sorted_and_stable_under_insertion_order(self):
        first = MetricsRegistry()
        first.counter("b", platform="y").inc()
        first.counter("a").inc()
        first.gauge("c", platform="x", tier="1").set(2)
        second = MetricsRegistry()
        second.gauge("c", tier="1", platform="x").set(2)
        second.counter("a").inc()
        second.counter("b", platform="y").inc()
        assert first.snapshot() == second.snapshot()
        assert list(first.snapshot()) == sorted(first.snapshot())

    def test_families_report_kind_and_help(self):
        registry = MetricsRegistry()
        registry.counter("n", "things counted")
        assert registry.families() == [("n", "counter", "things counted")]
