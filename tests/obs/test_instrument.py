"""Tests for repro.obs.instrument: the Instrumentation facade."""

from dataclasses import dataclass, field
from typing import List, Optional

import pytest

from repro.core.engine import ExecutionEngine
from repro.core.satisfaction import TimeRequirement
from repro.faults.events import FaultEvent
from repro.gpu import K20C
from repro.nn import alexnet
from repro.obs.instrument import (
    CACHE_SENSITIVE_METRIC_PREFIX,
    Instrumentation,
    cache_neutral_obs_section,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    OCCUPANCY_BUCKETS,
    SLACK_BUCKETS_S,
)
from repro.serving.request import Request, Tenant


@dataclass
class _Rung:
    level: int = 0


@dataclass
class _Batch:
    """Duck-typed stand-in for the router's InFlightBatch."""

    requests: List[Request]
    rung: _Rung = field(default_factory=_Rung)
    obs_span: Optional[object] = None


def _tenant(deadline_s: float = 0.5) -> Tenant:
    return Tenant(
        "t", TimeRequirement(imperceptible_s=0.1, unusable_s=deadline_s)
    )


def _request(rid: int, arrival_s: float = 0.0) -> Request:
    return Request(rid=rid, tenant=_tenant(), arrival_s=arrival_s)


class TestLifecycle:
    def test_full_request_lifecycle_spans(self):
        obs = Instrumentation()
        obs.run_started(("a", "b"), 0.0)
        request = _request(0, arrival_s=0.1)
        obs.request_admitted(request, 0.1, "a", 0, "ok", 1)
        batch = _Batch([request])
        obs.batch_dispatched("a", batch, 4, 0, 0.2)
        assert batch.obs_span is not None
        obs.batch_completed("a", batch, 0.4, energy_j=2.0)
        assert batch.obs_span is None
        obs.request_completed(request, 0.4, "a", 0)
        obs.run_finished(0.4)

        counts = obs.buffer.counts
        assert counts["run"] == 1
        assert counts["platform"] == 2
        assert counts["request"] == 1
        assert counts["admission"] == 1
        assert counts["dispatch"] == 1
        assert counts["execute_batch"] == 1

        spans = {s.span_id: s for s in obs.buffer}
        for span in obs.buffer:
            if span.parent_id is not None:
                assert spans[span.parent_id].contains(span)
        request_span = obs.buffer.of_name("request")[0]
        assert request_span.attrs["outcome"] == "completed"

    def test_rejected_at_admission_still_gets_a_span(self):
        obs = Instrumentation()
        obs.run_started(("a",), 0.0)
        request = _request(3, arrival_s=0.2)
        obs.request_rejected(request, 0.3, "saturated")
        obs.run_finished(0.3)
        span = obs.buffer.of_name("request")[0]
        assert span.start_s == 0.2 and span.end_s == 0.3
        assert span.attrs["outcome"] == "rejected"
        assert span.attrs["reason"] == "saturated"

    def test_retry_and_failover_marks(self):
        obs = Instrumentation()
        obs.run_started(("a", "b"), 0.0)
        request = _request(1)
        obs.request_admitted(request, 0.0, "a", 0, "ok", 1)
        obs.retry_scheduled(request, 0.2, attempt=1, backoff_s=0.05)
        obs.failover(request, 0.3, "a", "b")
        obs.request_completed(request, 0.5, "b", 0)
        obs.run_finished(0.5)
        assert obs.buffer.counts["retry"] == 1
        assert obs.metrics.counter("retries_total").value == 1.0
        assert (
            obs.metrics.counter("failovers_total", origin="a").value == 1.0
        )

    def test_open_request_spans_drained_at_run_end(self):
        obs = Instrumentation()
        obs.run_started(("a",), 0.0)
        obs.request_admitted(_request(0), 0.0, "a", 0, "ok", 1)
        obs.run_finished(1.0)
        span = obs.buffer.of_name("request")[0]
        assert span.attrs["outcome"] == "open_at_drain"
        assert obs.tracer.open_spans == 0

    def test_batch_failure_and_abandonment(self):
        obs = Instrumentation()
        obs.run_started(("a",), 0.0)
        request = _request(0)
        failing = _Batch([request])
        obs.batch_dispatched("a", failing, 4, 0, 0.1)
        obs.batch_failed("a", failing, 0.2)
        stranded = _Batch([request])
        obs.batch_dispatched("a", stranded, 4, 0, 0.3)
        obs.batch_abandoned("a", stranded, 0.4)
        obs.request_rejected(request, 0.4, "retries-exhausted")
        obs.run_finished(0.5)
        outcomes = sorted(
            s.attrs["outcome"] for s in obs.buffer.of_name("execute_batch")
        )
        assert outcomes == ["abandoned", "failed"]
        assert (
            obs.metrics.counter("batch_failures_total", platform="a").value
            == 1.0
        )


class TestMetricsCatalog:
    def test_deadline_slack_and_latency_histograms(self):
        obs = Instrumentation()
        obs.run_started(("a",), 0.0)
        request = _request(0, arrival_s=0.0)  # deadline 0.5
        obs.request_admitted(request, 0.0, "a", 0, "ok", 1)
        obs.request_completed(request, 0.4, "a", 0)
        obs.run_finished(0.4)
        latency = obs.metrics.histogram(
            "request_latency_s", LATENCY_BUCKETS_S
        )
        assert latency.count == 1
        assert latency.sum == pytest.approx(0.4)
        slack = obs.metrics.histogram("deadline_slack_s", SLACK_BUCKETS_S)
        assert slack.sum == pytest.approx(0.1)  # 0.5 deadline - 0.4 finish

    def test_occupancy_and_energy(self):
        obs = Instrumentation()
        obs.run_started(("a",), 0.0)
        batch = _Batch([_request(0), _request(1)])
        obs.batch_dispatched("a", batch, 4, 3, 0.1)
        obs.batch_completed("a", batch, 0.2, energy_j=5.0)
        obs.run_finished(0.2)
        occupancy = obs.metrics.histogram(
            "batch_occupancy", OCCUPANCY_BUCKETS, platform="a"
        )
        assert occupancy.sum == pytest.approx(0.5)  # 2 of 4 slots
        assert (
            obs.metrics.counter("platform_energy_j", platform="a").value
            == 5.0
        )
        assert (
            obs.metrics.gauge("queue_depth", platform="a").value == 3.0
        )

    def test_breaker_and_degradation_counters(self):
        obs = Instrumentation()
        obs.run_started(("a",), 0.0)
        obs.breaker_transition("a", "breaker_open", 0.1)
        obs.breaker_transition("a", "breaker_close", 0.2)
        obs.degradation_move("a", "degrade", 1, 0.1)
        obs.run_finished(0.2)
        assert (
            obs.metrics.counter(
                "breaker_transitions_total",
                platform="a",
                transition="breaker_open",
            ).value
            == 1.0
        )
        assert obs.metrics.gauge("degradation_level", platform="a").value == 1.0


class TestFaultEpisodes:
    def test_episode_pairing(self):
        obs = Instrumentation()
        obs.run_started(("a",), 0.0)
        down = FaultEvent(time_s=1.0, kind="outage", platform="a", episode=0)
        up = FaultEvent(time_s=2.5, kind="restore", platform="a", episode=0)
        obs.fault(down, 1.0)
        obs.fault(up, 2.5)
        obs.run_finished(3.0)
        episode = obs.buffer.of_name("fault_episode")[0]
        assert episode.start_s == 1.0 and episode.end_s == 2.5
        assert episode.attrs["fault_kind"] == "outage"
        assert "open_at_drain" not in episode.attrs

    def test_unclosed_episode_drained(self):
        obs = Instrumentation()
        obs.run_started(("a",), 0.0)
        obs.fault(
            FaultEvent(time_s=1.0, kind="throttle", platform="a", episode=0),
            1.0,
        )
        obs.run_finished(4.0)
        episode = obs.buffer.of_name("fault_episode")[0]
        assert episode.end_s == 4.0
        assert episode.attrs["open_at_drain"] is True

    def test_transient_is_instant(self):
        obs = Instrumentation()
        obs.run_started(("a",), 0.0)
        obs.fault(
            FaultEvent(time_s=1.5, kind="transient", platform="a"), 1.5
        )
        obs.run_finished(2.0)
        episode = obs.buffer.of_name("fault_episode")[0]
        assert episode.duration_s == 0.0
        assert (
            obs.metrics.counter(
                "faults_injected_total", kind="transient", platform="a"
            ).value
            == 1.0
        )


class TestEngineAttach:
    def test_compile_and_cache_relays(self):
        engine = ExecutionEngine(K20C)
        obs = Instrumentation()
        clock = [0.0]
        detach = obs.attach_engine(engine, lambda: clock[0])
        network = alexnet()
        engine.compile_with_batch(network, 1)  # miss -> compile span
        clock[0] = 1.0
        engine.compile_with_batch(network, 1)  # hit -> lookup span
        detach()
        engine.compile_with_batch(network, 2)  # after detach: unobserved
        assert obs.buffer.counts["compile"] == 1
        assert obs.buffer.counts["plan_cache_lookup"] == 1
        assert obs.metrics.counter("engine_compiles_total").value == 1.0
        assert (
            obs.metrics.counter(
                "engine_cache_hits_total", cache="compile"
            ).value
            == 1.0
        )

    def test_disabled_attach_is_inert(self):
        engine = ExecutionEngine(K20C)
        obs = Instrumentation.disabled()
        detach = obs.attach_engine(engine, lambda: 0.0)
        engine.compile_with_batch(alexnet(), 1)
        detach()
        assert len(obs.buffer) == 0
        assert obs.metrics.n_series == 0


class TestDisabled:
    def test_every_callback_is_inert(self):
        obs = Instrumentation.disabled()
        request = _request(0)
        batch = _Batch([request])
        obs.run_started(("a",), 0.0)
        obs.request_admitted(request, 0.0, "a", 0, "ok", 1)
        obs.batch_dispatched("a", batch, 4, 0, 0.1)
        obs.batch_completed("a", batch, 0.2, 1.0)
        obs.request_completed(request, 0.2, "a", 0)
        obs.retry_scheduled(request, 0.2, 1, 0.05)
        obs.failover(request, 0.2, "a", "b")
        obs.batch_failed("a", batch, 0.2)
        obs.batch_abandoned("a", batch, 0.2)
        obs.degradation_move("a", "degrade", 1, 0.2)
        obs.breaker_transition("a", "breaker_open", 0.2)
        obs.fault(FaultEvent(time_s=0.2, kind="transient", platform="a"), 0.2)
        obs.request_rejected(request, 0.2, "saturated")
        obs.run_finished(0.3)
        assert len(obs.buffer) == 0
        assert obs.metrics.n_series == 0
        assert batch.obs_span is None


class TestReportSection:
    def _observed(self):
        obs = Instrumentation()
        obs.run_started(("a",), 0.0)
        request = _request(0)
        obs.request_admitted(request, 0.0, "a", 0, "ok", 1)
        obs.request_completed(request, 0.2, "a", 0)
        obs.metrics.counter("engine_compiles_total").inc(3)
        obs.tracer.instant("compile", 0.0)
        obs.run_finished(0.2)
        return obs

    def test_section_shape(self):
        section = self._observed().report_section()
        assert section["n_spans"] == len(self._observed().buffer)
        assert section["span_counts"]["request"] == 1
        assert "compile" in section["span_counts"]
        assert isinstance(section["metrics"], dict)
        assert len(section["trace_fingerprint"]) == 40

    def test_cache_neutral_section_strips_engine_noise(self):
        section = self._observed().report_section()
        neutral = cache_neutral_obs_section(section)
        assert "compile" not in neutral["span_counts"]
        assert "request" in neutral["span_counts"]
        assert not any(
            key.startswith(CACHE_SENSITIVE_METRIC_PREFIX)
            for key in neutral["metrics"]
        )
        assert "n_spans" not in neutral
        assert neutral["trace_fingerprint"] == section["trace_fingerprint"]

    def test_coverage_of(self):
        obs = Instrumentation()
        obs.run_started(("a",), 0.0)
        batch = _Batch([_request(0), _request(1)])
        obs.batch_dispatched("a", batch, 4, 0, 0.1)
        obs.batch_completed("a", batch, 0.2, 1.0)
        obs.run_finished(0.2)
        assert obs.coverage_of([0, 1]) == 1.0
        assert obs.coverage_of([0, 1, 2, 3]) == 0.5
        assert obs.coverage_of([]) == 1.0
