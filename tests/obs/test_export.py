"""Tests for repro.obs.export: JSON, Prometheus text, Chrome trace."""

import json

from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    metrics_to_json,
    prometheus_text,
    trace_to_json,
    validate_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import TraceBuffer, Tracer


def _sample_buffer():
    tracer = Tracer()
    run = tracer.begin("run", 0.0, platforms="a,b")
    pa = tracer.begin("platform", 0.0, parent=run, platform="a")
    tracer.emit(
        "execute_batch", 0.5, 1.5, parent=pa, platform="a", batch=4
    )
    tracer.instant("admission", 0.25, parent=run, reason="ok")
    tracer.end(pa, 2.0)
    tracer.end(run, 2.0)
    return tracer.buffer


def _sample_registry():
    registry = MetricsRegistry()
    registry.counter("served_total", "requests served", platform="a").inc(3)
    registry.gauge("queue_depth", "queued", platform="a").set(2)
    hist = registry.histogram("lat_s", (0.1, 1.0), "latency")
    for v in (0.05, 0.1, 2.0):
        hist.observe(v)
    return registry


class TestJsonExports:
    def test_trace_json_round_trips(self):
        buffer = _sample_buffer()
        payload = trace_to_json(buffer)
        assert TraceBuffer.from_json(payload).to_json() == buffer.to_json()
        # canonical: compact separators, sorted keys
        assert ": " not in payload

    def test_metrics_json_is_sorted_canonical(self):
        payload = metrics_to_json(_sample_registry())
        data = json.loads(payload)
        assert list(data) == sorted(data)
        assert json.dumps(data, sort_keys=True, separators=(",", ":")) == payload


class TestPrometheusText:
    def test_exposition_structure(self):
        text = prometheus_text(_sample_registry())
        lines = text.splitlines()
        assert "# TYPE served_total counter" in lines
        assert 'served_total{platform="a"} 3' in text
        assert "# TYPE lat_s histogram" in lines
        assert 'lat_s_bucket{le="0.1"} 2' in lines  # upper-inclusive
        assert 'lat_s_bucket{le="1"} 2' in lines
        assert 'lat_s_bucket{le="+Inf"} 3' in lines
        assert "lat_s_count 3" in lines
        assert text.endswith("\n")

    def test_help_lines_present(self):
        text = prometheus_text(_sample_registry())
        assert "# HELP served_total requests served" in text

    def test_deterministic_across_insertion_orders(self):
        a = MetricsRegistry()
        a.counter("x", platform="b").inc()
        a.counter("x", platform="a").inc()
        b = MetricsRegistry()
        b.counter("x", platform="a").inc()
        b.counter("x", platform="b").inc()
        assert prometheus_text(a) == prometheus_text(b)


class TestChromeTrace:
    def test_valid_and_loads_all_spans(self):
        buffer = _sample_buffer()
        data = chrome_trace(buffer)
        assert validate_chrome_trace(data) == []
        complete = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(buffer)

    def test_platform_spans_get_their_own_track(self):
        data = chrome_trace(_sample_buffer())
        events = data["traceEvents"]
        batch = next(e for e in events if e["name"] == "execute_batch")
        run = next(e for e in events if e["name"] == "run")
        assert batch["tid"] != run["tid"]
        thread_names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "a" in thread_names and "router" in thread_names

    def test_timestamps_are_sim_microseconds(self):
        data = chrome_trace(_sample_buffer())
        batch = next(
            e for e in data["traceEvents"] if e["name"] == "execute_batch"
        )
        assert batch["ts"] == 0.5e6
        assert batch["dur"] == 1.0e6

    def test_instants_get_minimum_render_duration(self):
        data = chrome_trace(_sample_buffer())
        admission = next(
            e for e in data["traceEvents"] if e["name"] == "admission"
        )
        assert admission["dur"] == 1.0

    def test_json_rendering_is_canonical(self):
        buffer = _sample_buffer()
        assert chrome_trace_json(buffer) == chrome_trace_json(buffer)
        json.loads(chrome_trace_json(buffer))


class TestValidateChromeTrace:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []

    def test_flags_empty_trace(self):
        assert "traceEvents is empty" in validate_chrome_trace(
            {"traceEvents": []}
        )

    def test_flags_bad_events(self):
        problems = validate_chrome_trace(
            {
                "traceEvents": [
                    {"ph": "X", "pid": 1, "tid": 0, "ts": -1, "dur": 1},
                    {"name": "ok", "ph": "Z", "pid": "1", "tid": 0},
                    {"name": "ok", "ph": "X", "pid": 1, "tid": 0,
                     "ts": 0, "dur": 1, "args": "bad"},
                ]
            }
        )
        text = "\n".join(problems)
        assert "missing name" in text
        assert ">= 0" in text
        assert "unknown phase" in text
        assert "pid must be an int" in text
        assert "args must be an object" in text
