"""Property tests for the SoA event-queue primitives.

:class:`repro.sim.vec.SoAEventQueue` must pop in exactly the order
``heapq`` pops ``(time_s, seq)`` tuples -- including FIFO draining of
equal timestamps -- and the float64 clocks that flow through it (and
through :class:`ArrivalColumns`) must round-trip bit-exactly, because
the vectorized router's fingerprint contract leaves no room for even
one ULP of drift.
"""

import heapq
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.satisfaction import TimeRequirement
from repro.serving import Tenant, TenantLoad
from repro.serving.request import merge_loads
from repro.sim.vec import ArrivalColumns, SoAEventQueue
from repro.workloads import bursty_trace, diurnal_trace, pareto_trace

#: Times drawn for the heap-order properties: finite floats plus a
#: deliberately collision-happy coarse grid (two buckets), so equal
#: timestamps are common and the tie-break is genuinely exercised.
_times = st.one_of(
    st.floats(
        min_value=0.0, max_value=1e6,
        allow_nan=False, allow_infinity=False,
    ),
    st.sampled_from([0.0, 1.0]),
)


class TestHeapOrder:
    @settings(max_examples=200, deadline=None)
    @given(times=st.lists(_times, min_size=0, max_size=64))
    def test_pop_order_matches_heapq(self, times):
        queue = SoAEventQueue()
        mirror = []
        for kind, time_s in enumerate(times):
            seq = queue.push(time_s, kind, kind + 100)
            heapq.heappush(mirror, (time_s, seq, kind, kind + 100))
        assert len(queue) == len(times)
        drained = [queue.pop() for _ in times]
        expected = [heapq.heappop(mirror) for _ in times]
        assert drained == expected

    @settings(max_examples=100, deadline=None)
    @given(
        times=st.lists(_times, min_size=1, max_size=48),
        pop_points=st.lists(
            st.integers(min_value=0, max_value=47),
            min_size=0, max_size=24,
        ),
    )
    def test_interleaved_push_pop_matches_heapq(self, times, pop_points):
        """Pops interleaved mid-stream drain identically too (the
        sift-down path, not just a fully-built heap)."""
        pops = set(pop_points)
        queue = SoAEventQueue()
        mirror = []
        drained = []
        expected = []
        for step, time_s in enumerate(times):
            seq = queue.push(time_s, step, 0)
            heapq.heappush(mirror, (time_s, seq, step, 0))
            if step in pops:
                drained.append(queue.pop())
                expected.append(heapq.heappop(mirror))
        while mirror:
            drained.append(queue.pop())
            expected.append(heapq.heappop(mirror))
        assert drained == expected
        assert len(queue) == 0

    def test_equal_timestamps_drain_fifo(self):
        queue = SoAEventQueue()
        for payload in range(10):
            queue.push(1.5, 0, payload)
        assert [queue.pop()[3] for _ in range(10)] == list(range(10))

    @settings(max_examples=50, deadline=None)
    @given(times=st.lists(_times, min_size=1, max_size=32))
    def test_version_bumps_on_every_mutation(self, times):
        queue = SoAEventQueue()
        version = queue.version
        for time_s in times:
            queue.push(time_s, 0, 0)
            assert queue.version > version
            version = queue.version
        for _ in times:
            queue.pop()
            assert queue.version > version
            version = queue.version

    def test_first_seq_and_next_seq(self):
        queue = SoAEventQueue(first_seq=7)
        assert queue.next_seq == 7
        assert queue.push(0.0, 0, 0) == 7
        assert queue.push(0.0, 0, 0) == 8
        assert queue.next_seq == 9

    def test_empty_queue_behaviour(self):
        queue = SoAEventQueue()
        assert queue.peek_time() == math.inf
        with pytest.raises(IndexError):
            queue.pop()

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity must be >= 1"):
            SoAEventQueue(capacity=0)


class TestFloat64RoundTrip:
    @pytest.mark.parametrize(
        "trace",
        [
            bursty_trace(n_requests=200, rate_hz=317.0, seed=5),
            pareto_trace(n_requests=200, rate_hz=317.0, alpha=1.2, seed=5),
            diurnal_trace(
                n_requests=200, base_rate_hz=200.0, amplitude=0.7,
                period_s=0.9, seed=5,
            ),
        ],
        ids=["mmpp", "pareto", "diurnal"],
    )
    def test_workload_clocks_round_trip_exactly(self, trace):
        """Every generator's float64 arrival clock survives the heap
        bit-identically -- push the raw numpy scalars, pop plain
        Python floats, compare with exact equality."""
        queue = SoAEventQueue()
        for time_s in trace.arrivals_s:
            queue.push(float(time_s), 0, 0)
        popped = [queue.pop()[0] for _ in range(trace.n_requests)]
        expected = sorted(float(t) for t in trace.arrivals_s)
        assert popped == expected
        assert [t.hex() for t in popped] == [t.hex() for t in expected]

    @settings(max_examples=100, deadline=None)
    @given(
        values=st.lists(
            st.floats(allow_nan=False, width=64),
            min_size=1, max_size=64,
        )
    )
    def test_ndarray_tolist_is_bit_identical(self, values):
        """The list mirrors ArrivalColumns keeps are exact:
        ``float64 -> Python float`` loses nothing, ever."""
        array = np.asarray(values, dtype=np.float64)
        assert [v.hex() for v in array.tolist()] == [
            float(v).hex() for v in values
        ]


def _loads():
    snappy = Tenant(
        "snappy", TimeRequirement(imperceptible_s=0.1, unusable_s=0.5),
        priority=1,
    )
    calm = Tenant(
        "calm", TimeRequirement(imperceptible_s=0.5, unusable_s=2.0),
        priority=0,
    )
    return [
        TenantLoad(snappy, bursty_trace(n_requests=120, rate_hz=300.0,
                                        seed=3)),
        TenantLoad(calm, pareto_trace(n_requests=90, rate_hz=250.0,
                                      alpha=1.4, seed=4)),
    ]


class TestArrivalColumns:
    def test_ordering_matches_merge_loads(self):
        loads = _loads()
        columns = ArrivalColumns(loads)
        reference = merge_loads(loads)
        assert columns.n == len(reference)
        for rid, request in enumerate(reference):
            assert columns.arrivals_list[rid] == request.arrival_s
            assert columns.difficulty_list[rid] == request.difficulty
            assert (
                columns.tenants[columns.tenant_index_list[rid]]
                is request.tenant
            )

    def test_materialized_requests_equal_reference(self):
        loads = _loads()
        columns = ArrivalColumns(loads)
        reference = merge_loads(loads)
        materialized = columns.materialize_all()
        assert [
            (r.rid, r.tenant.name, r.arrival_s, r.difficulty)
            for r in materialized
        ] == [
            (r.rid, r.tenant.name, r.arrival_s, r.difficulty)
            for r in reference
        ]

    def test_request_at_caches(self):
        columns = ArrivalColumns(_loads())
        assert columns.request_at(5) is columns.request_at(5)

    def test_deadlines_follow_tenant_requirement(self):
        columns = ArrivalColumns(_loads())
        for rid in range(columns.n):
            tenant = columns.tenants[columns.tenant_index_list[rid]]
            assert columns.deadlines_list[rid] == (
                columns.arrivals_list[rid] + tenant.requirement.unusable_s
            )
            assert columns.has_deadline_list[rid] == math.isfinite(
                columns.deadlines_list[rid]
            )

    def test_duplicate_tenant_rejected(self):
        loads = _loads()
        dupe = loads + [loads[0]]
        with pytest.raises(ValueError, match="duplicate tenant"):
            ArrivalColumns(dupe)

    def test_empty_loads(self):
        columns = ArrivalColumns([])
        assert columns.n == 0
        assert columns.arrivals_list == []
        assert columns.materialize_all() == []
