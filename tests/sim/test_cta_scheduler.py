"""Tests for repro.sim.cta_scheduler: RR and Priority-SM dispatch."""

import pytest

from repro.sim.cta_scheduler import PrioritySMScheduler, RoundRobinScheduler


class TestRoundRobin:
    def test_cycles_over_sms(self):
        scheduler = RoundRobinScheduler()
        residency = [0, 0, 0, 0]
        picks = []
        for _ in range(4):
            sm = scheduler.select_sm(residency, max_ctas_per_sm=2)
            picks.append(sm)
            residency[sm] += 1
        assert picks == [0, 1, 2, 3]

    def test_skips_full_sms(self):
        scheduler = RoundRobinScheduler()
        residency = [2, 0, 2, 0]
        assert scheduler.select_sm(residency, max_ctas_per_sm=2) == 1

    def test_returns_none_when_all_full(self):
        scheduler = RoundRobinScheduler()
        assert scheduler.select_sm([2, 2], max_ctas_per_sm=2) is None

    def test_all_sms_stay_powered(self):
        assert RoundRobinScheduler().powered_sms(13) == 13

    def test_reset_restarts_cycle(self):
        scheduler = RoundRobinScheduler()
        residency = [0, 0, 0]
        scheduler.select_sm(residency, 4)
        scheduler.reset()
        assert scheduler.select_sm(residency, 4) == 0

    def test_fills_to_occupancy_limit(self):
        """Hardware behaviour: every SM ends up at max residency."""
        scheduler = RoundRobinScheduler()
        residency = [0] * 4
        for _ in range(8):
            sm = scheduler.select_sm(residency, max_ctas_per_sm=2)
            residency[sm] += 1
        assert residency == [2, 2, 2, 2]


class TestPrioritySM:
    def test_fig7_packing(self):
        """Fig. 7: 4 CTAs, optTLP 2 -> SMs 0 and 1 get 2 each; SMs 2-3
        never touched."""
        scheduler = PrioritySMScheduler(opt_tlp=2, opt_sm=4)
        residency = [0, 0, 0, 0]
        for _ in range(4):
            sm = scheduler.select_sm(residency, max_ctas_per_sm=4)
            residency[sm] += 1
        assert residency == [2, 2, 0, 0]

    def test_restricts_to_opt_sm(self):
        scheduler = PrioritySMScheduler(opt_tlp=1, opt_sm=2)
        residency = [1, 1, 0, 0]
        assert scheduler.select_sm(residency, max_ctas_per_sm=4) is None

    def test_powered_sms_is_opt_sm(self):
        assert PrioritySMScheduler(opt_tlp=2, opt_sm=3).powered_sms(13) == 3

    def test_powered_sms_capped_by_chip(self):
        assert PrioritySMScheduler(opt_tlp=2, opt_sm=20).powered_sms(13) == 13

    def test_respects_hardware_occupancy_cap(self):
        scheduler = PrioritySMScheduler(opt_tlp=8, opt_sm=1)
        residency = [3]
        assert scheduler.select_sm(residency, max_ctas_per_sm=3) is None

    def test_refills_freed_slots_in_priority_order(self):
        scheduler = PrioritySMScheduler(opt_tlp=2, opt_sm=2)
        residency = [1, 2]
        assert scheduler.select_sm(residency, max_ctas_per_sm=4) == 0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            PrioritySMScheduler(opt_tlp=0, opt_sm=1)
        with pytest.raises(ValueError):
            PrioritySMScheduler(opt_tlp=1, opt_sm=0)
