"""Tests for repro.sim.engine: the event simulator and analytic model."""

import pytest

from repro.gpu import JETSON_TX1, K20C, occupancy
from repro.gpu.kernels import GemmShape, make_kernel
from repro.gpu.libraries import CUBLAS, NERVANA
from repro.sim.cta_scheduler import PrioritySMScheduler, RoundRobinScheduler
from repro.sim.engine import (
    analytic_kernel_result,
    analytic_kernel_time_s,
    cta_work,
    simulate_kernel,
)


@pytest.fixture
def kernel():
    return make_kernel(64, 64, block_size=256)


@pytest.fixture
def shape():
    return GemmShape(128, 729, 1200)


class TestCTAWork:
    def test_components_positive(self, kernel, shape):
        work = cta_work(kernel, shape)
        assert work.ffma > 0
        assert work.shared_insts > 0
        assert work.global_insts > 0
        assert work.other_insts > 0
        assert work.dram_bytes > 0

    def test_ffma_dominates_big_tiles(self, shape):
        work = cta_work(make_kernel(128, 128), shape)
        assert work.ffma > work.global_insts

    def test_weighted_exceeds_total_with_global_penalty(self, kernel, shape):
        work = cta_work(kernel, shape)
        assert work.weighted > work.total_insts

    def test_spilling_adds_work(self, kernel, shape):
        spilled = kernel.with_spilling(kernel.regs_per_thread - 20, 40, 40)
        assert cta_work(spilled, shape).weighted > cta_work(kernel, shape).weighted

    def test_spill_to_global_costs_more_than_shared(self, kernel, shape):
        to_shared = kernel.with_spilling(kernel.regs_per_thread - 20, 80, 0)
        to_global = kernel.with_spilling(kernel.regs_per_thread - 20, 0, 80)
        assert (
            cta_work(to_global, shape).weighted
            > cta_work(to_shared, shape).weighted
        )


class TestSimulateKernel:
    def test_all_ctas_retire(self, kernel, shape):
        result = simulate_kernel(K20C, kernel, shape, collect_trace=True)
        assert result.grid_size == kernel.grid_size(shape)
        retires = [e for e in result.trace.events if e.kind == "retire"]
        assert len(retires) == result.grid_size

    def test_round_robin_uses_all_sms(self, kernel, shape):
        result = simulate_kernel(K20C, kernel, shape)
        assert result.sms_used == min(K20C.n_sms, result.grid_size)
        assert result.powered_sms == K20C.n_sms

    def test_fig7_psm_uses_half_the_sms(self):
        """Fig. 7: a 4-CTA kernel at optTLP 2 runs on 2 SMs under PSM
        but on 4 SMs under RR, at comparable duration."""
        kernel = make_kernel(64, 64, block_size=256)
        # grid of exactly 4 CTAs
        shape = GemmShape(128, 128, 512)
        assert kernel.grid_size(shape) == 4
        rr = simulate_kernel(K20C, kernel, shape, scheduler=RoundRobinScheduler())
        psm = simulate_kernel(
            K20C,
            kernel,
            shape,
            scheduler=PrioritySMScheduler(opt_tlp=2, opt_sm=2),
        )
        assert rr.sms_used == 4
        assert psm.sms_used == 2
        assert psm.powered_sms == 2
        # "nearly the same performance with half the SMs": within 2x
        # (the packing cost is one latency-hiding step).
        assert psm.seconds < 2.0 * rr.seconds
        # and much less energy
        assert psm.energy_joules < rr.energy_joules

    def test_better_library_is_faster(self, kernel, shape):
        slow = simulate_kernel(K20C, kernel, shape, library=CUBLAS)
        fast = simulate_kernel(K20C, kernel, shape, library=NERVANA)
        assert fast.seconds < slow.seconds

    def test_bandwidth_floor_applies_on_mobile(self):
        """A memory-heavy kernel on TX1 hits the 25.6 GB/s wall."""
        kernel = make_kernel(32, 32, block_size=64)
        shape = GemmShape(4096, 4096, 4096)
        result = simulate_kernel(JETSON_TX1, kernel, shape)
        floor = result.dram_bytes / JETSON_TX1.mem_bandwidth_bytes_per_s
        assert result.seconds >= floor * 0.999

    def test_occupancy_cap_respected(self, kernel, shape):
        result = simulate_kernel(
            K20C, kernel, shape, max_ctas_per_sm=2, collect_trace=True
        )
        peak = result.trace.max_concurrency()
        assert max(peak.values()) <= 2

    def test_rejects_unfittable_kernel(self):
        kernel = make_kernel(64, 64)
        with pytest.raises(ValueError, match="occupancy"):
            simulate_kernel(K20C, kernel, GemmShape(64, 64, 8), max_ctas_per_sm=0)

    def test_activity_in_unit_range(self, kernel, shape):
        result = simulate_kernel(K20C, kernel, shape)
        assert 0.0 < result.activity <= 1.0


class TestAnalyticModel:
    def test_matches_simulator_steady_state(self):
        """Big grids: analytic and event-driven agree within 15%."""
        kernel = make_kernel(64, 64, block_size=256)
        shape = GemmShape(512, 4096, 576)
        tlp = occupancy.ctas_per_sm(K20C, kernel)
        analytic = analytic_kernel_time_s(K20C, kernel, shape, tlp=tlp)
        simulated = simulate_kernel(K20C, kernel, shape).seconds
        assert analytic == pytest.approx(simulated, rel=0.15)

    def test_smooth_in_columns(self, kernel):
        """Perforation visibility: fewer columns is never slower."""
        times = [
            analytic_kernel_time_s(K20C, kernel, GemmShape(128, n, 1200), tlp=4)
            for n in range(1500, 300, -100)
        ]
        assert all(t2 <= t1 + 1e-12 for t1, t2 in zip(times, times[1:]))

    def test_more_sms_never_slower(self, kernel, shape):
        times = [
            analytic_kernel_time_s(K20C, kernel, shape, tlp=4, n_sms=s)
            for s in (1, 4, 8, 13)
        ]
        assert times == sorted(times, reverse=True)

    def test_rejects_bad_args(self, kernel, shape):
        with pytest.raises(ValueError):
            analytic_kernel_time_s(K20C, kernel, shape, tlp=0)
        with pytest.raises(ValueError):
            analytic_kernel_time_s(K20C, kernel, shape, tlp=2, n_sms=99)

    def test_analytic_result_consistent(self, kernel, shape):
        result = analytic_kernel_result(K20C, kernel, shape, tlp=4)
        assert result.seconds == pytest.approx(
            analytic_kernel_time_s(K20C, kernel, shape, tlp=4)
        )
        assert result.grid_size == kernel.grid_size(shape)
        assert 0 < result.sms_used <= K20C.n_sms
        assert result.energy_joules > 0

    def test_analytic_result_energy_close_to_sim(self):
        kernel = make_kernel(64, 64, block_size=256)
        shape = GemmShape(512, 4096, 576)
        tlp = occupancy.ctas_per_sm(K20C, kernel)
        fast = analytic_kernel_result(K20C, kernel, shape, tlp=tlp)
        slow = simulate_kernel(K20C, kernel, shape)
        assert fast.energy_joules == pytest.approx(slow.energy_joules, rel=0.25)
