"""Differential tests: the vectorized sim twins vs their oracles.

Three layers of the vectorized rewrite are checked field-for-field and
bit-for-bit against the original implementations, which stay in the
tree as reference oracles:

* :func:`repro.sim.vec.simulate_kernel_vec` vs
  :func:`repro.sim.engine.simulate_kernel` across architectures,
  schedulers, libraries and GEMM shapes;
* :func:`repro.analysis.batched_kernel_scores` vs the scalar
  :func:`repro.sim.engine.analytic_kernel_time_s` loop it replaces in
  the engine's compile sweep (and the tuner winner it implies);
* the element-wise SoC curves in :mod:`repro.sim.vec.scoring` vs the
  scalar :mod:`repro.core.satisfaction` functions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import batched_kernel_scores
from repro.core.offline.kernel_tuning import (
    PCNN_BACKEND,
    candidate_kernels,
    kernel_score,
    tune_layer_kernel,
)
from repro.core.satisfaction import TimeRequirement, soc_accuracy, soc_time
from repro.gpu import JETSON_TX1, K20C
from repro.gpu.kernels import GemmShape, make_kernel
from repro.gpu.libraries import CUBLAS
from repro.gpu.spilling import apply_spill, plan_spill, stair_points
from repro.sim.cta_scheduler import PrioritySMScheduler, RoundRobinScheduler
from repro.sim.engine import analytic_kernel_time_s, simulate_kernel
from repro.sim.vec import (
    simulate_kernel_vec,
    soc_accuracy_vec,
    soc_time_vec,
    soc_value_vec,
)

ARCHS = (K20C, JETSON_TX1)

SHAPES = (
    GemmShape(m_rows=96, n_cols=363, k_depth=128),
    GemmShape(m_rows=128, n_cols=729, k_depth=1200),
    GemmShape(m_rows=384, n_cols=169, k_depth=2304),
)


def _fields(result):
    return (
        result.cycles,
        result.seconds,
        result.grid_size,
        result.sms_used,
        result.powered_sms,
        result.avg_tlp,
        result.activity,
        result.energy_joules,
        result.dram_bytes,
    )


class TestKernelSim:
    @pytest.mark.parametrize("arch", ARCHS, ids=lambda a: a.name)
    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    def test_bit_identical_default_scheduler(self, arch, shape):
        kernel = make_kernel(64, 64)
        ref = simulate_kernel(arch, kernel, shape)
        vec = simulate_kernel_vec(arch, kernel, shape)
        assert _fields(vec) == _fields(ref)

    @pytest.mark.parametrize("arch", ARCHS, ids=lambda a: a.name)
    @pytest.mark.parametrize(
        "make_scheduler",
        [RoundRobinScheduler, lambda: PrioritySMScheduler(opt_tlp=2, opt_sm=4)],
        ids=["round-robin", "priority-sm"],
    )
    def test_bit_identical_across_schedulers(self, arch, make_scheduler):
        kernel = make_kernel(128, 64)
        shape = SHAPES[1]
        ref = simulate_kernel(
            arch, kernel, shape, scheduler=make_scheduler()
        )
        vec = simulate_kernel_vec(
            arch, kernel, shape, scheduler=make_scheduler()
        )
        assert _fields(vec) == _fields(ref)

    @pytest.mark.parametrize("library", [None, CUBLAS, PCNN_BACKEND])
    def test_bit_identical_across_libraries(self, library):
        kernel = make_kernel(64, 128)
        ref = simulate_kernel(K20C, kernel, SHAPES[0], library=library)
        vec = simulate_kernel_vec(K20C, kernel, SHAPES[0], library=library)
        assert _fields(vec) == _fields(ref)

    @settings(max_examples=25, deadline=None)
    @given(
        m=st.integers(min_value=16, max_value=512),
        n=st.integers(min_value=16, max_value=1024),
        k=st.integers(min_value=16, max_value=2048),
        max_ctas=st.integers(min_value=1, max_value=8),
    )
    def test_bit_identical_on_generated_shapes(self, m, n, k, max_ctas):
        kernel = make_kernel(64, 64)
        shape = GemmShape(m_rows=m, n_cols=n, k_depth=k)
        ref = simulate_kernel(
            K20C, kernel, shape, max_ctas_per_sm=max_ctas
        )
        vec = simulate_kernel_vec(
            K20C, kernel, shape, max_ctas_per_sm=max_ctas
        )
        assert _fields(vec) == _fields(ref)

    def test_trace_collection_rejected(self):
        kernel = make_kernel(64, 64)
        with pytest.raises(ValueError, match="does not collect traces"):
            simulate_kernel_vec(K20C, kernel, SHAPES[0], collect_trace=True)

    def test_zero_occupancy_rejected_like_reference(self):
        kernel = make_kernel(64, 64)
        with pytest.raises(ValueError, match="occupancy limit is 0"):
            simulate_kernel_vec(
                K20C, kernel, SHAPES[0], max_ctas_per_sm=0
            )


class TestBatchedScores:
    @pytest.mark.parametrize("arch", ARCHS, ids=lambda a: a.name)
    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    def test_elementwise_equal_to_scalar(self, arch, shape):
        kernels = []
        tlps = []
        for base in candidate_kernels(arch):
            for tlp, regs in stair_points(arch, base):
                kernels.append(apply_spill(base, plan_spill(
                    arch, base, regs, tlp
                )))
                tlps.append(tlp)
        scores = batched_kernel_scores(
            arch, kernels, tlps, shape, library=PCNN_BACKEND
        )
        expected = np.asarray(
            [
                analytic_kernel_time_s(
                    arch, kernel, shape, library=PCNN_BACKEND, tlp=tlp
                )
                for kernel, tlp in zip(kernels, tlps)
            ],
            dtype=np.float64,
        )
        assert np.array_equal(scores, expected)

    @pytest.mark.parametrize("arch", ARCHS, ids=lambda a: a.name)
    def test_tuner_winner_unchanged(self, arch):
        """The vectorized sweep inside ``tune_layer_kernel`` picks the
        same kernel, TLP and score the scalar loop picked (first
        minimum wins on ties, like the old strict ``<`` update)."""
        for shape in SHAPES:
            tuned = tune_layer_kernel(arch, shape)
            best = None
            for base in candidate_kernels(arch):
                for tlp, regs in stair_points(arch, base):
                    kernel = apply_spill(
                        base, plan_spill(arch, base, regs, tlp)
                    )
                    score = kernel_score(
                        arch, kernel, shape, tlp, backend=PCNN_BACKEND
                    )
                    if best is None or score < best[0]:
                        best = (score, kernel.name, tlp)
            assert best is not None
            assert (
                tuned.score, tuned.kernel.name, tuned.tlp
            ) == best

    def test_length_mismatch_rejected(self):
        kernel = make_kernel(64, 64)
        with pytest.raises(ValueError, match="kernels and tlps"):
            batched_kernel_scores(K20C, [kernel], [1, 2], SHAPES[0])

    def test_zero_tlp_rejected_like_reference(self):
        kernel = make_kernel(64, 64)
        with pytest.raises(ValueError, match="does not fit"):
            batched_kernel_scores(K20C, [kernel], [0], SHAPES[0])

    def test_empty_sweep(self):
        scores = batched_kernel_scores(K20C, [], [], SHAPES[0])
        assert scores.shape == (0,)


class TestSocCurves:
    REQUIREMENT = TimeRequirement(imperceptible_s=0.1, unusable_s=0.5)

    @settings(max_examples=100, deadline=None)
    @given(
        runtimes=st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=1, max_size=32,
        )
    )
    def test_soc_time_elementwise(self, runtimes):
        vec = soc_time_vec(np.asarray(runtimes), self.REQUIREMENT)
        scalar = [soc_time(r, self.REQUIREMENT) for r in runtimes]
        assert vec.tolist() == scalar

    @settings(max_examples=100, deadline=None)
    @given(
        entropies=st.lists(
            st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
            min_size=1, max_size=32,
        ),
        threshold=st.floats(
            min_value=1e-3, max_value=8.0, allow_nan=False
        ),
    )
    def test_soc_accuracy_elementwise(self, entropies, threshold):
        vec = soc_accuracy_vec(np.asarray(entropies), threshold)
        scalar = [soc_accuracy(e, threshold) for e in entropies]
        assert vec.tolist() == scalar

    def test_soc_value_composition(self):
        runtimes = np.asarray([0.05, 0.2, 0.7])
        entropies = np.asarray([0.5, 1.5, 3.0])
        value = soc_value_vec(
            soc_time_vec(runtimes, self.REQUIREMENT),
            soc_accuracy_vec(entropies, 1.0),
            energy_joules=2.0,
        )
        expected = [
            soc_time(r, self.REQUIREMENT) * soc_accuracy(e, 1.0) / 2.0
            for r, e in zip(runtimes.tolist(), entropies.tolist())
        ]
        assert value.tolist() == expected

    def test_validation_matches_scalar_contract(self):
        with pytest.raises(ValueError):
            soc_time_vec(np.asarray([-0.1]), self.REQUIREMENT)
        with pytest.raises(ValueError):
            soc_accuracy_vec(np.asarray([1.0]), 0.0)
        with pytest.raises(ValueError):
            soc_value_vec(np.asarray([1.0]), np.asarray([1.0]), 0.0)
