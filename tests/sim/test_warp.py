"""Tests for repro.sim.warp: the derived latency-hiding curve."""

import pytest

from repro.sim.sm import DEFAULT_TLP_HALF
from repro.sim.warp import (
    WarpIssueConfig,
    fit_tlp_half,
    hiding_curve,
    simulate_issue_efficiency,
)


class TestIssueSimulation:
    def test_efficiency_bounded(self):
        for warps in (1, 4, 16, 32):
            eff = simulate_issue_efficiency(warps)
            assert 0.0 < eff <= 1.0

    def test_monotone_in_residency(self):
        curve = hiding_curve(24)
        effs = [e for _w, e in curve]
        assert all(b >= a - 1e-6 for a, b in zip(effs, effs[1:]))

    def test_saturates(self):
        """Marginal efficiency per added warp shrinks with residency."""
        e8 = simulate_issue_efficiency(8)
        e16 = simulate_issue_efficiency(16)
        e32 = simulate_issue_efficiency(32)
        per_warp_early = (e16 - e8) / 8
        per_warp_late = (e32 - e16) / 16
        assert per_warp_early > per_warp_late

    def test_memory_heavy_mix_needs_more_warps(self):
        compute = WarpIssueConfig(memory_fraction=0.02, ilp=6)
        memory = WarpIssueConfig(memory_fraction=0.25, ilp=2)
        assert simulate_issue_efficiency(8, compute) > simulate_issue_efficiency(
            8, memory
        )

    def test_higher_ilp_hides_more(self):
        shallow = WarpIssueConfig(memory_fraction=0.06, ilp=1)
        deep = WarpIssueConfig(memory_fraction=0.06, ilp=8)
        assert simulate_issue_efficiency(4, deep) > simulate_issue_efficiency(
            4, shallow
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_issue_efficiency(0)
        with pytest.raises(ValueError):
            WarpIssueConfig(memory_fraction=1.5)
        with pytest.raises(ValueError):
            WarpIssueConfig(ilp=0)


class TestFit:
    def test_recovers_synthetic_h(self):
        """Fitting points generated from t/(t+h) recovers h."""
        true_h = 2.0
        warps_per_cta = 8
        curve = [
            (w, (w / warps_per_cta) / (w / warps_per_cta + true_h))
            for w in range(1, 33)
        ]
        assert fit_tlp_half(curve, warps_per_cta) == pytest.approx(
            true_h, rel=0.01
        )

    def test_cta_model_constant_is_in_the_derived_band(self):
        """The headline self-consistency check: the CTA-level model's
        assumed h = 1.0 falls within the band the warp-level GTO
        simulation derives for SGEMM-like instruction mixes."""
        fits = []
        for config in (
            WarpIssueConfig(memory_fraction=0.04, ilp=4),
            WarpIssueConfig(memory_fraction=0.06, ilp=4),
            WarpIssueConfig(memory_fraction=0.08, ilp=6),
        ):
            fits.append(fit_tlp_half(hiding_curve(32, config), warps_per_cta=8))
        assert min(fits) * 0.5 <= DEFAULT_TLP_HALF <= max(fits) * 2.5

    def test_rejects_degenerate_curve(self):
        with pytest.raises(ValueError):
            fit_tlp_half([(1, 1.0)], warps_per_cta=8)
        with pytest.raises(ValueError):
            fit_tlp_half([(1, 0.5)], warps_per_cta=0)
