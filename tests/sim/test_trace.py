"""Tests for repro.sim.trace: execution-trace bookkeeping."""

from repro.sim.trace import ExecutionTrace, TraceEvent


class TestTrace:
    def _sample(self):
        trace = ExecutionTrace()
        trace.record(0.0, "dispatch", 0, 0)
        trace.record(0.0, "dispatch", 1, 0)
        trace.record(0.0, "dispatch", 2, 1)
        trace.record(5.0, "retire", 0, 0)
        trace.record(5.0, "dispatch", 3, 0)
        trace.record(9.0, "retire", 1, 0)
        trace.record(9.0, "retire", 2, 1)
        trace.record(12.0, "retire", 3, 0)
        return trace

    def test_sms_used(self):
        assert self._sample().sms_used == (0, 1)
        assert self._sample().n_sms_used == 2

    def test_ctas_per_sm(self):
        trace = self._sample()
        assert trace.ctas_per_sm == {0: 3, 1: 1}

    def test_dispatch_order(self):
        dispatches = self._sample().dispatches()
        assert [e.cta_id for e in dispatches] == [0, 1, 2, 3]

    def test_max_concurrency(self):
        peak = self._sample().max_concurrency()
        assert peak[0] == 2
        assert peak[1] == 1

    def test_finalize_stores_busy_cycles(self):
        trace = self._sample()
        trace.finalize({0: 12.0, 1: 9.0})
        assert trace.busy_cycles_per_sm == {0: 12.0, 1: 9.0}

    def test_event_is_frozen(self):
        event = TraceEvent(0.0, "dispatch", 0, 0)
        try:
            event.cycle = 1.0
            raised = False
        except Exception:
            raised = True
        assert raised
