"""Tests for repro.sim.multikernel: spatial sharing vs MPS mixing."""

import pytest

from repro.gpu import JETSON_TX1, K20C
from repro.gpu.kernels import GemmShape, make_kernel
from repro.sim import (
    PrioritySMScheduler,
    TenantSpec,
    partition_for_layer,
    simulate_kernel,
    simulate_shared,
)


@pytest.fixture
def primary():
    kernel = make_kernel(64, 64, block_size=256)
    return TenantSpec(
        "cnn-layer", kernel, GemmShape(128, 729, 1200), max_ctas_per_sm=2
    )


@pytest.fixture
def co_tenant():
    kernel = make_kernel(64, 64, block_size=256)
    return TenantSpec("co-tenant", kernel, GemmShape(512, 2048, 576))


class TestPartition:
    def test_split(self):
        own, freed = partition_for_layer(K20C, 9)
        assert own == tuple(range(9))
        assert freed == tuple(range(9, 13))

    def test_rejects_bad_opt_sm(self):
        with pytest.raises(ValueError):
            partition_for_layer(K20C, 0)
        with pytest.raises(ValueError):
            partition_for_layer(K20C, 14)


class TestPartitionedSharing:
    def test_primary_keeps_solo_latency(self, primary, co_tenant):
        """Section III.D.2 made concrete: the released SMs host a
        co-tenant without touching the primary layer's latency."""
        solo = simulate_kernel(
            K20C,
            primary.kernel,
            primary.shape,
            scheduler=PrioritySMScheduler(opt_tlp=2, opt_sm=12),
            max_ctas_per_sm=2,
        )
        own, freed = partition_for_layer(K20C, 12)
        shared = simulate_shared(K20C, [(primary, own), (co_tenant, freed)])
        assert shared.tenant("cnn-layer").seconds == pytest.approx(
            solo.seconds, rel=0.05
        )

    def test_co_tenant_gets_real_throughput(self, primary, co_tenant):
        own, freed = partition_for_layer(K20C, 12)
        shared = simulate_shared(K20C, [(primary, own), (co_tenant, freed)])
        co = shared.tenant("co-tenant")
        assert co.grid_size > 0
        assert co.seconds > 0
        assert co.sms_used <= len(freed)

    def test_partitions_respected(self, primary, co_tenant):
        own, freed = partition_for_layer(K20C, 10)
        shared = simulate_shared(K20C, [(primary, own), (co_tenant, freed)])
        assert shared.tenant("cnn-layer").sms_used <= 10
        assert shared.tenant("co-tenant").sms_used <= 3


class TestMpsMixing:
    def test_mixing_hurts_primary_latency(self, primary, co_tenant):
        """The paper's argument against MPS: without placement control
        the time-sensitive kernel's latency becomes load-dependent."""
        own, freed = partition_for_layer(K20C, 12)
        partitioned = simulate_shared(
            K20C, [(primary, own), (co_tenant, freed)]
        )
        mixed = simulate_shared(
            K20C, [(primary, own), (co_tenant, freed)], mix=True
        )
        assert (
            mixed.tenant("cnn-layer").seconds
            > 1.5 * partitioned.tenant("cnn-layer").seconds
        )

    def test_mixing_helps_the_co_tenant(self, primary, co_tenant):
        own, freed = partition_for_layer(K20C, 12)
        partitioned = simulate_shared(
            K20C, [(primary, own), (co_tenant, freed)]
        )
        mixed = simulate_shared(
            K20C, [(primary, own), (co_tenant, freed)], mix=True
        )
        assert (
            mixed.tenant("co-tenant").seconds
            < partitioned.tenant("co-tenant").seconds
        )


class TestEdgeCases:
    def test_single_tenant_matches_dedicated_simulation(self, co_tenant):
        shared = simulate_shared(K20C, [(co_tenant, range(K20C.n_sms))])
        assert shared.makespan_s == pytest.approx(
            shared.tenant("co-tenant").seconds
        )

    def test_work_conservation(self, primary, co_tenant):
        own, freed = partition_for_layer(K20C, 12)
        shared = simulate_shared(K20C, [(primary, own), (co_tenant, freed)])
        for tenant, spec in (
            (shared.tenant("cnn-layer"), primary),
            (shared.tenant("co-tenant"), co_tenant),
        ):
            assert tenant.grid_size == spec.kernel.grid_size(spec.shape)

    def test_rejects_empty_tenancy(self):
        with pytest.raises(ValueError):
            simulate_shared(K20C, [])

    def test_rejects_empty_partition(self, primary):
        with pytest.raises(ValueError, match="no SMs"):
            simulate_shared(K20C, [(primary, ())])

    def test_tiny_chip(self, primary):
        shared = simulate_shared(JETSON_TX1, [(primary, (0, 1))])
        assert shared.tenant("cnn-layer").sms_used <= 2
