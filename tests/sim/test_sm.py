"""Tests for repro.sim.sm: the SM throughput model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.sm import CTA, SMState, latency_hiding_factor


class TestLatencyHiding:
    def test_empty_sm_idle(self):
        assert latency_hiding_factor(0) == 0.0

    def test_monotone_in_residency(self):
        values = [latency_hiding_factor(t) for t in range(1, 10)]
        assert values == sorted(values)

    def test_saturates_below_one(self):
        assert latency_hiding_factor(1000) < 1.0
        assert latency_hiding_factor(1000) > 0.99

    def test_half_point(self):
        assert latency_hiding_factor(1, tlp_half=1.0) == pytest.approx(0.5)

    @given(t=st.integers(1, 64), h=st.floats(0.1, 8.0))
    @settings(max_examples=50, deadline=None)
    def test_bounds(self, t, h):
        f = latency_hiding_factor(t, h)
        assert 0.0 < f < 1.0


class TestCTA:
    def test_remaining_defaults_to_work(self):
        cta = CTA(cta_id=0, work=100.0)
        assert cta.remaining == 100.0

    def test_rejects_nonpositive_work(self):
        with pytest.raises(ValueError):
            CTA(cta_id=0, work=0.0)


class TestSMState:
    def test_idle_sm_has_no_completion(self):
        sm = SMState(0, peak_rate_per_cycle=128.0)
        assert sm.next_completion_in() is None
        assert sm.rate_per_cta == 0.0

    def test_single_cta_rate(self):
        sm = SMState(0, peak_rate_per_cycle=100.0, tlp_half=1.0)
        sm.dispatch(CTA(0, work=50.0), now=0.0)
        # rate(1) = 100 * 0.5 / 1 CTA
        assert sm.rate_per_cta == pytest.approx(50.0)
        assert sm.next_completion_in() == pytest.approx(1.0)

    def test_rate_shared_among_residents(self):
        sm = SMState(0, peak_rate_per_cycle=100.0, tlp_half=1.0)
        sm.dispatch(CTA(0, work=60.0), 0.0)
        sm.dispatch(CTA(1, work=60.0), 0.0)
        # rate(2) = 100 * 2/3, split over 2 CTAs.
        assert sm.rate_per_cta == pytest.approx(100.0 / 3)

    def test_advance_retires_finished(self):
        sm = SMState(0, peak_rate_per_cycle=100.0, tlp_half=1.0)
        sm.dispatch(CTA(0, work=50.0), 0.0)
        finished = sm.advance(1.0, now=0.0)
        assert [c.cta_id for c in finished] == [0]
        assert sm.residency == 0
        assert sm.ctas_retired == 1

    def test_advance_partial_progress(self):
        sm = SMState(0, peak_rate_per_cycle=100.0, tlp_half=1.0)
        cta = CTA(0, work=100.0)
        sm.dispatch(cta, 0.0)
        assert sm.advance(1.0, now=0.0) == []
        assert cta.remaining == pytest.approx(50.0)

    def test_uneven_work_retires_shortest_first(self):
        sm = SMState(0, peak_rate_per_cycle=100.0, tlp_half=1.0)
        sm.dispatch(CTA(0, work=30.0), 0.0)
        sm.dispatch(CTA(1, work=90.0), 0.0)
        step = sm.next_completion_in()
        finished = sm.advance(step, now=0.0)
        assert [c.cta_id for c in finished] == [0]
        assert sm.residency == 1

    def test_busy_cycles_accumulate(self):
        sm = SMState(0, peak_rate_per_cycle=100.0)
        sm.dispatch(CTA(0, work=1000.0), 0.0)
        sm.advance(3.0, now=0.0)
        assert sm.busy_cycles == pytest.approx(3.0)

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            SMState(0, peak_rate_per_cycle=0.0)

    def test_more_residency_better_throughput_worse_latency(self):
        """The central trade-off: total throughput rises with residency
        but each CTA finishes later."""
        solo = SMState(0, 100.0, tlp_half=1.0)
        solo.dispatch(CTA(0, work=60.0), 0.0)
        packed = SMState(1, 100.0, tlp_half=1.0)
        for i in range(4):
            packed.dispatch(CTA(i, work=60.0), 0.0)
        assert packed.next_completion_in() > solo.next_completion_in()
        # but aggregate rate is higher
        assert packed.rate_per_cta * 4 > solo.rate_per_cta * 1
