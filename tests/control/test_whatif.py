"""What-if harness tests: comparison report shape and determinism."""

import json

import pytest

from repro.control import ControllerConfig, WhatIfOutcome, run_whatif
from repro.serving import RouterConfig, TenantLoad
from repro.workloads import bursty_trace

STORM_RATE_HZ = 700.0


def _storm(snappy_tenant, n_requests=600):
    return [TenantLoad(snappy_tenant, bursty_trace(
        n_requests=n_requests, rate_hz=STORM_RATE_HZ,
        burst_factor=6.0, burst_fraction=0.3, seed=42,
    ))]


@pytest.fixture(scope="module")
def outcome(fleet, snappy_tenant_module):
    return run_whatif(
        fleet,
        _storm(snappy_tenant_module),
        controller=ControllerConfig(tick_s=0.05, headroom=1.5),
    )


@pytest.fixture(scope="module")
def snappy_tenant_module():
    from repro.core.satisfaction import TimeRequirement
    from repro.serving import Tenant

    return Tenant(
        "snappy", TimeRequirement(imperceptible_s=0.1, unusable_s=0.5),
        priority=1,
    )


class TestOutcomeShape:
    def test_modes_and_controller(self, outcome):
        assert isinstance(outcome, WhatIfOutcome)
        assert outcome.reactive.control is None
        assert outcome.predictive.control is not None
        assert outcome.controller.kind == "ewma"

    def test_summaries_and_deltas_align(self, outcome):
        reactive = outcome.reactive_summary
        predictive = outcome.predictive_summary
        deltas = outcome.deltas
        assert set(reactive) == set(predictive) == set(deltas)
        for key, value in deltas.items():
            assert value == predictive[key] - reactive[key]

    def test_both_modes_conserve_requests(self, outcome):
        for report in (outcome.reactive, outcome.predictive):
            assert report.n_completed + report.n_rejected == report.n_offered

    def test_to_dict_is_json_plain(self, outcome):
        data = outcome.to_dict()
        assert set(data) == {
            "controller", "reactive", "predictive", "deltas",
            "control", "fingerprints",
        }
        # Round-trips through JSON without custom encoders.
        assert json.loads(json.dumps(data, sort_keys=True)) is not None
        assert data["fingerprints"]["reactive"] == outcome.reactive.fingerprint()


class TestDeterminism:
    def test_same_seed_whatif_bit_identical(self, fleet, snappy_tenant_module):
        config = ControllerConfig(tick_s=0.05, headroom=1.5)
        first = run_whatif(
            fleet, _storm(snappy_tenant_module), controller=config
        )
        second = run_whatif(
            fleet, _storm(snappy_tenant_module), controller=config
        )
        assert first.fingerprint() == second.fingerprint()
        assert (
            first.predictive.fingerprint() == second.predictive.fingerprint()
        )
        assert first.reactive.fingerprint() == second.reactive.fingerprint()

    def test_fingerprint_neutral_to_prewarm_temperature(self, outcome):
        # The serialized comparison keeps the hit/miss split for
        # humans, but a run against a warmer cache -- same routing,
        # different hit/miss split -- must fingerprint identically.
        from dataclasses import replace

        data = outcome.to_dict()
        assert "hits" in data["control"]["prewarm"]
        warmer_control = dict(outcome.predictive.control)
        warmer_control["prewarm"] = {
            "requested": warmer_control["prewarm"]["requested"],
            "hits": warmer_control["prewarm"]["requested"],
            "misses": 0,
        }
        warmer = WhatIfOutcome(
            reactive=outcome.reactive,
            predictive=replace(
                outcome.predictive, control=warmer_control
            ),
            controller=outcome.controller,
        )
        assert warmer.fingerprint() == outcome.fingerprint()


class TestOptions:
    def test_default_controller_and_instrumented_runs(
        self, fleet, snappy_tenant_module
    ):
        outcome = run_whatif(
            fleet,
            _storm(snappy_tenant_module, n_requests=200),
            config=RouterConfig(),
            instrument=True,
        )
        assert outcome.controller == ControllerConfig()
        assert outcome.reactive.obs is not None
        assert outcome.predictive.obs is not None
