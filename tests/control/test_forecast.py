"""Forecaster unit tests: determinism, accuracy tracking, seasonality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control import EwmaForecaster, HoltWintersForecaster
from repro.workloads import diurnal_trace, windowed_rates


class TestValidation:
    def test_ewma_alpha_range(self):
        with pytest.raises(ValueError):
            EwmaForecaster(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaForecaster(alpha=1.5)

    def test_holt_winters_parameter_ranges(self):
        with pytest.raises(ValueError):
            HoltWintersForecaster(alpha=0.0)
        with pytest.raises(ValueError):
            HoltWintersForecaster(beta=1.5)
        with pytest.raises(ValueError):
            HoltWintersForecaster(gamma=-0.1)
        with pytest.raises(ValueError):
            HoltWintersForecaster(season_length=-1)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            EwmaForecaster().observe(-1.0)

    def test_horizon_must_be_positive(self):
        forecaster = EwmaForecaster()
        forecaster.observe(10.0)
        with pytest.raises(ValueError):
            forecaster.forecast(0)


class TestEwma:
    def test_unobserved_forecasts_zero(self):
        assert EwmaForecaster().forecast(1) == 0.0

    def test_first_observation_sets_level(self):
        forecaster = EwmaForecaster(alpha=0.5)
        forecaster.observe(40.0)
        assert forecaster.forecast(1) == 40.0
        # Flat forecast: horizon does not change a level-only model.
        assert forecaster.forecast(5) == 40.0

    def test_constant_stream_converges_exactly(self):
        forecaster = EwmaForecaster(alpha=0.3)
        for _ in range(20):
            forecaster.observe(75.0)
        assert forecaster.forecast(1) == 75.0
        assert forecaster.mae == 0.0
        assert forecaster.mean_rate == 75.0

    def test_seeded_determinism(self):
        rng = np.random.default_rng(7)
        rates = rng.exponential(50.0, 100)
        first = EwmaForecaster(alpha=0.4)
        second = EwmaForecaster(alpha=0.4)
        for rate in rates:
            first.observe(float(rate))
            second.observe(float(rate))
        assert first.forecast(3) == second.forecast(3)
        assert first.mae == second.mae

    def test_mae_scores_before_absorbing(self):
        forecaster = EwmaForecaster(alpha=1.0)
        forecaster.observe(10.0)  # first observation is never scored
        assert forecaster.mae == 0.0
        forecaster.observe(16.0)  # scored against the prior level, 10
        assert forecaster.mae == pytest.approx(6.0)


class TestHoltWinters:
    def test_reduces_to_holt_without_season(self):
        # A perfectly linear ramp is eventually extrapolated exactly.
        forecaster = HoltWintersForecaster(
            alpha=0.8, beta=0.5, gamma=0.0, season_length=0
        )
        for step in range(60):
            forecaster.observe(10.0 + 2.0 * step)
        # Next value continues the ramp: 10 + 2*60 = 130.
        assert forecaster.forecast(1) == pytest.approx(130.0, rel=0.02)
        # Longer horizons extrapolate the trend.
        assert forecaster.forecast(5) > forecaster.forecast(1)

    def test_forecast_clamped_non_negative(self):
        forecaster = HoltWintersForecaster(alpha=0.9, beta=0.9)
        forecaster.observe(100.0)
        forecaster.observe(10.0)  # steep negative trend
        assert forecaster.forecast(50) == 0.0

    def test_seasonal_recovery_on_diurnal_trace(self):
        # The seasonal model, told the true period, must beat a
        # level-only EWMA at one-step prediction on a diurnal stream
        # -- the profile "locks on" after a few seasons.
        window_s = 0.25
        period_s = 4.0
        trace = diurnal_trace(
            n_requests=4000, base_rate_hz=60.0, amplitude=0.8,
            period_s=period_s, seed=11,
        )
        rates = windowed_rates(trace, window_s)
        assert len(rates) >= 8 * int(period_s / window_s), (
            "trace too short to span several seasons"
        )
        seasonal = HoltWintersForecaster(
            alpha=0.3, beta=0.05, gamma=0.4,
            season_length=int(period_s / window_s),
        )
        flat = EwmaForecaster(alpha=0.3)
        for rate in rates:
            seasonal.observe(float(rate))
            flat.observe(float(rate))
        assert seasonal.mae < flat.mae, (
            "seasonal HW mae %.2f not better than EWMA mae %.2f"
            % (seasonal.mae, flat.mae)
        )

    def test_seeded_determinism(self):
        rng = np.random.default_rng(3)
        rates = rng.gamma(2.0, 30.0, 200)
        kwargs = dict(alpha=0.4, beta=0.1, gamma=0.3, season_length=16)
        first = HoltWintersForecaster(**kwargs)
        second = HoltWintersForecaster(**kwargs)
        for rate in rates:
            first.observe(float(rate))
            second.observe(float(rate))
        for horizon in (1, 4, 16, 17):
            assert first.forecast(horizon) == second.forecast(horizon)


@settings(max_examples=50, deadline=None)
@given(
    first=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=0, max_size=40,
    ),
    second=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=0, max_size=40,
    ),
)
def test_forecast_invariant_to_trace_merge_order(first, second):
    """Merging two tenants' arrival streams in either order feeds the
    forecaster identical windowed rates, hence identical forecasts --
    the control loop's view depends on the multiset of arrivals, never
    on interleaving order."""
    window_s = 0.5
    merged_ab = np.sort(np.concatenate([first, second]))
    merged_ba = np.sort(np.concatenate([second, first]))

    def forecast_of(arrivals):
        forecaster = EwmaForecaster(alpha=0.6)
        if len(arrivals):
            horizon = float(arrivals[-1])
            n_windows = int(np.floor(horizon / window_s)) + 1
            indices = np.floor(arrivals / window_s).astype(np.int64)
            counts = np.bincount(indices, minlength=n_windows)
            for count in counts:
                forecaster.observe(float(count) / window_s)
        return forecaster.forecast(1), forecaster.mae

    assert forecast_of(merged_ab) == forecast_of(merged_ba)
