"""Shared fixtures for the control-plane test suite.

Mirrors the serving suite's layout: fleet deployment dominates
wall-clock, so one two-platform fleet is deployed per module and
shared.  Tests that need cold engine caches (the prewarm causal
chain) build their own fleet.
"""

import pytest

from repro.core import ApplicationSpec, TaskClass
from repro.core.fleet import FleetManager
from repro.core.satisfaction import TimeRequirement
from repro.gpu import JETSON_TX1, K20C
from repro.nn import alexnet
from repro.serving import Tenant


@pytest.fixture(scope="module")
def spec():
    return ApplicationSpec(
        "age-detection", TaskClass.INTERACTIVE, entropy_slack=0.30
    )


@pytest.fixture(scope="module")
def fleet(spec):
    manager = FleetManager(
        alexnet(),
        spec,
        architectures=[K20C, JETSON_TX1],
        max_tuning_iterations=8,
    )
    manager.deploy_all()
    return manager


@pytest.fixture(scope="module")
def deployments(fleet):
    return fleet.deploy_all()


@pytest.fixture
def snappy_tenant():
    """An interactive tenant with a deadline tight enough to miss."""
    return Tenant(
        "snappy", TimeRequirement(imperceptible_s=0.1, unusable_s=0.5),
        priority=1,
    )
