"""Control-plane integration tests: determinism, prewarm, DVFS, shards."""

import pickle

import pytest

from repro.control import ControllerConfig, ControlPlane
from repro.core import ApplicationSpec, TaskClass
from repro.core.engine import EngineStats
from repro.core.fleet import FleetManager
from repro.gpu import JETSON_TX1, K20C
from repro.nn import alexnet
from repro.obs import Instrumentation
from repro.serving import (
    FleetCoordinator,
    FleetSpec,
    RequestRouter,
    RouterConfig,
    TenantLoad,
)
from repro.workloads import bursty_trace

#: Storm rate past the module fleet's rung-0 capacity (~390 rps), so
#: the controller has a spike to provision for.
STORM_RATE_HZ = 700.0


def _storm(snappy_tenant, n_requests=800, seed=42):
    return [TenantLoad(snappy_tenant, bursty_trace(
        n_requests=n_requests, rate_hz=STORM_RATE_HZ,
        burst_factor=6.0, burst_fraction=0.3, seed=seed,
    ))]


class TestControllerConfig:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ControllerConfig(kind="arima")

    def test_rejects_bad_cadence_and_horizon(self):
        with pytest.raises(ValueError):
            ControllerConfig(tick_s=0.0)
        with pytest.raises(ValueError):
            ControllerConfig(horizon_ticks=0)
        with pytest.raises(ValueError):
            ControllerConfig(lookahead_levels=-1)
        with pytest.raises(ValueError):
            ControllerConfig(headroom=0.5)

    def test_picklable_for_shard_specs(self):
        config = ControllerConfig(kind="holt-winters", season_ticks=8)
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert isinstance(clone.build(), ControlPlane)

    def test_build_returns_fresh_planes(self):
        config = ControllerConfig()
        assert config.build() is not config.build()


class TestPredictiveRun:
    def test_same_seed_runs_bit_identical(self, fleet, snappy_tenant):
        config = ControllerConfig(tick_s=0.05, headroom=1.5)
        reports = []
        traces = []
        for _ in range(2):
            obs = Instrumentation()
            report = RequestRouter(fleet, RouterConfig()).run(
                _storm(snappy_tenant), obs=obs,
                controller=config.build(),
            )
            reports.append(report)
            traces.append(obs.buffer.fingerprint())
        assert reports[0].fingerprint() == reports[1].fingerprint()
        assert traces[0] == traces[1]

    def test_control_section_in_report(self, fleet, snappy_tenant):
        config = ControllerConfig(kind="holt-winters", tick_s=0.1)
        report = RequestRouter(fleet, RouterConfig()).run(
            _storm(snappy_tenant), controller=config.build(),
        )
        control = report.control
        assert control["kind"] == "holt-winters"
        assert control["ticks"] > 0
        assert control["tenants"]["snappy"]["observations"] == control["ticks"]
        assert set(control["prewarm"]) == {"requested", "hits", "misses"}
        # The section survives to_dict and is JSON-plain.
        assert report.to_dict(include_events=False)["control"] == control

    def test_reactive_report_has_no_control_section(self, fleet, snappy_tenant):
        report = RequestRouter(fleet, RouterConfig()).run(
            _storm(snappy_tenant)
        )
        assert report.control is None
        assert "control" not in report.to_dict(include_events=False)

    def test_control_events_recorded(self, fleet, snappy_tenant):
        config = ControllerConfig(tick_s=0.05, headroom=2.0)
        report = RequestRouter(fleet, RouterConfig()).run(
            _storm(snappy_tenant), controller=config.build(),
        )
        kinds = {event.kind for event in report.events}
        assert "control_tick" in kinds
        ticks = [e for e in report.events if e.kind == "control_tick"]
        assert len(ticks) == report.control["ticks"]
        for event in ticks:
            assert set(event.detail) >= {
                "observed_rps", "forecast_rps", "level"
            }

    def test_prewarm_hits_do_not_change_fingerprint(self, fleet, snappy_tenant):
        # Same seed, same loads: one run against whatever cache state
        # the module fleet accumulated, one more right after (fully
        # warm).  The prewarm hit/miss split differs; the fingerprint
        # must not.
        config = ControllerConfig(tick_s=0.05, headroom=2.0)
        first = RequestRouter(fleet, RouterConfig()).run(
            _storm(snappy_tenant), controller=config.build(),
        )
        second = RequestRouter(fleet, RouterConfig()).run(
            _storm(snappy_tenant), controller=config.build(),
        )
        assert first.fingerprint() == second.fingerprint()


class TestPrewarmCausalChain:
    def test_predicted_rung_is_cache_hit_at_dispatch(self):
        # A cold fleet: deploy compiles only rung 0 of each ladder
        # (the controller's presence makes ladders lazy).  The plane
        # pre-warms the rungs it predicts needing, so when escalation
        # reaches them the ladder's materialization is answered from
        # the plan cache by an entry the prewarm planted.
        spec = ApplicationSpec(
            "age-detection", TaskClass.INTERACTIVE, entropy_slack=0.30
        )
        manager = FleetManager(
            alexnet(), spec,
            architectures=[K20C, JETSON_TX1],
            max_tuning_iterations=8,
        )
        deployments = manager.deploy_all()
        stats = {
            name: EngineStats().attach(deployment.engine.hooks)
            for name, deployment in deployments.items()
        }
        from repro.core.satisfaction import TimeRequirement
        from repro.serving import Tenant

        tenant = Tenant(
            "snappy", TimeRequirement(0.1, 0.5), priority=1
        )
        config = ControllerConfig(tick_s=0.05, headroom=2.0)
        report = RequestRouter(manager, RouterConfig()).run(
            _storm(tenant), controller=config.build(),
        )
        assert report.control["prewarm"]["requested"] > 0
        # On a cold cache every prewarm compiles...
        assert any(s.prewarm_misses > 0 for s in stats.values())
        # ...and dispatch later hits those planted entries.
        assert any(s.prewarmed_hits > 0 for s in stats.values())


class TestShardedController:
    def test_inline_shards_carry_merged_control_section(
        self, spec, snappy_tenant
    ):
        controller = ControllerConfig(tick_s=0.05)
        coordinator = FleetCoordinator(
            FleetSpec(
                network="alexnet", spec=spec, gpus=("k20c", "tx1"),
                max_tuning_iterations=8,
            ),
            RouterConfig(),
            n_shards=2,
            seed=42,
            inline=True,
            controller=controller,
        )
        shard_loads = [
            _storm(snappy_tenant, n_requests=300, seed=42 + shard)
            for shard in range(2)
        ]
        outcome = coordinator.run(shard_loads=shard_loads)
        control = outcome.report.control
        assert control is not None
        assert control["kind"] == "ewma"
        # Ticks sum across shards; every shard saw the same cadence.
        assert control["ticks"] > 0
        assert control["tick_s"] == 0.05
