"""Shared fixtures for the P-CNN reproduction test suite."""

import pytest

from repro.nn import make_dataset, pcnn_net, train, train_test_split


@pytest.fixture(params=["k20c", "titanx", "gtx970m", "tx1"])
def any_arch(request):
    """Parametrize over all four paper platforms."""
    from repro.gpu import get_architecture

    return get_architecture(request.param)


@pytest.fixture(scope="session")
def small_dataset():
    """A small seeded synthetic dataset shared across tests."""
    return make_dataset(400, seed=11)


@pytest.fixture(scope="session")
def split_dataset(small_dataset):
    """(train, test) split of the shared dataset."""
    return train_test_split(small_dataset, test_fraction=0.25, seed=12)


@pytest.fixture(scope="session")
def trained_small_net(split_dataset):
    """A trained PcnnNet-small with its test set (session-scoped: the
    numpy trainer runs once for the whole suite)."""
    train_set, test_set = split_dataset
    network = pcnn_net("small")
    result = train(network, train_set, epochs=8, seed=13)
    return network, result.params, test_set
