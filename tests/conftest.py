"""Shared fixtures for the P-CNN reproduction test suite."""

import json
from pathlib import Path

import pytest

from repro.nn import make_dataset, pcnn_net, train, train_test_split

GOLDENS_DIR = Path(__file__).parent / "goldens"


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from current behaviour "
        "instead of comparing against them",
    )


@pytest.fixture
def golden(request):
    """Compare ``payload`` against the pinned ``tests/goldens/<name>.json``.

    With ``--update-goldens`` the file is rewritten instead, so an
    intentional behaviour change is a one-flag re-pin reviewed as a
    plain JSON diff.
    """
    update = request.config.getoption("--update-goldens")

    def check(name, payload):
        path = GOLDENS_DIR / (name + ".json")
        rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        if update:
            GOLDENS_DIR.mkdir(exist_ok=True)
            path.write_text(rendered)
            return
        if not path.exists():
            pytest.fail(
                "golden %s missing; run pytest --update-goldens to pin it"
                % path
            )
        if path.read_text() != rendered:
            pytest.fail(
                "golden %s drifted from current behaviour; inspect the "
                "diff and re-pin with --update-goldens if intentional:\n"
                "%s" % (path, rendered)
            )

    return check


@pytest.fixture(params=["k20c", "titanx", "gtx970m", "tx1"])
def any_arch(request):
    """Parametrize over all four paper platforms."""
    from repro.gpu import get_architecture

    return get_architecture(request.param)


@pytest.fixture(scope="session")
def small_dataset():
    """A small seeded synthetic dataset shared across tests."""
    return make_dataset(400, seed=11)


@pytest.fixture(scope="session")
def split_dataset(small_dataset):
    """(train, test) split of the shared dataset."""
    return train_test_split(small_dataset, test_fraction=0.25, seed=12)


@pytest.fixture(scope="session")
def trained_small_net(split_dataset):
    """A trained PcnnNet-small with its test set (session-scoped: the
    numpy trainer runs once for the whole suite)."""
    train_set, test_set = split_dataset
    network = pcnn_net("small")
    result = train(network, train_set, epochs=8, seed=13)
    return network, result.params, test_set
